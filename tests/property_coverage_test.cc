// Parameterized property suite for the binary estimators: across a
// sweep of (workers, tasks, density, confidence), the reported
// interval coverage must track the nominal confidence and interval
// sizes must respond monotonically to the amount of data.

#include <gtest/gtest.h>

#include <cmath>

#include "core/m_worker.h"
#include "experiments/runner.h"
#include "rng/random.h"
#include "sim/simulator.h"
#include "stats/descriptive.h"
#include "stats/normal.h"

namespace crowd {
namespace {

struct CoverageCase {
  size_t workers;
  size_t tasks;
  double density;
  double confidence;
};

void PrintTo(const CoverageCase& c, std::ostream* os) {
  *os << "m" << c.workers << "_n" << c.tasks << "_d" << c.density
      << "_c" << c.confidence;
}

class BinaryCoverage : public testing::TestWithParam<CoverageCase> {};

TEST_P(BinaryCoverage, CoverageTracksConfidence) {
  const CoverageCase& param = GetParam();
  size_t covered = 0, total = 0;
  experiments::RepeatTrials(
      60, 0xC0FE + param.workers * 100 + param.tasks,
      [&](int, Random* rng) {
        sim::BinarySimConfig config;
        config.num_workers = param.workers;
        config.num_tasks = param.tasks;
        config.assignment = sim::AssignmentConfig::Iid(param.density);
        auto sim = sim::SimulateBinary(config, rng);
        core::BinaryOptions options;
        options.confidence = param.confidence;
        auto result =
            core::MWorkerEvaluate(sim.dataset.responses(), options);
        if (!result.ok()) return;
        for (const auto& a : result->assessments) {
          ++total;
          if (a.interval.Contains(sim.true_error_rates[a.worker])) {
            ++covered;
          }
        }
      });
  ASSERT_GT(total, 100u);
  double accuracy = static_cast<double>(covered) / static_cast<double>(total);
  // Binomial noise at ~200-400 samples: allow a generous but
  // informative band around the nominal level.
  EXPECT_NEAR(accuracy, param.confidence, 0.10)
      << "coverage " << accuracy << " vs nominal " << param.confidence;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinaryCoverage,
    testing::Values(CoverageCase{3, 150, 1.0, 0.8},
                    CoverageCase{3, 300, 0.8, 0.9},
                    CoverageCase{5, 200, 0.8, 0.5},
                    CoverageCase{7, 100, 0.8, 0.8},
                    CoverageCase{7, 300, 0.8, 0.95},
                    CoverageCase{7, 300, 0.6, 0.7},
                    CoverageCase{9, 200, 0.7, 0.9},
                    CoverageCase{11, 150, 0.9, 0.85}));

class IntervalMonotonicity : public testing::TestWithParam<size_t> {};

// More tasks -> smaller intervals, at every pool size.
TEST_P(IntervalMonotonicity, SizeShrinksWithTasks) {
  const size_t m = GetParam();
  double previous = 1e9;
  for (size_t n : {size_t{100}, size_t{400}, size_t{1600}}) {
    double total_dev = 0.0;
    int counted = 0;
    experiments::RepeatTrials(20, 0xD0 + m + n, [&](int, Random* rng) {
      sim::BinarySimConfig config;
      config.num_workers = m;
      config.num_tasks = n;
      config.assignment = sim::AssignmentConfig::Iid(0.8);
      auto sim = sim::SimulateBinary(config, rng);
      core::BinaryOptions options;
      auto result =
          core::MWorkerEvaluate(sim.dataset.responses(), options);
      if (!result.ok()) return;
      for (const auto& a : result->assessments) {
        total_dev += a.deviation;
        ++counted;
      }
    });
    ASSERT_GT(counted, 0);
    double mean_dev = total_dev / counted;
    EXPECT_LT(mean_dev, previous) << "n=" << n;
    previous = mean_dev;
  }
}

INSTANTIATE_TEST_SUITE_P(Pools, IntervalMonotonicity,
                         testing::Values(3, 5, 7));

// Deviation scales like 1/sqrt(n) on regular data (the Theorem 1
// deviation is built from variances ~ 1/n). The *median* deviation is
// compared — at small n an occasional draw lands near the q = 1/2
// singularity and inflates the mean arbitrarily.
TEST(IntervalScaling, RootNLaw) {
  auto median_dev = [](size_t n) {
    std::vector<double> deviations;
    experiments::RepeatTrials(40, 0xAB, [&](int, Random* rng) {
      sim::BinarySimConfig config;
      config.num_workers = 3;
      config.num_tasks = n;
      auto sim = sim::SimulateBinary(config, rng);
      core::BinaryOptions options;
      auto result =
          core::MWorkerEvaluate(sim.dataset.responses(), options);
      if (!result.ok()) return;
      for (const auto& a : result->assessments) {
        deviations.push_back(a.deviation);
      }
    });
    return *stats::Median(std::move(deviations));
  };
  double ratio = median_dev(250) / median_dev(1000);
  EXPECT_NEAR(ratio, 2.0, 0.35);  // sqrt(1000/250) = 2.
}

}  // namespace
}  // namespace crowd
