// Unit tests for the util module: Status/Result, string helpers, CSV,
// the thread pool, and log-line formatting (text + JSON modes).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace crowd {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status st = Status::Invalid("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad thing");

  EXPECT_TRUE(Status::InsufficientData("x").IsInsufficientData());
  EXPECT_TRUE(Status::NumericalError("x").IsNumericalError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FilteredOut("x").IsFilteredOut());
  EXPECT_EQ(Status::FilteredOut("w2").ToString(), "Filtered out: w2");
}

TEST(Status, WithContextPrepends) {
  Status st = Status::IoError("open failed").WithContext("loading data");
  EXPECT_EQ(st.message(), "loading data: open failed");
  EXPECT_TRUE(Status::OK().WithContext("nothing").ok());
}

TEST(Status, CopyIsCheapAndEqualByCode) {
  Status a = Status::Invalid("one");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "one");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(Result, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> Doubler(Result<int> in) {
  CROWD_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::Invalid("x")).status().IsInvalid());
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("a=%d b=%.2f", 3, 1.5), "a=3 b=1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtil, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("nope").ok());
}

TEST(StringUtil, ParseIntStrict) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Csv, ParsesHeaderAndRows) {
  auto table = ParseCsv("# comment\nworker,task,response\n1,2,0\n3,4,1\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->header.size(), 3u);
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "1");
  EXPECT_EQ(*table->ColumnIndex("task"), 1u);
  EXPECT_TRUE(table->ColumnIndex("missing").status().IsNotFound());
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_TRUE(ParseCsv("a,b\n1\n").status().IsIoError());
}

TEST(Csv, RejectsEmptyInput) {
  EXPECT_TRUE(ParseCsv("").status().IsIoError());
  EXPECT_TRUE(ParseCsv("# only comments\n").status().IsIoError());
}

TEST(Csv, QuotedFieldsRoundTrip) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"a,b", "say \"hi\""}, {"plain", "words"}};
  auto parsed = ParseCsv(WriteCsv(table));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->rows[0][0], "a,b");
  EXPECT_EQ(parsed->rows[0][1], "say \"hi\"");
  EXPECT_EQ(parsed->rows[1][1], "words");
}

TEST(Csv, FileRoundTrip) {
  std::string path = testing::TempDir() + "/crowd_csv_test.csv";
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileIsIoError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/path.csv").status().IsIoError());
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h.store(0);
    Status st = pool.ParallelFor(0, hits.size(), [&](size_t i) {
      hits[i].fetch_add(1);
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                   << threads << " threads";
    }
  }
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  EXPECT_TRUE(pool.ParallelFor(5, 5, [](size_t) {
                    return Status::Internal("never called");
                  }).ok());
  int calls = 0;
  EXPECT_TRUE(pool.ParallelFor(7, 8, [&](size_t i) {
                    EXPECT_EQ(i, 7u);
                    ++calls;
                    return Status::OK();
                  }).ok());
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, LowestFailingIndexWinsRegardlessOfSchedule) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    Status st = pool.ParallelFor(0, 64, [](size_t i) {
      if (i >= 5) return Status::Invalid(StrFormat("index %zu", i));
      return Status::OK();
    });
    EXPECT_TRUE(st.IsInvalid());
    EXPECT_EQ(st.message(), "index 5");
  }
}

TEST(ThreadPool, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(0, 8, [](size_t i) -> Status {
    if (i == 3) throw std::runtime_error("boom");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("boom"), std::string::npos);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<size_t> sum{0};
    Status st = pool.ParallelFor(0, 50, [&](size_t i) {
      sum.fetch_add(i);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(sum.load(), 49u * 50u / 2u);
  }
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3u);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool(1).num_threads(), 1u);
  EXPECT_EQ(ThreadPool(5).num_threads(), 5u);
}

TEST(Logging, TextFormatLine) {
  std::string line = internal::FormatLogLine(
      LogFormat::kText, LogLevel::kWarning, "src/core/foo.cc", 42,
      "something odd", 1722000000.25);
  EXPECT_EQ(line, "[WARN foo.cc:42] something odd\n");
}

TEST(Logging, JsonFormatLine) {
  std::string line = internal::FormatLogLine(
      LogFormat::kJson, LogLevel::kError, "src/core/foo.cc", 42,
      "boom", 1722000000.25);
  EXPECT_EQ(line,
            "{\"ts\":1722000000.250000,\"level\":\"ERROR\","
            "\"src\":\"foo.cc:42\",\"msg\":\"boom\"}\n");
}

TEST(Logging, JsonEscapesMessage) {
  std::string line = internal::FormatLogLine(
      LogFormat::kJson, LogLevel::kInfo, "a.cc", 1,
      "quote \" backslash \\ newline \n tab \t ctrl \x01 end", 0.0);
  EXPECT_NE(line.find("quote \\\" backslash \\\\ newline \\n tab \\t "
                      "ctrl \\u0001 end"),
            std::string::npos)
      << line;
  // One line out: the only '\n' is the terminator.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
}

TEST(Logging, FormatSwitchRoundTrips) {
  LogFormat before = GetLogFormat();
  SetLogFormat(LogFormat::kJson);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);
  SetLogFormat(LogFormat::kText);
  EXPECT_EQ(GetLogFormat(), LogFormat::kText);
  SetLogFormat(before);
}

}  // namespace
}  // namespace crowd
