// The parallel evaluation engine's core guarantee: num_threads changes
// wall-clock, never results. Every entry point that fans out over the
// thread pool must produce bit-identical assessments and identically
// ordered failures for every thread count. This suite is also the
// target of the TSan CI job — any data race in the worker fan-out
// shows up here under -fsanitize=thread.

#include <gtest/gtest.h>

#include <vector>

#include "core/evaluator.h"
#include "core/incremental.h"
#include "core/kary_m_worker.h"
#include "core/m_worker.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd::core {
namespace {

// Exact (bitwise) equality of two binary evaluation results, including
// the order and contents of the failure list.
void ExpectIdentical(const MWorkerResult& a, const MWorkerResult& b,
                     const char* label) {
  ASSERT_EQ(a.assessments.size(), b.assessments.size()) << label;
  ASSERT_EQ(a.failures.size(), b.failures.size()) << label;
  for (size_t i = 0; i < a.assessments.size(); ++i) {
    const WorkerAssessment& x = a.assessments[i];
    const WorkerAssessment& y = b.assessments[i];
    EXPECT_EQ(x.worker, y.worker) << label;
    EXPECT_EQ(x.error_rate, y.error_rate) << label << " w" << x.worker;
    EXPECT_EQ(x.deviation, y.deviation) << label << " w" << x.worker;
    EXPECT_EQ(x.interval.lo, y.interval.lo) << label << " w" << x.worker;
    EXPECT_EQ(x.interval.hi, y.interval.hi) << label << " w" << x.worker;
    EXPECT_EQ(x.interval.confidence, y.interval.confidence) << label;
    EXPECT_EQ(x.num_triples, y.num_triples) << label << " w" << x.worker;
    EXPECT_EQ(x.any_clamped, y.any_clamped) << label << " w" << x.worker;
  }
  for (size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].first, b.failures[i].first) << label;
    EXPECT_EQ(a.failures[i].second.code(), b.failures[i].second.code())
        << label;
    EXPECT_EQ(a.failures[i].second.message(),
              b.failures[i].second.message())
        << label;
  }
}

// A seeded non-regular pool with a guaranteed failure entry (worker 11
// loses every response), so both output vectors are exercised.
data::ResponseMatrix NonRegularMatrixWithFailure() {
  Random rng(17);
  sim::BinarySimConfig config;
  config.num_workers = 12;
  config.num_tasks = 150;
  config.assignment = sim::AssignmentConfig::Iid(0.7);
  auto sim = sim::SimulateBinary(config, &rng);
  for (data::TaskId t = 0; t < config.num_tasks; ++t) {
    sim.dataset.mutable_responses()->Clear(11, t);
  }
  return sim.dataset.responses();
}

TEST(ParallelDeterminism, MWorkerBitIdenticalAcrossThreadCounts) {
  data::ResponseMatrix responses = NonRegularMatrixWithFailure();
  BinaryOptions options;
  options.num_threads = 1;
  auto serial = MWorkerEvaluate(responses, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_FALSE(serial->assessments.empty());
  ASSERT_FALSE(serial->failures.empty());  // Worker 11.
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.num_threads = threads;
    auto parallel = MWorkerEvaluate(responses, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectIdentical(*serial, *parallel,
                    threads == 2 ? "threads=2" : "threads=8");
  }
}

TEST(ParallelDeterminism, MWorkerAutoThreadsAlsoIdentical) {
  data::ResponseMatrix responses = NonRegularMatrixWithFailure();
  BinaryOptions options;
  options.num_threads = 1;
  auto serial = MWorkerEvaluate(responses, options);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 0;  // One thread per hardware core.
  auto parallel = MWorkerEvaluate(responses, options);
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(*serial, *parallel, "threads=auto");
}

TEST(ParallelDeterminism, RandomPairingStaysSeededUnderThreads) {
  // The kRandom pairing strategy derives its stream from the worker id,
  // so it must stay deterministic under the fan-out too.
  data::ResponseMatrix responses = NonRegularMatrixWithFailure();
  BinaryOptions options;
  options.pairing = PairingStrategy::kRandom;
  options.pairing_seed = 99;
  options.num_threads = 1;
  auto serial = MWorkerEvaluate(responses, options);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 4;
  auto parallel = MWorkerEvaluate(responses, options);
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(*serial, *parallel, "random pairing");
}

TEST(ParallelDeterminism, KaryAllWorkersMatchesSerial) {
  Random rng(23);
  sim::KarySimConfig config;
  config.arity = 3;
  config.num_workers = 6;
  config.num_tasks = 400;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  KaryMWorkerOptions options;
  options.num_threads = 1;
  KaryMWorkerResult serial =
      KaryEvaluateAllWorkers(sim->dataset.responses(), options);
  ASSERT_FALSE(serial.assessments.empty());
  options.num_threads = 4;
  KaryMWorkerResult parallel =
      KaryEvaluateAllWorkers(sim->dataset.responses(), options);
  ASSERT_EQ(serial.assessments.size(), parallel.assessments.size());
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (size_t i = 0; i < serial.assessments.size(); ++i) {
    const KaryWorkerAssessment& x = serial.assessments[i];
    const KaryWorkerAssessment& y = parallel.assessments[i];
    EXPECT_EQ(x.worker, y.worker);
    EXPECT_EQ(x.num_triples, y.num_triples);
    for (int r = 0; r < config.arity; ++r) {
      for (int c = 0; c < config.arity; ++c) {
        EXPECT_EQ(x.p(r, c), y.p(r, c)) << "w" << x.worker;
        EXPECT_EQ(x.intervals[r][c].lo, y.intervals[r][c].lo);
        EXPECT_EQ(x.intervals[r][c].hi, y.intervals[r][c].hi);
      }
    }
  }
  for (size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].first, parallel.failures[i].first);
    EXPECT_EQ(serial.failures[i].second.code(),
              parallel.failures[i].second.code());
  }
}

TEST(ParallelDeterminism, IncrementalEvaluateAllMatchesSerial) {
  Random rng(29);
  sim::BinarySimConfig config;
  config.num_workers = 8;
  config.num_tasks = 120;
  config.assignment = sim::AssignmentConfig::Iid(0.75);
  auto sim = sim::SimulateBinary(config, &rng);

  BinaryOptions serial_options;
  serial_options.num_threads = 1;
  BinaryOptions parallel_options;
  parallel_options.num_threads = 4;
  IncrementalEvaluator serial(8, 120, serial_options);
  IncrementalEvaluator parallel(8, 120, parallel_options);
  for (data::TaskId t = 0; t < 120; ++t) {
    for (data::WorkerId w = 0; w < 8; ++w) {
      auto r = sim.dataset.responses().Get(w, t);
      if (!r.has_value()) continue;
      ASSERT_TRUE(serial.AddResponse(w, t, *r).ok());
      ASSERT_TRUE(parallel.AddResponse(w, t, *r).ok());
    }
  }
  MWorkerResult a = serial.EvaluateAll();
  MWorkerResult b = parallel.EvaluateAll();
  ExpectIdentical(a, b, "incremental");
  EXPECT_EQ(serial.DirtyWorkerCount(), 0u);
  EXPECT_EQ(parallel.DirtyWorkerCount(), 0u);
  // Warm caches: a second parallel EvaluateAll reuses every entry and
  // still matches.
  MWorkerResult c = parallel.EvaluateAll();
  ExpectIdentical(a, c, "incremental warm");
}

TEST(ParallelDeterminism, EvaluatorConfigThreadsPropagate) {
  data::ResponseMatrix responses = NonRegularMatrixWithFailure();
  CrowdEvaluator::Config serial_config;
  serial_config.num_threads = 1;
  auto serial = CrowdEvaluator(serial_config).EvaluateBinary(responses);
  ASSERT_TRUE(serial.ok());
  CrowdEvaluator::Config parallel_config;
  parallel_config.num_threads = 4;
  auto parallel =
      CrowdEvaluator(parallel_config).EvaluateBinary(responses);
  ASSERT_TRUE(parallel.ok());
  MWorkerResult a{serial->assessments, serial->failures};
  MWorkerResult b{parallel->assessments, parallel->failures};
  ExpectIdentical(a, b, "facade");
}

}  // namespace
}  // namespace crowd::core
