// Unit and property tests for the LU decomposition, solver, inverse
// and determinant.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.h"
#include "rng/random.h"

namespace crowd::linalg {
namespace {

Matrix RandomMatrix(size_t n, Random* rng, double scale = 1.0) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      m(i, j) = rng->Uniform(-scale, scale);
    }
  }
  return m;
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2, 1}, {1, 3}};
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok()) << x.status();
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, InverseOfKnownMatrix) {
  Matrix a{{4, 7}, {2, 6}};
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix expected{{0.6, -0.7}, {-0.2, 0.4}};
  EXPECT_TRUE(inv->ApproxEquals(expected, 1e-12));
}

TEST(Lu, DeterminantKnownValues) {
  EXPECT_NEAR(*Determinant(Matrix{{3}}), 3.0, 1e-12);
  EXPECT_NEAR(*Determinant(Matrix{{1, 2}, {3, 4}}), -2.0, 1e-12);
  EXPECT_NEAR(*Determinant(Matrix{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}),
              24.0, 1e-12);
  // Permutation sign.
  EXPECT_NEAR(*Determinant(Matrix{{0, 1}, {1, 0}}), -1.0, 1e-12);
}

TEST(Lu, SingularMatrixReported) {
  Matrix singular{{1, 2}, {2, 4}};
  EXPECT_TRUE(Inverse(singular).status().IsNumericalError());
  EXPECT_NEAR(*Determinant(singular), 0.0, 1e-12);
  Matrix zero_row{{0, 0}, {1, 1}};
  EXPECT_FALSE(LuDecomposition::Compute(zero_row).ok());
}

TEST(Lu, NonSquareRejected) {
  EXPECT_TRUE(
      LuDecomposition::Compute(Matrix(2, 3)).status().IsInvalid());
}

TEST(Lu, DimensionMismatchRejected) {
  auto lu = LuDecomposition::Compute(Matrix::Identity(3));
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(lu->Solve(Vector{1, 2}).status().IsInvalid());
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a{{0, 1}, {1, 0}};
  auto x = SolveLinearSystem(a, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

// Property: A * A^{-1} = I for random well-conditioned matrices.
TEST(LuProperty, InverseRoundTrip) {
  Random rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.UniformInt(8);
    Matrix a = RandomMatrix(n, &rng);
    // Diagonal boost keeps the draw well-conditioned.
    for (size_t i = 0; i < n; ++i) a(i, i) += 3.0;
    auto inv = Inverse(a);
    ASSERT_TRUE(inv.ok()) << inv.status();
    EXPECT_TRUE((a * *inv).ApproxEquals(Matrix::Identity(n), 1e-9));
    EXPECT_TRUE((*inv * a).ApproxEquals(Matrix::Identity(n), 1e-9));
  }
}

// Property: solving against a known product recovers the factor.
TEST(LuProperty, SolveRecoversKnownSolution) {
  Random rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.UniformInt(10);
    Matrix a = RandomMatrix(n, &rng);
    for (size_t i = 0; i < n; ++i) a(i, i) += 4.0;
    Vector x_true(n);
    for (double& v : x_true) v = rng.Uniform(-2, 2);
    Vector b = a * x_true;
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
    }
  }
}

// Property: det(AB) = det(A) det(B).
TEST(LuProperty, DeterminantIsMultiplicative) {
  Random rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.UniformInt(5);
    Matrix a = RandomMatrix(n, &rng);
    Matrix b = RandomMatrix(n, &rng);
    double det_ab = *Determinant(a * b);
    double det_a_det_b = *Determinant(a) * *Determinant(b);
    EXPECT_NEAR(det_ab, det_a_det_b,
                1e-9 * std::max(1.0, std::fabs(det_ab)));
  }
}

// Property: matrix solve agrees column-wise with vector solve.
TEST(LuProperty, MatrixSolveMatchesVectorSolve) {
  Random rng(19);
  Matrix a = RandomMatrix(4, &rng);
  for (size_t i = 0; i < 4; ++i) a(i, i) += 3.0;
  Matrix b = RandomMatrix(4, &rng);
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve(b);
  ASSERT_TRUE(x.ok());
  for (size_t j = 0; j < 4; ++j) {
    auto col = lu->Solve(b.Column(j));
    ASSERT_TRUE(col.ok());
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR((*x)(i, j), (*col)[i], 1e-12);
    }
  }
}

}  // namespace
}  // namespace crowd::linalg
