// Tests for the baselines: majority vote, gold-standard scoring, the
// old (KDD'13) technique and Dawid-Skene EM.

#include <gtest/gtest.h>

#include "baselines/dawid_skene.h"
#include "baselines/gold_standard.h"
#include "baselines/majority_vote.h"
#include "baselines/old_technique.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd::baselines {
namespace {

data::ResponseMatrix SmallMatrix() {
  // 3 workers x 4 binary tasks; w2 disagrees on tasks 1 and 3.
  data::ResponseMatrix m(3, 4, 2);
  int rows[3][4] = {{0, 1, 1, 0}, {0, 1, 1, 0}, {0, 0, 1, 1}};
  for (data::WorkerId w = 0; w < 3; ++w) {
    for (data::TaskId t = 0; t < 4; ++t) {
      m.Set(w, t, rows[w][t]).AbortIfNotOk();
    }
  }
  return m;
}

TEST(MajorityVote, LabelsAndTies) {
  auto labels = MajorityLabels(SmallMatrix());
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(*labels[0], 0);
  EXPECT_EQ(*labels[1], 1);
  EXPECT_EQ(*labels[2], 1);
  EXPECT_EQ(*labels[3], 0);

  // Tie on a task answered by two disagreeing workers: smaller label.
  data::ResponseMatrix tie(2, 1, 2);
  tie.Set(0, 0, 1).AbortIfNotOk();
  tie.Set(1, 0, 0).AbortIfNotOk();
  EXPECT_EQ(*MajorityLabels(tie)[0], 0);

  // Unanswered task has no label.
  data::ResponseMatrix empty(2, 1, 2);
  EXPECT_FALSE(MajorityLabels(empty)[0].has_value());
}

TEST(MajorityVote, ProxyErrorRates) {
  auto rates = MajorityProxyErrorRates(SmallMatrix(),
                                       /*exclude_self=*/false);
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(*rates[0], 0.0);
  EXPECT_DOUBLE_EQ(*rates[1], 0.0);
  EXPECT_DOUBLE_EQ(*rates[2], 0.5);
}

TEST(MajorityVote, ExcludeSelfAvoidsSelfAgreement) {
  // Two workers: with self included each "agrees with the majority"
  // whenever they break a tie in their own favor; excluding self, a
  // disagreement task scores against both.
  data::ResponseMatrix m(2, 2, 2);
  m.Set(0, 0, 0).AbortIfNotOk();
  m.Set(1, 0, 1).AbortIfNotOk();
  m.Set(0, 1, 1).AbortIfNotOk();
  m.Set(1, 1, 1).AbortIfNotOk();
  auto rates = MajorityProxyErrorRates(m, /*exclude_self=*/true);
  EXPECT_DOUBLE_EQ(*rates[0], 0.5);  // Disagrees with w1 on task 0.
  EXPECT_DOUBLE_EQ(*rates[1], 0.5);
}

TEST(GoldStandard, ScoresAgainstGold) {
  data::Dataset dataset("g", SmallMatrix());
  dataset.SetGold(0, 0).AbortIfNotOk();
  dataset.SetGold(1, 1).AbortIfNotOk();
  dataset.SetGold(2, 1).AbortIfNotOk();
  dataset.SetGold(3, 0).AbortIfNotOk();
  auto assessment = EvaluateWorkerAgainstGold(dataset, 2, 0.9);
  ASSERT_TRUE(assessment.ok());
  EXPECT_EQ(assessment->attempted, 4);
  EXPECT_EQ(assessment->wrong, 2);
  EXPECT_DOUBLE_EQ(assessment->error_rate, 0.5);
  EXPECT_TRUE(assessment->wilson.Contains(0.5));

  auto all = EvaluateAllAgainstGold(dataset, 0.9);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(
      EvaluateWorkerAgainstGold(dataset, 9, 0.9).status().IsInvalid());
}

TEST(OldTechnique, ThreeWorkerIntervalContainsTruthOnEasyData) {
  Random rng(3);
  sim::BinarySimConfig config;
  config.num_workers = 3;
  config.num_tasks = 2000;
  config.pool.error_rates = {0.15};
  auto sim = sim::SimulateBinary(config, &rng);
  OldTechniqueOptions options;
  options.confidence = 0.95;
  auto result =
      OldThreeWorkerEvaluate(sim.dataset.responses(), 0, 1, 2, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->error_rate, 0.15, 0.04);
  EXPECT_TRUE(result->interval.Contains(0.15));
}

TEST(OldTechnique, RequiresBinaryAndRegular) {
  data::ResponseMatrix kary(3, 4, 3);
  OldTechniqueOptions options;
  EXPECT_TRUE(
      OldThreeWorkerEvaluate(kary, 0, 1, 2, options).status().IsInvalid());

  // Non-regular data rejected by the m-worker variant.
  data::ResponseMatrix holes = SmallMatrix();
  holes.Clear(0, 0);
  EXPECT_TRUE(OldMWorkerEvaluate(holes, options).status().IsInvalid());

  data::ResponseMatrix two(2, 4, 2);
  for (data::TaskId t = 0; t < 4; ++t) {
    two.Set(0, t, 0).AbortIfNotOk();
    two.Set(1, t, 0).AbortIfNotOk();
  }
  EXPECT_TRUE(
      OldMWorkerEvaluate(two, options).status().IsInsufficientData());
}

TEST(OldTechnique, SuperWorkerPathEvaluatesAllWorkers) {
  Random rng(5);
  sim::BinarySimConfig config;
  config.num_workers = 7;
  config.num_tasks = 400;
  auto sim = sim::SimulateBinary(config, &rng);
  OldTechniqueOptions options;
  options.confidence = 0.8;
  auto result = OldMWorkerEvaluate(sim.dataset.responses(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 7u);
  for (const auto& a : *result) {
    EXPECT_GE(a.interval.lo, 0.0);
    EXPECT_LE(a.interval.hi, 0.5);
    EXPECT_NEAR(a.error_rate, sim.true_error_rates[a.worker], 0.15);
  }
}

TEST(DawidSkene, PerfectWorkersYieldNearPerfectConfusion) {
  Random rng(7);
  sim::BinarySimConfig config;
  config.num_workers = 5;
  config.num_tasks = 400;
  config.pool.error_rates = {0.02};
  auto sim = sim::SimulateBinary(config, &rng);
  auto model = FitDawidSkene(sim.dataset.responses());
  ASSERT_TRUE(model.ok());
  for (size_t w = 0; w < 5; ++w) {
    EXPECT_LT(model->WorkerErrorRate(w), 0.06);
  }
  // Labels essentially match the gold truth.
  size_t wrong = 0;
  for (data::TaskId t = 0; t < 400; ++t) {
    if (model->labels[t] != *sim.dataset.Gold(t)) ++wrong;
  }
  EXPECT_LT(wrong, 8u);
}

TEST(DawidSkene, KaryConfusionRecovery) {
  Random rng(9);
  sim::KarySimConfig config;
  config.arity = 3;
  config.num_tasks = 4000;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  auto model = FitDawidSkene(sim->dataset.responses());
  ASSERT_TRUE(model.ok());
  // EM has label-permutation ambiguity in principle, but majority
  // initialization pins the labeling here; allow a loose tolerance.
  for (size_t w = 0; w < 3; ++w) {
    EXPECT_LT(model->confusion[w].MaxAbsDiff(sim->true_matrices[w]),
              0.15);
  }
}

TEST(DawidSkene, EmptyTaskRejected) {
  data::ResponseMatrix m(2, 2, 2);
  m.Set(0, 0, 1).AbortIfNotOk();
  EXPECT_TRUE(FitDawidSkene(m).status().IsInsufficientData());
}

TEST(DawidSkene, LikelihoodNonDecreasingAcrossRuns) {
  Random rng(11);
  sim::BinarySimConfig config;
  config.num_workers = 5;
  config.num_tasks = 200;
  auto sim = sim::SimulateBinary(config, &rng);
  DawidSkeneOptions few;
  few.max_iterations = 2;
  DawidSkeneOptions many;
  many.max_iterations = 50;
  auto short_run = FitDawidSkene(sim.dataset.responses(), few);
  auto long_run = FitDawidSkene(sim.dataset.responses(), many);
  ASSERT_TRUE(short_run.ok());
  ASSERT_TRUE(long_run.ok());
  EXPECT_GE(long_run->log_likelihood, short_run->log_likelihood - 1e-9);
}

}  // namespace
}  // namespace crowd::baselines
