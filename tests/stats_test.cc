// Tests for the stats module: normal distribution, descriptive
// statistics and binomial confidence intervals.

#include <gtest/gtest.h>

#include <cmath>

#include "rng/random.h"
#include "stats/descriptive.h"
#include "stats/intervals.h"
#include "stats/normal.h"

namespace crowd::stats {
namespace {

TEST(Normal, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-16);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Normal, QuantileKnownValues) {
  EXPECT_NEAR(*NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(*NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(*NormalQuantile(0.995), 2.5758293035489004, 1e-9);
  EXPECT_NEAR(*NormalQuantile(0.0001), -3.719016485455709, 1e-8);
}

TEST(Normal, QuantileInvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    EXPECT_NEAR(NormalCdf(*NormalQuantile(p)), p, 1e-12) << p;
  }
}

TEST(Normal, QuantileDomain) {
  EXPECT_FALSE(NormalQuantile(0.0).ok());
  EXPECT_FALSE(NormalQuantile(1.0).ok());
  EXPECT_FALSE(NormalQuantile(-0.5).ok());
}

TEST(Normal, TwoSidedZ) {
  EXPECT_NEAR(*TwoSidedZ(0.95), 1.959963984540054, 1e-9);
  EXPECT_NEAR(*TwoSidedZ(0.5), 0.6744897501960817, 1e-9);
  EXPECT_FALSE(TwoSidedZ(0.0).ok());
  EXPECT_FALSE(TwoSidedZ(1.0).ok());
}

TEST(Descriptive, MeanVarianceQuantiles) {
  std::vector<double> sample = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(*Mean(sample), 5.0);
  EXPECT_NEAR(*Variance(sample), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(*StdDev(sample), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(*Median(sample), 4.5);
  EXPECT_DOUBLE_EQ(*Quantile(sample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(*Quantile(sample, 1.0), 9.0);
}

TEST(Descriptive, EdgeCases) {
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_FALSE(Variance({1.0}).ok());
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.5).ok());
  EXPECT_DOUBLE_EQ(*Quantile({3.0}, 0.7), 3.0);
}

TEST(Descriptive, RunningStatMatchesBatch) {
  Random rng(3);
  std::vector<double> sample;
  RunningStat stat;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-5, 5);
    sample.push_back(x);
    stat.Add(x);
  }
  EXPECT_NEAR(stat.mean(), *Mean(sample), 1e-10);
  EXPECT_NEAR(stat.variance(), *Variance(sample), 1e-8);
  EXPECT_EQ(stat.count(), 1000u);
}

TEST(Descriptive, RunningStatMerge) {
  Random rng(4);
  RunningStat all, a, b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Gaussian(2.0, 3.0);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Intervals, BasicGeometry) {
  ConfidenceInterval ci{0.2, 0.6, 0.9};
  EXPECT_DOUBLE_EQ(ci.center(), 0.4);
  EXPECT_DOUBLE_EQ(ci.size(), 0.4);
  EXPECT_TRUE(ci.Contains(0.2));
  EXPECT_TRUE(ci.Contains(0.6));
  EXPECT_FALSE(ci.Contains(0.61));
  auto clamped = ConfidenceInterval{-0.1, 0.55, 0.9}.ClampTo(0.0, 0.5);
  EXPECT_DOUBLE_EQ(clamped.lo, 0.0);
  EXPECT_DOUBLE_EQ(clamped.hi, 0.5);
}

TEST(Intervals, NormalInterval) {
  auto ci = NormalInterval(0.3, 0.05, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->lo, 0.3 - 1.959963984540054 * 0.05, 1e-10);
  EXPECT_NEAR(ci->hi, 0.3 + 1.959963984540054 * 0.05, 1e-10);
  EXPECT_FALSE(NormalInterval(0.3, -0.1, 0.95).ok());
  EXPECT_FALSE(NormalInterval(0.3, 0.1, 1.5).ok());
}

TEST(Intervals, WaldAndWilsonKnownValues) {
  // 10 successes out of 50 at 95%.
  auto wald = WaldInterval(10, 50, 0.95);
  ASSERT_TRUE(wald.ok());
  EXPECT_NEAR(wald->center(), 0.2, 1e-12);
  EXPECT_NEAR(wald->size(), 2 * 1.959963984540054 *
                                 std::sqrt(0.2 * 0.8 / 50),
              1e-9);
  auto wilson = WilsonInterval(10, 50, 0.95);
  ASSERT_TRUE(wilson.ok());
  // Wilson reference: [0.1124, 0.3304] (standard worked example).
  EXPECT_NEAR(wilson->lo, 0.1124, 5e-4);
  EXPECT_NEAR(wilson->hi, 0.3304, 5e-4);
}

TEST(Intervals, WilsonStaysInsideUnitInterval) {
  auto all_fail = WilsonInterval(0, 5, 0.99);
  ASSERT_TRUE(all_fail.ok());
  EXPECT_GE(all_fail->lo, 0.0);
  auto all_pass = WilsonInterval(5, 5, 0.99);
  ASSERT_TRUE(all_pass.ok());
  EXPECT_LE(all_pass->hi, 1.0);
}

TEST(Intervals, InvalidCountsRejected) {
  EXPECT_FALSE(WaldInterval(-1, 10, 0.9).ok());
  EXPECT_FALSE(WaldInterval(11, 10, 0.9).ok());
  EXPECT_FALSE(WilsonInterval(1, 0, 0.9).ok());
}

// Wilson coverage property: simulated coverage is near nominal.
TEST(IntervalsProperty, WilsonCoverage) {
  Random rng(7);
  const double p = 0.3;
  const int trials = 3000;
  int covered = 0;
  for (int i = 0; i < trials; ++i) {
    int successes = rng.Binomial(40, p);
    auto ci = WilsonInterval(successes, 40, 0.9);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(p)) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.9, 0.03);
}

}  // namespace
}  // namespace crowd::stats
