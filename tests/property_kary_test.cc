// Parameterized property suite for the k-ary estimator: planted
// response matrices are recovered consistently across arities,
// selectivities and densities, and interval coverage tracks the
// nominal confidence.

#include <gtest/gtest.h>

#include <cmath>

#include "core/kary_estimator.h"
#include "experiments/runner.h"
#include "rng/random.h"
#include "sim/kary_worker.h"
#include "sim/simulator.h"

namespace crowd {
namespace {

struct KaryCase {
  int arity;
  size_t tasks;
  double density;
  double confidence;
};

void PrintTo(const KaryCase& c, std::ostream* os) {
  *os << "k" << c.arity << "_n" << c.tasks << "_d" << c.density << "_c"
      << c.confidence;
}

class KaryCoverage : public testing::TestWithParam<KaryCase> {};

TEST_P(KaryCoverage, CoverageAtLeastRoughlyNominal) {
  const KaryCase& param = GetParam();
  size_t covered = 0, total = 0;
  int failures = 0;
  experiments::RepeatTrials(
      30, 0x6A47 + param.arity * 17 + param.tasks, [&](int, Random* rng) {
        sim::KarySimConfig config;
        config.arity = param.arity;
        config.num_tasks = param.tasks;
        if (param.density < 1.0) {
          config.assignment = sim::AssignmentConfig::Iid(param.density);
        }
        auto sim = sim::SimulateKary(config, rng);
        ASSERT_TRUE(sim.ok());
        core::KaryOptions options;
        options.confidence = param.confidence;
        auto result = core::KaryEvaluate(sim->dataset.responses(), 0, 1,
                                         2, options);
        if (!result.ok()) {
          ++failures;
          return;
        }
        for (int w = 0; w < 3; ++w) {
          for (int r = 0; r < param.arity; ++r) {
            for (int c = 0; c < param.arity; ++c) {
              ++total;
              if (result->workers[w].intervals[r][c].Contains(
                      sim->true_matrices[w](r, c))) {
                ++covered;
              }
            }
          }
        }
      });
  ASSERT_GT(total, 200u);
  EXPECT_LT(failures, 10);
  double accuracy = static_cast<double>(covered) / static_cast<double>(total);
  // The paper reports the k-ary intervals as at-least-nominal
  // (conservative on small data); insist on no large under-coverage.
  EXPECT_GT(accuracy, param.confidence - 0.12)
      << "coverage " << accuracy;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KaryCoverage,
    testing::Values(KaryCase{2, 300, 1.0, 0.8},
                    KaryCase{2, 1000, 0.8, 0.9},
                    KaryCase{3, 500, 1.0, 0.8},
                    KaryCase{3, 1000, 0.9, 0.9},
                    KaryCase{4, 1000, 1.0, 0.8}));

class KaryConsistency : public testing::TestWithParam<int> {};

// Point estimates converge to the planted matrices as n grows.
TEST_P(KaryConsistency, EstimateErrorShrinksWithTasks) {
  const int arity = GetParam();
  auto mean_error = [&](size_t n) {
    double total = 0.0;
    int counted = 0;
    experiments::RepeatTrials(12, 0xC0 + arity, [&](int, Random* rng) {
      sim::KarySimConfig config;
      config.arity = arity;
      config.num_tasks = n;
      auto sim = sim::SimulateKary(config, rng);
      ASSERT_TRUE(sim.ok());
      core::KaryOptions options;
      auto result =
          core::KaryEvaluate(sim->dataset.responses(), 0, 1, 2, options);
      if (!result.ok()) return;
      for (int w = 0; w < 3; ++w) {
        total += result->workers[w].p.MaxAbsDiff(sim->true_matrices[w]);
        ++counted;
      }
    });
    return counted > 0 ? total / counted : 1e9;
  };
  double coarse = mean_error(250);
  double fine = mean_error(4000);
  EXPECT_LT(fine, coarse);
  // The recovery problem conditions worse as arity grows (the
  // R_{3,2}^{-1} and rotation steps amplify sampling noise), so the
  // acceptance threshold is arity-aware. The k = 4 level matches the
  // larger interval sizes the paper itself reports at higher arity.
  const double threshold = arity == 2 ? 0.03 : (arity == 3 ? 0.06 : 0.15);
  EXPECT_LT(fine, threshold) << "arity " << arity;
}

INSTANTIATE_TEST_SUITE_P(Arities, KaryConsistency,
                         testing::Values(2, 3, 4));

// The estimator handles biased (asymmetric) workers — the case the
// paper emphasizes that symmetric-error models cannot represent.
TEST(KaryBias, AsymmetricWorkerRecovered) {
  // Worker 0 has a strong bias toward responding 0.
  linalg::Matrix biased{{0.95, 0.05}, {0.45, 0.55}};
  linalg::Matrix good{{0.9, 0.1}, {0.1, 0.9}};
  Random rng(55);
  sim::KarySimConfig config;
  config.arity = 2;
  config.num_tasks = 8000;
  config.matrix_pool = {biased};
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  // Overwrite workers 1 and 2 with good responses to isolate w0's bias.
  sim::KarySimConfig config_good = config;
  (void)config_good;
  // Simpler: plant all three from a pool where each worker gets
  // `biased`; recovery must still show the asymmetry.
  core::KaryOptions options;
  auto result =
      core::KaryEvaluate(sim->dataset.responses(), 0, 1, 2, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& p0 = result->workers[0].p;
  EXPECT_NEAR(p0(0, 0), 0.95, 0.05);
  EXPECT_NEAR(p0(1, 0), 0.45, 0.07);
  // False-positive and false-negative rates clearly differ.
  EXPECT_GT(p0(1, 0) - p0(0, 1), 0.2);
}

}  // namespace
}  // namespace crowd
