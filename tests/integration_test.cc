// End-to-end integration tests: full pipelines on simulated data and
// on the synthetic paper-dataset analogues. These are the tests that
// catch cross-module regressions — estimator consistency, interval
// coverage in the large, spammer filtering, and the k-ary spectral
// recovery of planted parameters.

#include <gtest/gtest.h>

#include "baselines/dawid_skene.h"
#include "core/evaluator.h"
#include "core/kary_estimator.h"
#include "core/m_worker.h"
#include "core/three_worker.h"
#include "experiments/metrics.h"
#include "experiments/runner.h"
#include "rng/random.h"
#include "sim/paper_datasets.h"
#include "sim/simulator.h"

namespace crowd {
namespace {

// With many regular tasks, the 3-worker estimator must recover the
// planted error rates closely.
TEST(IntegrationBinary, ThreeWorkerConsistency) {
  Random rng(7);
  sim::BinarySimConfig config;
  config.num_workers = 3;
  config.num_tasks = 20000;
  config.pool.error_rates = {0.1, 0.2, 0.3};
  auto sim = sim::SimulateBinary(config, &rng);

  core::BinaryOptions options;
  options.confidence = 0.95;
  auto result = core::ThreeWorkerEvaluate(sim.dataset.responses(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int w = 0; w < 3; ++w) {
    EXPECT_NEAR((*result)[w].error_rate, sim.true_error_rates[w], 0.02)
        << "worker " << w;
    EXPECT_LT((*result)[w].interval.size(), 0.05);
  }
}

// The m-worker estimator on non-regular data: estimates close to the
// planted rates and intervals that usually contain them.
TEST(IntegrationBinary, MWorkerNonRegularConsistency) {
  Random rng(11);
  sim::BinarySimConfig config;
  config.num_workers = 7;
  config.num_tasks = 4000;
  config.assignment = sim::AssignmentConfig::Iid(0.8);
  auto sim = sim::SimulateBinary(config, &rng);

  core::BinaryOptions options;
  options.confidence = 0.95;
  auto result = core::MWorkerEvaluate(sim.dataset.responses(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->assessments.size(), 7u);
  EXPECT_TRUE(result->failures.empty());
  for (const auto& a : result->assessments) {
    EXPECT_NEAR(a.error_rate, sim.true_error_rates[a.worker], 0.04);
    EXPECT_GE(a.num_triples, 3u);
  }
}

// Coverage: over repeated small experiments, ~c of the intervals must
// contain the true rate. This is the paper's Figure 2(a) in miniature.
TEST(IntegrationBinary, MWorkerCoverageNearNominal) {
  const double confidence = 0.8;
  experiments::IntervalScore score;
  experiments::RepeatTrials(120, 20150412, [&](int, Random* rng) {
    sim::BinarySimConfig config;
    config.num_workers = 7;
    config.num_tasks = 300;
    config.assignment = sim::AssignmentConfig::Iid(0.8);
    auto sim = sim::SimulateBinary(config, rng);
    core::BinaryOptions options;
    options.confidence = confidence;
    auto result = core::MWorkerEvaluate(sim.dataset.responses(), options);
    ASSERT_TRUE(result.ok()) << result.status();
    for (const auto& a : result->assessments) {
      score.Add(a.interval, sim.true_error_rates[a.worker]);
    }
  });
  EXPECT_GT(score.total(), 500u);
  EXPECT_NEAR(score.Accuracy(), confidence, 0.07);
}

// k-ary: on a large regular dataset the spectral estimator recovers
// the planted response matrices.
TEST(IntegrationKary, SpectralRecoveryOfPlantedMatrices) {
  Random rng(23);
  sim::KarySimConfig config;
  config.arity = 3;
  config.num_tasks = 20000;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok()) << sim.status();

  core::KaryOptions options;
  auto result = core::KaryEvaluate(sim->dataset.responses(), 0, 1, 2,
                                   options);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int w = 0; w < 3; ++w) {
    const auto& estimated = result->workers[w].p;
    const auto& truth = sim->true_matrices[w];
    EXPECT_LT(estimated.MaxAbsDiff(truth), 0.05) << "worker " << w;
  }
  // Uniform selectivity was planted.
  for (int z = 0; z < 3; ++z) {
    EXPECT_NEAR(result->selectivity[z], 1.0 / 3.0, 0.05);
  }
}

// k-ary intervals should contain the planted probabilities most of the
// time at high confidence.
TEST(IntegrationKary, IntervalsCoverPlantedProbabilities) {
  size_t covered = 0;
  size_t total = 0;
  experiments::RepeatTrials(25, 99, [&](int, Random* rng) {
    sim::KarySimConfig config;
    config.arity = 3;
    config.num_tasks = 1500;
    auto sim = sim::SimulateKary(config, rng);
    ASSERT_TRUE(sim.ok()) << sim.status();
    core::KaryOptions options;
    options.confidence = 0.95;
    auto result =
        core::KaryEvaluate(sim->dataset.responses(), 0, 1, 2, options);
    if (!result.ok()) return;  // Rare degenerate draws are acceptable.
    for (int w = 0; w < 3; ++w) {
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
          ++total;
          if (result->workers[w].intervals[r][c].Contains(
                  sim->true_matrices[w](r, c))) {
            ++covered;
          }
        }
      }
    }
  });
  ASSERT_GT(total, 400u);
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(total),
            0.85);
}

// The full evaluator pipeline on the synthetic IC analogue: spammer
// pre-filtering removes the planted spammers and the surviving
// assessments track the proxy error rates.
TEST(IntegrationPipeline, EvaluatorOnSyntheticIc) {
  auto dataset = sim::SyntheticIc(5);
  core::CrowdEvaluator::Config config;
  config.prefilter_spammers = true;
  config.binary.confidence = 0.9;
  core::CrowdEvaluator evaluator(config);

  auto report = evaluator.EvaluateBinary(dataset.responses());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->assessments.size(), 10u);
  for (const auto& a : report->assessments) {
    auto proxy = dataset.ProxyErrorRate(a.worker);
    ASSERT_TRUE(proxy.ok());
    // Kept workers are non-spammers; estimates should be in the right
    // region even on difficulty-correlated data. IC has only 48 tasks,
    // so individual estimates are noisy — this bounds gross failures.
    EXPECT_NEAR(a.error_rate, *proxy, 0.3);
  }
}

// All six paper-analogue datasets materialize with the documented
// shapes.
TEST(IntegrationPipeline, PaperDatasetShapes) {
  struct Expectation {
    const char* name;
    size_t workers;
    size_t tasks;
    int arity;
  };
  const Expectation expectations[] = {
      {"IC", 19, 48, 2},  {"RTE", 164, 800, 2}, {"TEM", 76, 462, 2},
      {"MOOC", 60, 300, 3}, {"WSD", 35, 350, 2}, {"WS", 40, 200, 2},
  };
  for (const auto& e : expectations) {
    auto dataset = sim::MakePaperDataset(e.name, 1);
    ASSERT_TRUE(dataset.ok()) << e.name;
    EXPECT_EQ(dataset->responses().num_workers(), e.workers) << e.name;
    EXPECT_EQ(dataset->responses().num_tasks(), e.tasks) << e.name;
    EXPECT_EQ(dataset->responses().arity(), e.arity) << e.name;
    EXPECT_EQ(dataset->GoldCount(), e.tasks) << e.name;
  }
}

// Dawid-Skene EM on simulated data should rank workers consistently
// with the planted error rates (sanity for the ablation bench).
TEST(IntegrationBaselines, DawidSkeneRecoversErrorOrdering) {
  Random rng(31);
  sim::BinarySimConfig config;
  config.num_workers = 9;
  config.num_tasks = 1200;
  auto sim = sim::SimulateBinary(config, &rng);
  auto model = baselines::FitDawidSkene(sim.dataset.responses());
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_TRUE(model->converged);
  for (size_t w = 0; w < 9; ++w) {
    EXPECT_NEAR(model->WorkerErrorRate(w), sim.true_error_rates[w], 0.06)
        << "worker " << w;
  }
}

}  // namespace
}  // namespace crowd
