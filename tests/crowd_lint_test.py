#!/usr/bin/env python3
"""Unit tests for scripts/crowd_lint.py: each rule must fire on a
seeded violation, stay quiet on the idiomatic equivalent, and honour
the `crowd-lint: allow(<rule>)` waiver. Run directly or via ctest
(test name `crowd_lint_unit`)."""

import os
import pathlib
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "scripts"))
import crowd_lint  # noqa: E402


def rules_firing(relpath, text):
    return sorted({v.rule for v in crowd_lint.lint_text(relpath, text)})


class FloatFormatRule(unittest.TestCase):
    def test_fires_on_low_precision_float_in_server(self):
        text = 'std::string s = StrFormat("%.6f", value);\n'
        self.assertEqual(rules_firing("src/server/protocol.cc", text),
                         ["float-format"])

    def test_fires_on_bare_g(self):
        self.assertEqual(
            rules_firing("src/server/service.cc",
                         'out += Format("%g", v);\n'),
            ["float-format"])

    def test_allows_17g_and_integer_formats(self):
        text = ('auto a = StrFormat("%.17g", v);\n'
                'auto b = StrFormat("%llu %zu %s %d", x, y, z, w);\n')
        self.assertEqual(rules_firing("src/server/protocol.cc", text), [])

    def test_out_of_scope_outside_server(self):
        self.assertEqual(
            rules_firing("src/stats/intervals.cc",
                         'StrFormat("[%.4f, %.4f]", lo, hi);\n'),
            [])

    def test_comment_mention_is_ignored(self):
        self.assertEqual(
            rules_firing("src/server/journal.cc",
                         "// doubles use %.6f here? no: see protocol\n"),
            [])


class IostreamRule(unittest.TestCase):
    def test_fires_on_cout_and_cerr_in_src(self):
        text = ('std::cout << "hi";\n'
                'std::cerr << "bye";\n')
        violations = crowd_lint.lint_text("src/core/evaluator.cc", text)
        self.assertEqual([v.rule for v in violations],
                         ["iostream", "iostream"])
        self.assertEqual([v.line for v in violations], [1, 2])

    def test_tools_and_tests_are_out_of_scope(self):
        text = 'std::cout << report;\n'
        self.assertEqual(rules_firing("tools/crowdeval.cc", text), [])
        self.assertEqual(rules_firing("tests/foo_test.cc", text), [])

    def test_waiver_suppresses(self):
        text = ("std::cerr << x;  "
                "// crowd-lint: allow(iostream) pre-logger abort path\n")
        self.assertEqual(rules_firing("src/util/logging.cc", text), [])


class RawMutexRule(unittest.TestCase):
    def test_fires_on_each_raw_type(self):
        for snippet in ("std::mutex mu_;",
                        "std::shared_mutex mu_;",
                        "std::lock_guard<std::mutex> l(mu_);",
                        "std::unique_lock<std::mutex> l(mu_);",
                        "std::scoped_lock l(a, b);"):
            self.assertIn(
                "raw-mutex",
                rules_firing("src/core/incremental.cc", snippet + "\n"),
                snippet)

    def test_shim_file_is_exempt(self):
        self.assertEqual(
            rules_firing("src/util/mutex.h",
                         "std::mutex mu_; std::unique_lock<std::mutex> "
                         "lock_;\n"),
            [])

    def test_shim_usage_is_clean(self):
        text = ("util::Mutex mu_;\n"
                "util::MutexLock lock(mu_);\n"
                "std::condition_variable cv_;\n")
        self.assertEqual(rules_firing("src/util/thread_pool.h", text), [])


class RngRule(unittest.TestCase):
    def test_fires_on_rand_and_random_device(self):
        for snippet in ("int x = rand();",
                        "srand(42);",
                        "std::random_device rd;"):
            self.assertIn("rng",
                          rules_firing("src/sim/simulator.cc",
                                       snippet + "\n"),
                          snippet)

    def test_rng_module_is_exempt(self):
        self.assertEqual(
            rules_firing("src/rng/random.cc", "std::random_device rd;\n"),
            [])

    def test_identifier_suffix_rand_is_not_flagged(self):
        self.assertEqual(
            rules_firing("src/core/agreement.cc",
                         "double integrand(double x);\n"
                         "double y = integrand(0.5);\n"),
            [])


class RawByteReadRule(unittest.TestCase):
    def test_fires_on_memcpy_and_reinterpret_cast_in_server(self):
        for snippet in (
                "std::memcpy(&header, bytes.data(), sizeof(header));",
                "memcpy(out, p, n);",
                "auto* h = reinterpret_cast<const Header*>(data);"):
            self.assertIn(
                "raw-byte-read",
                rules_firing("src/server/snapshot.cc", snippet + "\n"),
                snippet)

    def test_fires_in_csv_loader(self):
        self.assertIn(
            "raw-byte-read",
            rules_firing("src/util/csv.cc",
                         "std::memcpy(buf, line.data(), line.size());\n"))

    def test_binary_io_is_exempt(self):
        text = ("std::memcpy(out, data_ + offset_, size);\n"
                "auto* p = reinterpret_cast<const uint8_t*>(src);\n")
        self.assertEqual(rules_firing("src/server/binary_io.cc", text), [])
        self.assertEqual(rules_firing("src/server/binary_io.h", text), [])

    def test_out_of_scope_elsewhere(self):
        text = "std::memcpy(dst, src, n);\n"
        self.assertEqual(rules_firing("src/core/evaluator.cc", text), [])
        self.assertEqual(rules_firing("src/util/string_util.cc", text), [])
        self.assertEqual(rules_firing("tests/foo_test.cc", text), [])

    def test_reader_api_usage_is_clean(self):
        text = ("server::ByteReader reader(bytes);\n"
                "CROWD_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());\n"
                "CROWD_RETURN_NOT_OK(reader.ReadBytes(&rec, sizeof(rec)));\n")
        self.assertEqual(rules_firing("src/server/journal.cc", text), [])

    def test_waiver_suppresses_sockaddr_cast(self):
        text = ("::bind(fd, reinterpret_cast<sockaddr*>(&addr),  "
                "// crowd-lint: allow(raw-byte-read)\n"
                "       sizeof(addr));\n")
        self.assertEqual(rules_firing("src/server/socket_server.cc", text),
                         [])

    def test_memcpy_identifier_suffix_is_not_flagged(self):
        self.assertEqual(
            rules_firing("src/server/journal.cc",
                         "size_t fast_memcpy_bytes = 0;\n"),
            [])


class SpanNameRule(unittest.TestCase):
    def test_fires_on_nonconforming_names(self):
        for name in ("evaluate", "Core.Evaluate", "core.eval.deep",
                     "core-eval"):
            text = f'CROWD_SPAN("{name}");\n'
            self.assertIn("span-name",
                          rules_firing("src/core/m_worker.cc", text),
                          name)

    def test_accepts_stage_substage(self):
        text = ('CROWD_SPAN("core.evaluate_worker");\n'
                'CROWD_SPAN("journal.append");\n')
        self.assertEqual(rules_firing("src/core/m_worker.cc", text), [])


class ChangelogRule(unittest.TestCase):
    """Exercises the --base rule against a real throwaway git repo."""

    def _git(self, cwd, *args):
        subprocess.run(["git", "-c", "user.email=t@t", "-c",
                        "user.name=t", *args],
                       cwd=cwd, check=True, capture_output=True)

    def test_diff_without_changes_md_fires(self):
        with tempfile.TemporaryDirectory() as repo:
            self._git(repo, "init", "-q", "-b", "main")
            pathlib.Path(repo, "CHANGES.md").write_text("- seed\n")
            self._git(repo, "add", "."); self._git(repo, "commit", "-qm", "seed")
            pathlib.Path(repo, "code.cc").write_text("int x;\n")
            self._git(repo, "add", "."); self._git(repo, "commit", "-qm", "change")
            violations = crowd_lint.check_changelog(repo, "HEAD~1")
            self.assertEqual([v.rule for v in violations], ["changelog"])

    def test_diff_touching_changes_md_is_clean(self):
        with tempfile.TemporaryDirectory() as repo:
            self._git(repo, "init", "-q", "-b", "main")
            pathlib.Path(repo, "CHANGES.md").write_text("- seed\n")
            self._git(repo, "add", "."); self._git(repo, "commit", "-qm", "seed")
            pathlib.Path(repo, "CHANGES.md").write_text("- seed\n- PR\n")
            self._git(repo, "add", "."); self._git(repo, "commit", "-qm", "pr")
            self.assertEqual(crowd_lint.check_changelog(repo, "HEAD~1"), [])

    def test_empty_diff_is_clean(self):
        with tempfile.TemporaryDirectory() as repo:
            self._git(repo, "init", "-q", "-b", "main")
            pathlib.Path(repo, "CHANGES.md").write_text("- seed\n")
            self._git(repo, "add", "."); self._git(repo, "commit", "-qm", "seed")
            self.assertEqual(crowd_lint.check_changelog(repo, "HEAD"), [])


class TreeIsClean(unittest.TestCase):
    """The committed tree must be violation-free (the same property CI
    enforces; failing here means a rule or the tree regressed)."""

    def test_repo_lints_clean(self):
        root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir)
        total = []
        for relpath in crowd_lint.iter_files(root):
            with open(os.path.join(root, relpath), encoding="utf-8") as fh:
                total.extend(crowd_lint.lint_text(
                    relpath.replace(os.sep, "/"), fh.read()))
        self.assertEqual([str(v) for v in total], [])


if __name__ == "__main__":
    unittest.main()
