// Unit tests for the observability layer (src/obs/): histogram
// semantics and quantile edge cases, counter/gauge/histogram-metric
// behavior including exact multi-threaded aggregation, Prometheus
// export format, the summary table, the instrumentation gate, and the
// span tracer's ring-buffer bounds. The multi-threaded cases double as
// the TSan exercise for the sharded hot paths.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace crowd::obs {
namespace {

// ---- Histogram ------------------------------------------------------

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h(Histogram::LatencyBounds());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesCollapseToIt) {
  Histogram h(Histogram::LatencyBounds());
  h.Record(3.3e-4);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.3e-4);
  EXPECT_DOUBLE_EQ(h.min(), 3.3e-4);
  EXPECT_DOUBLE_EQ(h.max(), 3.3e-4);
  // Every quantile of one sample is clamped to that sample.
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 3.3e-4) << "q=" << q;
  }
}

TEST(HistogramTest, BucketForIsFirstBoundAtLeastValue) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.num_buckets(), 4u);  // 3 finite + overflow
  EXPECT_EQ(h.BucketFor(0.5), 0u);
  EXPECT_EQ(h.BucketFor(1.0), 0u);  // le semantics: 1.0 <= 1.0
  EXPECT_EQ(h.BucketFor(1.5), 1u);
  EXPECT_EQ(h.BucketFor(4.0), 2u);
  EXPECT_EQ(h.BucketFor(100.0), 3u);  // overflow
}

TEST(HistogramTest, QuantilesInterpolateAndStayInObservedRange) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  // 100 samples uniform in (0, 4]: quantiles must be monotone and
  // inside the observed range.
  for (int i = 1; i <= 100; ++i) h.Record(i * 0.04);
  EXPECT_EQ(h.count(), 100u);
  double p50 = h.Quantile(0.5);
  double p90 = h.Quantile(0.9);
  double p99 = h.Quantile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // The true median is 2.0 and bucket interpolation is exact at bucket
  // edges dividing the mass evenly.
  EXPECT_NEAR(p50, 2.0, 0.1);
}

TEST(HistogramTest, OverflowBucketQuantileClampsToObservedRange) {
  Histogram h({1.0});
  h.Record(50.0);
  h.Record(90.0);
  // Both samples overflow: interpolation runs inside [min, max], never
  // past the observed maximum.
  EXPECT_GE(h.Quantile(0.99), 50.0);
  EXPECT_LE(h.Quantile(0.99), 90.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 90.0);
  EXPECT_DOUBLE_EQ(h.max(), 90.0);
}

TEST(HistogramTest, MergePrimitivesMatchDirectRecords) {
  Histogram direct({1.0, 2.0});
  direct.Record(0.5);
  direct.Record(1.5);
  direct.Record(9.0);

  Histogram merged({1.0, 2.0});
  merged.MergeBucket(0, 1);
  merged.MergeBucket(1, 1);
  merged.MergeBucket(2, 1);
  merged.MergeSum(0.5 + 1.5 + 9.0);
  merged.MergeMinMax(0.5, 9.0);

  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_DOUBLE_EQ(merged.sum(), direct.sum());
  EXPECT_DOUBLE_EQ(merged.min(), direct.min());
  EXPECT_DOUBLE_EQ(merged.max(), direct.max());
  EXPECT_DOUBLE_EQ(merged.Quantile(0.5), direct.Quantile(0.5));
}

TEST(HistogramTest, ExponentialBounds) {
  std::vector<double> bounds = Histogram::ExponentialBounds(64.0, 4.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 64.0);
  EXPECT_DOUBLE_EQ(bounds[1], 256.0);
  EXPECT_DOUBLE_EQ(bounds[2], 1024.0);
  std::vector<double> latency = Histogram::LatencyBounds();
  std::vector<double> bytes = Histogram::ByteBounds();
  EXPECT_TRUE(std::is_sorted(latency.begin(), latency.end()));
  EXPECT_TRUE(std::is_sorted(bytes.begin(), bytes.end()));
}

// ---- Counter / Gauge ------------------------------------------------

TEST(CounterTest, SingleThreaded) {
  Registry registry;
  Counter* c = registry.GetCounter("crowdeval_test_events_total", "t");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Get-or-create returns the same object.
  EXPECT_EQ(registry.GetCounter("crowdeval_test_events_total", "t"), c);
}

TEST(CounterTest, MultiThreadedAggregationIsExact) {
  Registry registry;
  Counter* c = registry.GetCounter("crowdeval_test_mt_total", "t");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddSubtract) {
  Registry registry;
  Gauge* g = registry.GetGauge("crowdeval_test_depth", "t");
  EXPECT_EQ(g->Value(), 0);
  g->Set(10);
  g->Add(5);
  g->Subtract(20);
  EXPECT_EQ(g->Value(), -5);
}

// ---- HistogramMetric ------------------------------------------------

TEST(HistogramMetricTest, MultiThreadedSnapshotIsExact) {
  Registry registry;
  HistogramMetric* h = registry.GetHistogram(
      "crowdeval_test_latency_seconds", "t", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(0.5 + t);  // thread t lands in a known bucket
      }
    });
  }
  for (auto& t : threads) t.join();
  Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (0.5 + t) * kPerThread;
  EXPECT_DOUBLE_EQ(snap.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(snap.min(), 0.5);
  EXPECT_DOUBLE_EQ(snap.max(), 7.5);
  // Values 4.5..7.5 overflow past the last bound.
  EXPECT_EQ(snap.bucket_count(0), 1u * kPerThread);   // 0.5
  EXPECT_EQ(snap.bucket_count(1), 1u * kPerThread);   // 1.5
  EXPECT_EQ(snap.bucket_count(2), 2u * kPerThread);   // 2.5, 3.5
  EXPECT_EQ(snap.bucket_count(3), 4u * kPerThread);   // overflow
}

TEST(HistogramMetricTest, EmptySnapshotHasNoRange) {
  Registry registry;
  HistogramMetric* h = registry.GetHistogram(
      "crowdeval_test_empty_seconds", "t", {1.0});
  Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.min(), 0.0);
  EXPECT_EQ(snap.max(), 0.0);
}

// ---- Registry export ------------------------------------------------

TEST(RegistryTest, PrometheusExportFormat) {
  Registry registry;
  registry.GetCounter("crowdeval_test_b_total", "b counter")->Increment(3);
  registry.GetGauge("crowdeval_test_a_depth", "a gauge")->Set(7);
  HistogramMetric* h = registry.GetHistogram(
      "crowdeval_test_c_seconds", "c histogram", {0.1, 1.0});
  h->Record(0.05);
  h->Record(0.5);
  h->Record(5.0);

  std::string text = registry.ExportPrometheus();
  // Families are sorted by name: a_depth, b_total, c_seconds.
  size_t a = text.find("# HELP crowdeval_test_a_depth a gauge\n");
  size_t b = text.find("# HELP crowdeval_test_b_total b counter\n");
  size_t c = text.find("# HELP crowdeval_test_c_seconds c histogram\n");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(b, std::string::npos) << text;
  ASSERT_NE(c, std::string::npos) << text;
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);

  EXPECT_NE(text.find("# TYPE crowdeval_test_a_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("crowdeval_test_a_depth 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crowdeval_test_b_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("crowdeval_test_b_total 3\n"), std::string::npos);

  // Histogram buckets are cumulative with an le="+Inf" bucket equal to
  // the total count.
  EXPECT_NE(text.find("# TYPE crowdeval_test_c_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("crowdeval_test_c_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("crowdeval_test_c_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("crowdeval_test_c_seconds_bucket{le=\"+Inf\"} 3\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("crowdeval_test_c_seconds_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("crowdeval_test_c_seconds_sum 5.5"),
            std::string::npos);
}

TEST(RegistryTest, LabeledSeriesRenderAndStayDistinct) {
  Registry registry;
  Counter* resp = registry.GetCounter("crowdeval_test_cmd_total", "t",
                                      "command", "RESP");
  Counter* eval = registry.GetCounter("crowdeval_test_cmd_total", "t",
                                      "command", "EVAL");
  ASSERT_NE(resp, eval);
  resp->Increment(2);
  eval->Increment(5);
  EXPECT_EQ(registry.NumFamilies(), 1u);

  std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("crowdeval_test_cmd_total{command=\"RESP\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("crowdeval_test_cmd_total{command=\"EVAL\"} 5\n"),
            std::string::npos)
      << text;
  // HELP/TYPE appear once per family, not per series.
  size_t first = text.find("# TYPE crowdeval_test_cmd_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE crowdeval_test_cmd_total", first + 1),
            std::string::npos);
}

TEST(RegistryTest, SummaryTableListsEverything) {
  Registry registry;
  registry.GetCounter("crowdeval_test_x_total", "t")->Increment(9);
  HistogramMetric* h = registry.GetHistogram(
      "crowdeval_test_y_seconds", "t", Histogram::LatencyBounds());
  h->Record(1e-3);
  std::string table = registry.SummaryTable();
  EXPECT_NE(table.find("crowdeval_test_x_total"), std::string::npos);
  EXPECT_NE(table.find("9"), std::string::npos);
  EXPECT_NE(table.find("crowdeval_test_y_seconds"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

// ---- The instrumentation gate ---------------------------------------

TEST(GateTest, DisabledByDefaultAndToggles) {
  // Tests in this binary may have enabled it; normalize first.
  DisableMetrics();
  EXPECT_EQ(MetricsRegistry(), nullptr);
  EXPECT_FALSE(MetricsEnabled());
  EnableMetrics();
  ASSERT_NE(MetricsRegistry(), nullptr);
  EXPECT_TRUE(MetricsEnabled());
  EXPECT_EQ(MetricsRegistry(), &DefaultRegistry());
  // Pointers handed out stay valid after disabling (the registry is
  // never destroyed); the gate just returns nullptr again.
  Counter* c = MetricsRegistry()->GetCounter(
      "crowdeval_test_gate_total", "t");
  DisableMetrics();
  EXPECT_EQ(MetricsRegistry(), nullptr);
  c->Increment();  // must not crash
  EXPECT_GE(c->Value(), 1u);
}

// ---- Tracer ---------------------------------------------------------

TEST(TraceTest, DisabledRecordsNothing) {
  StopTracing();
  {
    CROWD_SPAN("test.disabled");
  }
  StartTracing(16);
  StopTracing();
  std::string json = ChromeTraceJson();
  EXPECT_EQ(json.find("test.disabled"), std::string::npos) << json;
}

TEST(TraceTest, CapturesNamedSpans) {
  StartTracing(64);
  {
    CROWD_SPAN("test.outer");
    CROWD_SPAN("test.inner");
  }
  StopTracing();
  std::string json = ChromeTraceJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
}

TEST(TraceTest, RingWrapsAndStaysBounded) {
  constexpr size_t kCapacity = 8;
  StartTracing(kCapacity);
  // A fresh thread gets a ring of the new capacity (threads already
  // registered keep the ring they were created with).
  std::thread worker([] {
    for (int i = 0; i < 100; ++i) {
      CROWD_SPAN("test.wrap");
    }
  });
  worker.join();
  StopTracing();
  std::string json = ChromeTraceJson();
  size_t events = 0;
  for (size_t pos = json.find("\"test.wrap\""); pos != std::string::npos;
       pos = json.find("\"test.wrap\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, kCapacity) << json;
}

TEST(TraceTest, StartTracingClearsPriorEvents) {
  StartTracing(32);
  {
    CROWD_SPAN("test.first_run");
  }
  StartTracing(32);  // restart discards the first run's events
  {
    CROWD_SPAN("test.second_run");
  }
  StopTracing();
  std::string json = ChromeTraceJson();
  EXPECT_EQ(json.find("test.first_run"), std::string::npos) << json;
  EXPECT_NE(json.find("test.second_run"), std::string::npos) << json;
}

TEST(TraceTest, ThreadsGetDistinctTidsAndSurviveExit) {
  StartTracing(32);
  std::thread worker([] {
    CROWD_SPAN("test.worker_thread");
  });
  worker.join();
  {
    CROWD_SPAN("test.main_thread");
  }
  StopTracing();
  std::string json = ChromeTraceJson();
  // The worker's ring was retired at thread exit but its events are
  // still exported.
  EXPECT_NE(json.find("test.worker_thread"), std::string::npos) << json;
  EXPECT_NE(json.find("test.main_thread"), std::string::npos) << json;
}

}  // namespace
}  // namespace crowd::obs
