// Tests for Algorithm A2's machinery: greedy/random triple selection,
// Lemma 4 cross-triple covariances, Lemma 5 minimum-variance weights
// and the m-worker orchestration.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/m_worker.h"
#include "core/three_worker.h"
#include "core/triple_combiner.h"
#include "core/triple_selection.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd::core {
namespace {

data::ResponseMatrix UniformMatrix(size_t m, size_t n) {
  data::ResponseMatrix matrix(m, n, 2);
  for (data::WorkerId w = 0; w < m; ++w) {
    for (data::TaskId t = 0; t < n; ++t) {
      matrix.Set(w, t, 0).AbortIfNotOk();
    }
  }
  return matrix;
}

TEST(TripleSelection, GreedyPairsAllPeersOnRegularData) {
  auto matrix = UniformMatrix(7, 20);
  data::OverlapIndex overlap(matrix);
  auto pairs = GreedyPairs(overlap, 0);
  ASSERT_EQ(pairs.size(), 3u);  // 6 peers -> 3 pairs.
  std::set<data::WorkerId> used;
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_TRUE(used.insert(a).second);
    EXPECT_TRUE(used.insert(b).second);
  }
}

TEST(TripleSelection, GreedyPrefersHighOverlapPeers) {
  // Worker 0 overlaps a lot with 1 and 2, little with 3 and 4.
  data::ResponseMatrix m(5, 100, 2);
  for (data::TaskId t = 0; t < 100; ++t) m.Set(0, t, 0).AbortIfNotOk();
  for (data::TaskId t = 0; t < 90; ++t) {
    m.Set(1, t, 0).AbortIfNotOk();
    m.Set(2, t, 0).AbortIfNotOk();
  }
  for (data::TaskId t = 0; t < 10; ++t) {
    m.Set(3, t, 0).AbortIfNotOk();
    m.Set(4, t, 0).AbortIfNotOk();
  }
  data::OverlapIndex overlap(m);
  auto pairs = GreedyPairs(overlap, 0);
  ASSERT_GE(pairs.size(), 1u);
  // First pair is built from the highest-overlap peers.
  EXPECT_TRUE(pairs[0].first == 1 || pairs[0].first == 2);
  EXPECT_TRUE(pairs[0].second == 1 || pairs[0].second == 2);
}

TEST(TripleSelection, PeersWithoutOverlapAreDropped) {
  data::ResponseMatrix m(4, 20, 2);
  for (data::TaskId t = 0; t < 20; ++t) {
    m.Set(0, t, 0).AbortIfNotOk();
    m.Set(1, t, 0).AbortIfNotOk();
    m.Set(2, t, 0).AbortIfNotOk();
  }
  // Worker 3 answered nothing.
  data::OverlapIndex overlap(m);
  auto pairs = GreedyPairs(overlap, 0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0] == WorkerPair(1, 2) ||
              pairs[0] == WorkerPair(2, 1));
}

TEST(TripleSelection, RandomPairsAreValidAndSeedDependent) {
  auto matrix = UniformMatrix(9, 20);
  data::OverlapIndex overlap(matrix);
  auto pairs1 = RandomPairs(overlap, 0, 1);
  auto pairs2 = RandomPairs(overlap, 0, 2);
  EXPECT_EQ(pairs1.size(), 4u);
  EXPECT_EQ(pairs2.size(), 4u);
  EXPECT_NE(pairs1, pairs2);  // Overwhelmingly likely.
  std::set<data::WorkerId> used;
  for (const auto& [a, b] : pairs1) {
    EXPECT_TRUE(used.insert(a).second);
    EXPECT_TRUE(used.insert(b).second);
  }
}

TEST(Weights, LemmaFiveClosedFormDiagonal) {
  // For a diagonal covariance the optimal weights are proportional to
  // the inverse variances.
  linalg::Matrix cov = linalg::Matrix::Diagonal({1.0, 4.0});
  auto solution = MinimumVarianceWeights(cov, 0.0);
  EXPECT_FALSE(solution.used_fallback);
  EXPECT_NEAR(solution.weights[0], 0.8, 1e-10);
  EXPECT_NEAR(solution.weights[1], 0.2, 1e-10);
}

TEST(Weights, SumToOneAndBeatUniform) {
  Random rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    size_t l = 2 + rng.UniformInt(5);
    // Random PSD covariance: B B^T + diag.
    linalg::Matrix b(l, l);
    for (size_t i = 0; i < l; ++i) {
      for (size_t j = 0; j < l; ++j) b(i, j) = rng.Uniform(-1, 1);
    }
    linalg::Matrix cov = b * b.Transposed();
    for (size_t i = 0; i < l; ++i) cov(i, i) += 0.5;

    auto solution = MinimumVarianceWeights(cov, 1e-12);
    double sum = 0.0;
    for (double w : solution.weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    auto variance = [&](const linalg::Vector& w) {
      double v = 0.0;
      for (size_t i = 0; i < l; ++i) {
        for (size_t j = 0; j < l; ++j) v += w[i] * w[j] * cov(i, j);
      }
      return v;
    };
    linalg::Vector uniform(l, 1.0 / static_cast<double>(l));
    EXPECT_LE(variance(solution.weights), variance(uniform) + 1e-9);
  }
}

TEST(Weights, SingularCovarianceFallsBackToUniform) {
  linalg::Matrix cov(2, 2, 0.0);  // All-zero: singular even with ridge 0.
  auto solution = MinimumVarianceWeights(cov, 0.0);
  EXPECT_TRUE(solution.used_fallback);
  EXPECT_NEAR(solution.weights[0], 0.5, 1e-12);
}

TEST(Combiner, RejectsMixedWorkersAndEmpty) {
  auto matrix = UniformMatrix(5, 30);
  data::OverlapIndex overlap(matrix);
  BinaryOptions options;
  EXPECT_TRUE(CombineTriples({}, overlap, options)
                  .status()
                  .IsInsufficientData());
}

TEST(Combiner, SingleTripleMatchesThreeWorkerDeviation) {
  Random rng(7);
  sim::BinarySimConfig config;
  config.num_workers = 3;
  config.num_tasks = 500;
  auto sim = sim::SimulateBinary(config, &rng);
  data::OverlapIndex overlap(sim.dataset.responses());
  BinaryOptions options;
  auto triple = EvaluateTriple(overlap, 0, 1, 2, options);
  ASSERT_TRUE(triple.ok());
  auto combined = CombineTriples({*triple}, overlap, options);
  ASSERT_TRUE(combined.ok());
  EXPECT_NEAR(combined->p, triple->p, 1e-12);
  EXPECT_NEAR(combined->deviation, triple->deviation, 1e-12);
}

TEST(Combiner, OptimalWeightsNeverWorseThanUniform) {
  Random rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    sim::BinarySimConfig config;
    config.num_workers = 9;
    config.num_tasks = 120;
    config.assignment = sim::AssignmentConfig::PaperHeterogeneous(9);
    Random stream = rng.Fork();
    auto sim = sim::SimulateBinary(config, &stream);
    data::OverlapIndex overlap(sim.dataset.responses());

    BinaryOptions optimal;
    optimal.weights = WeightScheme::kOptimal;
    BinaryOptions uniform;
    uniform.weights = WeightScheme::kUniform;
    auto a = EvaluateWorker(overlap, 0, optimal);
    auto b = EvaluateWorker(overlap, 0, uniform);
    if (!a.ok() || !b.ok()) continue;
    EXPECT_LE(a->deviation, b->deviation + 1e-9);
  }
}

TEST(MWorker, FailsBelowThreeWorkers) {
  BinaryOptions options;
  EXPECT_TRUE(MWorkerEvaluate(UniformMatrix(2, 10), options)
                  .status()
                  .IsInsufficientData());
}

TEST(MWorker, IsolatedWorkerReportedAsFailure) {
  Random rng(11);
  sim::BinarySimConfig config;
  config.num_workers = 5;
  config.num_tasks = 200;
  auto sim = sim::SimulateBinary(config, &rng);
  // Worker 4 loses all responses.
  for (data::TaskId t = 0; t < 200; ++t) {
    sim.dataset.mutable_responses()->Clear(4, t);
  }
  BinaryOptions options;
  auto result = MWorkerEvaluate(sim.dataset.responses(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assessments.size(), 4u);
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_EQ(result->failures[0].first, 4u);
  EXPECT_TRUE(result->failures[0].second.IsInsufficientData());
}

TEST(MWorker, MoreWorkersTightenIntervals) {
  // With the same n, more peers -> more triples -> smaller deviation.
  Random rng(13);
  double dev_small_pool = 0.0, dev_large_pool = 0.0;
  int counted = 0;
  for (int trial = 0; trial < 15; ++trial) {
    sim::BinarySimConfig config;
    config.num_tasks = 200;
    config.num_workers = 3;
    Random s1 = rng.Fork();
    auto small_sim = sim::SimulateBinary(config, &s1);
    config.num_workers = 11;
    Random s2 = rng.Fork();
    auto large_sim = sim::SimulateBinary(config, &s2);
    BinaryOptions options;
    auto small = MWorkerEvaluate(small_sim.dataset.responses(), options);
    auto large = MWorkerEvaluate(large_sim.dataset.responses(), options);
    if (!small.ok() || !large.ok()) continue;
    if (small->assessments.empty() || large->assessments.empty()) continue;
    dev_small_pool += small->assessments[0].deviation;
    dev_large_pool += large->assessments[0].deviation;
    ++counted;
  }
  ASSERT_GT(counted, 10);
  EXPECT_LT(dev_large_pool, dev_small_pool);
}

}  // namespace
}  // namespace crowd::core
