// End-to-end test of the crowdevald daemon: spawns the real binary
// (path injected as CROWDEVALD_BIN by the build), streams >= 10k
// responses over a unix socket, checks EVAL_ALL against an in-process
// batch evaluation bit-for-bit, then SIGKILLs the daemon mid-flight
// and verifies that a restarted daemon recovers the identical state
// from snapshot + journal replay.

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "gtest/gtest.h"
#include "rng/random.h"
#include "server/protocol.h"

namespace crowd::server {
namespace {

namespace fs = std::filesystem;

// A line-oriented unix-socket client.
class Client {
 public:
  explicit Client(const std::string& path) { Connect(path); }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  // Sends one command line and returns the one-line JSON reply
  // (without the newline).
  std::string RoundTrip(const std::string& command) {
    std::string out = command + "\n";
    size_t sent = 0;
    while (sent < out.size()) {
      ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ADD_FAILURE() << "send: " << std::strerror(errno);
        return "";
      }
      sent += static_cast<size_t>(n);
    }
    for (;;) {
      size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return line;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ADD_FAILURE() << "recv: " << std::strerror(errno);
        return "";
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  void Connect(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd_, 0) << std::strerror(errno);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << path << ": " << std::strerror(errno);
  }

  int fd_ = -1;
  std::string buffer_;
};

// Spawns `crowdevald serve` and waits until the socket accepts.
pid_t SpawnDaemon(const std::vector<std::string>& extra_args,
                  const std::string& socket_path,
                  const std::string& log_path) {
  std::vector<std::string> args = {CROWDEVALD_BIN, "serve",
                                   "--socket=" + socket_path};
  args.insert(args.end(), extra_args.begin(), extra_args.end());

  pid_t pid = ::fork();
  if (pid == 0) {
    int log = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                     0644);
    if (log >= 0) {
      ::dup2(log, STDOUT_FILENO);
      ::dup2(log, STDERR_FILENO);
      ::close(log);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  EXPECT_GT(pid, 0) << std::strerror(errno);

  // Readiness: poll until a connect succeeds (or the daemon died).
  for (int i = 0; i < 500; ++i) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    ::close(fd);
    if (rc == 0) return pid;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      ADD_FAILURE() << "daemon exited during startup; log: " << log_path;
      return -1;
    }
    ::usleep(20 * 1000);
  }
  ADD_FAILURE() << "daemon never became ready; log: " << log_path;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

TEST(CrowdevaldE2eTest, StreamCrashRecoverBitIdentical) {
  const std::string dir =
      testing::TempDir() + "/crowdevald_e2e_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path = dir + "/sock";
  const std::string state_dir = dir + "/state";
  const std::string log_path = dir + "/daemon.log";

  constexpr size_t kWorkers = 15;
  constexpr size_t kTasks = 80;
  constexpr size_t kResponses = 10000;
  constexpr size_t kPostSnapshotResponses = 500;

  pid_t pid = SpawnDaemon({"--workers=" + std::to_string(kWorkers),
                           "--tasks=" + std::to_string(kTasks),
                           "--data-dir=" + state_dir, "--threads=2"},
                          socket_path, log_path);
  ASSERT_GT(pid, 0);

  // The daemon's ground truth, mirrored in-process. Bit-identical
  // assessments only need the same response matrix and options
  // (confidence defaults to 0.95 in both; thread count never matters).
  core::BinaryOptions options;
  options.confidence = 0.95;
  core::IncrementalEvaluator mirror(kWorkers, kTasks, options);

  {
    Client client(socket_path);
    Random rng(42);
    for (size_t i = 0; i < kResponses; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      std::string reply = client.RoundTrip(
          "RESP " + std::to_string(w) + " " + std::to_string(t) + " " +
          std::to_string(v));
      ASSERT_EQ(reply.find("{\"ok\":true,\"seq\":"), 0u)
          << "response " << i << ": " << reply;
      ASSERT_TRUE(mirror.AddResponse(w, t, v).ok());
    }

    // EVAL_ALL over the socket must equal the batch evaluation of the
    // same matrix, byte for byte.
    std::string expected =
        "{\"ok\":true," + MWorkerResultBodyJson(mirror.EvaluateAll()) + "}";
    EXPECT_EQ(client.RoundTrip("EVAL_ALL"), expected);

    std::string stats = client.RoundTrip("STATS");
    EXPECT_NE(stats.find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(stats.find("\"responses_ingested\":0"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"eval_all_runs\":1"), std::string::npos)
        << stats;

    // Durability checkpoint, then more traffic that only the journal
    // will cover.
    std::string snap = client.RoundTrip("SNAPSHOT");
    EXPECT_EQ(snap.find("{\"ok\":true,\"snapshot_seq\":"), 0u) << snap;
    for (size_t i = 0; i < kPostSnapshotResponses; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      ASSERT_EQ(client
                    .RoundTrip("RESP " + std::to_string(w) + " " +
                               std::to_string(t) + " " + std::to_string(v))
                    .find("{\"ok\":true"),
                0u);
      ASSERT_TRUE(mirror.AddResponse(w, t, v).ok());
    }
  }

  // Crash hard: no final snapshot, no clean socket shutdown. Every
  // acknowledged response must still be recovered.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Restart on the same data dir; dimensions come from disk.
  pid = SpawnDaemon({"--data-dir=" + state_dir, "--threads=2"},
                    socket_path, log_path);
  ASSERT_GT(pid, 0);
  {
    Client client(socket_path);
    std::string expected =
        "{\"ok\":true," + MWorkerResultBodyJson(mirror.EvaluateAll()) + "}";
    EXPECT_EQ(client.RoundTrip("EVAL_ALL"), expected)
        << "recovered state diverged; daemon log: " << log_path;

    std::string stats = client.RoundTrip("STATS");
    EXPECT_EQ(stats.find("\"recovered_records\":0"), std::string::npos)
        << "journal tail was not replayed: " << stats;
    EXPECT_EQ(stats.find("\"snapshot_seq\":0,"), std::string::npos)
        << "snapshot was not loaded: " << stats;
    EXPECT_EQ(client.RoundTrip("QUIT"), "{\"ok\":true,\"bye\":true}");
  }

  // Clean shutdown: SIGTERM -> exit 0 (after a final snapshot).
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace crowd::server
