// End-to-end test of the crowdevald daemon: spawns the real binary
// (path injected as CROWDEVALD_BIN by the build), streams >= 10k
// responses over a unix socket, checks EVAL_ALL against an in-process
// batch evaluation bit-for-bit, then SIGKILLs the daemon mid-flight
// and verifies that a restarted daemon recovers the identical state
// from snapshot + journal replay.

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "gtest/gtest.h"
#include "rng/random.h"
#include "server/protocol.h"

namespace crowd::server {
namespace {

namespace fs = std::filesystem;

// A line-oriented unix-socket client.
class Client {
 public:
  explicit Client(const std::string& path) { Connect(path); }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  // Sends one command line and returns the one-line JSON reply
  // (without the newline).
  std::string RoundTrip(const std::string& command) {
    if (!Send(command)) return "";
    for (;;) {
      size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 1);
        return line;
      }
      if (!Fill()) return "";
    }
  }

  // For METRICS, the one multi-line reply: reads until the line
  // reading exactly `# EOF` and returns everything up to and
  // including it (newlines preserved, final newline stripped).
  std::string RoundTripUntilEof(const std::string& command) {
    if (!Send(command)) return "";
    const std::string terminator = "# EOF\n";
    for (;;) {
      size_t end = buffer_.find(terminator);
      if (end != std::string::npos &&
          (end == 0 || buffer_[end - 1] == '\n')) {
        std::string body = buffer_.substr(0, end + terminator.size() - 1);
        buffer_.erase(0, end + terminator.size());
        return body;
      }
      if (!Fill()) return "";
    }
  }

 private:
  bool Send(const std::string& command) {
    std::string out = command + "\n";
    size_t sent = 0;
    while (sent < out.size()) {
      ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ADD_FAILURE() << "send: " << std::strerror(errno);
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Receives one chunk into the buffer.
  bool Fill() {
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ADD_FAILURE() << "recv: " << std::strerror(errno);
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
      return true;
    }
  }

  void Connect(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd_, 0) << std::strerror(errno);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << path << ": " << std::strerror(errno);
  }

  int fd_ = -1;
  std::string buffer_;
};

// Spawns `crowdevald serve` and waits until the socket accepts.
pid_t SpawnDaemon(const std::vector<std::string>& extra_args,
                  const std::string& socket_path,
                  const std::string& log_path) {
  std::vector<std::string> args = {CROWDEVALD_BIN, "serve",
                                   "--socket=" + socket_path};
  args.insert(args.end(), extra_args.begin(), extra_args.end());

  pid_t pid = ::fork();
  if (pid == 0) {
    int log = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                     0644);
    if (log >= 0) {
      ::dup2(log, STDOUT_FILENO);
      ::dup2(log, STDERR_FILENO);
      ::close(log);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  EXPECT_GT(pid, 0) << std::strerror(errno);

  // Readiness: poll until a connect succeeds (or the daemon died).
  for (int i = 0; i < 500; ++i) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    ::close(fd);
    if (rc == 0) return pid;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      ADD_FAILURE() << "daemon exited during startup; log: " << log_path;
      return -1;
    }
    ::usleep(20 * 1000);
  }
  ADD_FAILURE() << "daemon never became ready; log: " << log_path;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

TEST(CrowdevaldE2eTest, StreamCrashRecoverBitIdentical) {
  const std::string dir =
      testing::TempDir() + "/crowdevald_e2e_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path = dir + "/sock";
  const std::string state_dir = dir + "/state";
  const std::string log_path = dir + "/daemon.log";

  constexpr size_t kWorkers = 15;
  constexpr size_t kTasks = 80;
  constexpr size_t kResponses = 10000;
  constexpr size_t kPostSnapshotResponses = 500;

  pid_t pid = SpawnDaemon({"--workers=" + std::to_string(kWorkers),
                           "--tasks=" + std::to_string(kTasks),
                           "--data-dir=" + state_dir, "--threads=2"},
                          socket_path, log_path);
  ASSERT_GT(pid, 0);

  // The daemon's ground truth, mirrored in-process. Bit-identical
  // assessments only need the same response matrix and options
  // (confidence defaults to 0.95 in both; thread count never matters).
  core::BinaryOptions options;
  options.confidence = 0.95;
  core::IncrementalEvaluator mirror(kWorkers, kTasks, options);

  {
    Client client(socket_path);
    Random rng(42);
    for (size_t i = 0; i < kResponses; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      std::string reply = client.RoundTrip(
          "RESP " + std::to_string(w) + " " + std::to_string(t) + " " +
          std::to_string(v));
      ASSERT_EQ(reply.find("{\"ok\":true,\"seq\":"), 0u)
          << "response " << i << ": " << reply;
      ASSERT_TRUE(mirror.AddResponse(w, t, v).ok());
    }

    // EVAL_ALL over the socket must equal the batch evaluation of the
    // same matrix, byte for byte.
    std::string expected =
        "{\"ok\":true," + MWorkerResultBodyJson(mirror.EvaluateAll()) + "}";
    EXPECT_EQ(client.RoundTrip("EVAL_ALL"), expected);

    std::string stats = client.RoundTrip("STATS");
    EXPECT_NE(stats.find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(stats.find("\"responses_ingested\":0"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"eval_all_runs\":1"), std::string::npos)
        << stats;

    // Durability checkpoint, then more traffic that only the journal
    // will cover.
    std::string snap = client.RoundTrip("SNAPSHOT");
    EXPECT_EQ(snap.find("{\"ok\":true,\"snapshot_seq\":"), 0u) << snap;
    for (size_t i = 0; i < kPostSnapshotResponses; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      ASSERT_EQ(client
                    .RoundTrip("RESP " + std::to_string(w) + " " +
                               std::to_string(t) + " " + std::to_string(v))
                    .find("{\"ok\":true"),
                0u);
      ASSERT_TRUE(mirror.AddResponse(w, t, v).ok());
    }
  }

  // Crash hard: no final snapshot, no clean socket shutdown. Every
  // acknowledged response must still be recovered.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Restart on the same data dir; dimensions come from disk.
  pid = SpawnDaemon({"--data-dir=" + state_dir, "--threads=2"},
                    socket_path, log_path);
  ASSERT_GT(pid, 0);
  {
    Client client(socket_path);
    std::string expected =
        "{\"ok\":true," + MWorkerResultBodyJson(mirror.EvaluateAll()) + "}";
    EXPECT_EQ(client.RoundTrip("EVAL_ALL"), expected)
        << "recovered state diverged; daemon log: " << log_path;

    std::string stats = client.RoundTrip("STATS");
    EXPECT_EQ(stats.find("\"recovered_records\":0"), std::string::npos)
        << "journal tail was not replayed: " << stats;
    EXPECT_EQ(stats.find("\"snapshot_seq\":0,"), std::string::npos)
        << "snapshot was not loaded: " << stats;
    EXPECT_EQ(client.RoundTrip("QUIT"), "{\"ok\":true,\"bye\":true}");
  }

  // Clean shutdown: SIGTERM -> exit 0 (after a final snapshot).
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Checks one Prometheus exposition line: comment, blank, or
// `name[{labels}] value`.
bool IsValidExpositionLine(const std::string& line) {
  if (line.empty() || line[0] == '#') return true;
  size_t space = line.rfind(' ');
  if (space == std::string::npos || space == 0 ||
      space + 1 >= line.size()) {
    return false;
  }
  std::string name = line.substr(0, space);
  std::string value = line.substr(space + 1);
  size_t brace = name.find('{');
  if (brace != std::string::npos && name.back() != '}') return false;
  std::string bare = brace == std::string::npos
                         ? name
                         : name.substr(0, brace);
  for (char c : bare) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != ':') {
      return false;
    }
  }
  if (bare.empty() ||
      std::isdigit(static_cast<unsigned char>(bare[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  (void)std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0' && errno == 0;
}

TEST(CrowdevaldE2eTest, MetricsExpositionAndChromeTrace) {
  const std::string dir = testing::TempDir() + "/crowdevald_metrics_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path = dir + "/sock";
  const std::string state_dir = dir + "/state";
  const std::string trace_path = dir + "/trace.json";
  const std::string log_path = dir + "/daemon.log";

  constexpr size_t kWorkers = 10;
  constexpr size_t kTasks = 60;

  // --threads=2: the evaluator only routes through the (instrumented)
  // ThreadPool when parallel, and the util series must show up below.
  pid_t pid = SpawnDaemon(
      {"--workers=" + std::to_string(kWorkers),
       "--tasks=" + std::to_string(kTasks), "--data-dir=" + state_dir,
       "--threads=2", "--trace-out=" + trace_path,
       "--log-format=json"},
      socket_path, log_path);
  ASSERT_GT(pid, 0);

  uint64_t ingested_before = 0;
  {
    Client client(socket_path);
    Random rng(7);
    for (size_t i = 0; i < 2000; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      ASSERT_EQ(client
                    .RoundTrip("RESP " + std::to_string(w) + " " +
                               std::to_string(t) + " " + std::to_string(v))
                    .find("{\"ok\":true"),
                0u);
    }
    client.RoundTrip("EVAL_ALL");
    // SNAPSHOT gives the tracer a snapshot.write span to capture.
    ASSERT_EQ(client.RoundTrip("SNAPSHOT").find("{\"ok\":true"), 0u);

    std::string text = client.RoundTripUntilEof("METRICS");
    ASSERT_FALSE(text.empty());

    // Every line must be well-formed exposition syntax.
    std::set<std::string> families;
    size_t start = 0;
    bool saw_eof = false;
    while (start < text.size()) {
      size_t eol = text.find('\n', start);
      if (eol == std::string::npos) eol = text.size();
      std::string line = text.substr(start, eol - start);
      start = eol + 1;
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      EXPECT_TRUE(IsValidExpositionLine(line)) << "bad line: " << line;
      const std::string type_prefix = "# TYPE ";
      if (line.compare(0, type_prefix.size(), type_prefix) == 0) {
        families.insert(
            line.substr(type_prefix.size(),
                        line.find(' ', type_prefix.size()) -
                            type_prefix.size()));
      }
    }
    EXPECT_TRUE(saw_eof);

    // Spans core + server + util + journal, >= 12 distinct families.
    EXPECT_GE(families.size(), 12u) << text;
    auto has_prefix = [&](const std::string& prefix) {
      for (const std::string& f : families) {
        if (f.compare(0, prefix.size(), prefix) == 0) return true;
      }
      return false;
    };
    EXPECT_TRUE(has_prefix("crowdeval_core_")) << text;
    EXPECT_TRUE(has_prefix("crowdeval_server_")) << text;
    EXPECT_TRUE(has_prefix("crowdeval_util_")) << text;
    EXPECT_TRUE(has_prefix("crowdeval_journal_")) << text;

    // Counters advance between scrapes.
    auto series_value = [](const std::string& exposition,
                           const std::string& series) -> double {
      size_t pos = exposition.find("\n" + series + " ");
      if (pos == std::string::npos) return -1.0;
      return std::strtod(
          exposition.c_str() + pos + 1 + series.size() + 1, nullptr);
    };
    double before = series_value(
        text, "crowdeval_server_responses_ingested_total");
    EXPECT_GT(before, 0.0) << text;
    ASSERT_EQ(client.RoundTrip("RESP 0 0 1").find("{\"ok\":true"), 0u);
    std::string text2 = client.RoundTripUntilEof("METRICS");
    double after = series_value(
        text2, "crowdeval_server_responses_ingested_total");
    EXPECT_EQ(after, before + 1.0) << text2;
    ingested_before = static_cast<uint64_t>(after);
  }

  // Clean shutdown dumps the chrome trace.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_GT(ingested_before, 0u);

  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good()) << trace_path;
  std::stringstream trace_stream;
  trace_stream << trace_file.rdbuf();
  std::string trace = trace_stream.str();
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(trace.rfind("]}"), trace.size() - 2) << trace.substr(0, 200);
  // Spans from the durability path and a core pipeline stage.
  EXPECT_NE(trace.find("\"name\":\"journal.append\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"snapshot.write\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"core.evaluate_worker\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace crowd::server
