// Failure-injection tests: every documented degenerate input must
// produce a clean Status (never a crash, never a silent garbage
// estimate).

#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.h"
#include "core/kary_estimator.h"
#include "core/m_worker.h"
#include "core/prob_estimate.h"
#include "core/three_worker.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd {
namespace {

// Workers who always answer the same label: agreement rates are all 1,
// estimates must come out near zero error without numerical issues.
TEST(FailureInjection, UnanimousWorkers) {
  data::ResponseMatrix m(3, 50, 2);
  for (data::WorkerId w = 0; w < 3; ++w) {
    for (data::TaskId t = 0; t < 50; ++t) {
      m.Set(w, t, 1).AbortIfNotOk();
    }
  }
  core::BinaryOptions options;
  auto result = core::ThreeWorkerEvaluate(m, options);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const auto& a : *result) {
    EXPECT_NEAR(a.error_rate, 0.0, 1e-9);
    // 50/50 agreements do not prove a zero error rate: the Agresti-
    // corrected variance keeps the deviation small but positive.
    EXPECT_GT(a.deviation, 0.0);
    EXPECT_LT(a.deviation, 0.05);
  }
}

// A pure antagonist (always disagrees): agreement rates at 0 hit the
// singularity. Under the default (paper) policy the evaluation fails
// cleanly; under the clamping policy it survives with the clamping
// flagged.
TEST(FailureInjection, PureAntagonist) {
  Random rng(3);
  data::ResponseMatrix m(3, 100, 2);
  for (data::TaskId t = 0; t < 100; ++t) {
    int v = rng.Bernoulli(0.5) ? 1 : 0;
    m.Set(0, t, v).AbortIfNotOk();
    m.Set(1, t, v).AbortIfNotOk();
    m.Set(2, t, 1 - v).AbortIfNotOk();
  }
  core::BinaryOptions drop;  // Default: kDropTriple.
  auto failed = core::ThreeWorkerEvaluate(m, drop);
  EXPECT_TRUE(failed.status().IsNumericalError()) << failed.status();

  core::BinaryOptions clamp;
  clamp.singularity = core::SingularityPolicy::kClampInflate;
  auto result = core::ThreeWorkerEvaluate(m, clamp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE((*result)[2].any_clamped);
}

// A coin-flip spammer among honest workers: results may be noisy but
// must not crash, and the spammer filter must remove the spammer.
TEST(FailureInjection, CoinFlipSpammer) {
  Random rng(5);
  sim::BinarySimConfig config;
  config.num_workers = 6;
  config.num_tasks = 300;
  config.pool.error_rates = {0.1};
  auto sim = sim::SimulateBinary(config, &rng);
  for (data::TaskId t = 0; t < 300; ++t) {
    sim.dataset.mutable_responses()
        ->Set(5, t, rng.Bernoulli(0.5) ? 1 : 0)
        .AbortIfNotOk();
  }
  core::BinaryOptions options;
  auto result = core::MWorkerEvaluate(sim.dataset.responses(), options);
  ASSERT_TRUE(result.ok());

  auto filtered = core::FilterSpammers(sim.dataset.responses());
  ASSERT_TRUE(filtered.ok());
  bool spammer_removed = false;
  for (auto w : filtered->removed) spammer_removed |= (w == 5);
  EXPECT_TRUE(spammer_removed);
}

// Tiny datasets: 1 task, or a single common task per pair.
TEST(FailureInjection, MinimalOverlap) {
  data::ResponseMatrix m(3, 1, 2);
  for (data::WorkerId w = 0; w < 3; ++w) {
    m.Set(w, 0, 0).AbortIfNotOk();
  }
  core::BinaryOptions options;
  auto result = core::ThreeWorkerEvaluate(m, options);
  // One task: estimable in principle (all agree), must not crash.
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(FailureInjection, EmptyMatrix) {
  data::ResponseMatrix m(3, 10, 2);
  core::BinaryOptions options;
  EXPECT_FALSE(core::ThreeWorkerEvaluate(m, options).ok());
  EXPECT_TRUE(core::MWorkerEvaluate(m, options).ok());  // Per-worker
  // failures are collected, not fatal:
  auto result = core::MWorkerEvaluate(m, options);
  EXPECT_EQ(result->assessments.size(), 0u);
  EXPECT_EQ(result->failures.size(), 3u);
}

// k-ary: a response class that never occurs makes R_{3,2} singular —
// the exact WSD pathology the paper describes. Must be a clean error.
TEST(FailureInjection, KaryEmptyResponseClass) {
  Random rng(7);
  data::ResponseMatrix m(3, 300, 3);
  for (data::TaskId t = 0; t < 300; ++t) {
    for (data::WorkerId w = 0; w < 3; ++w) {
      // Only responses 0 and 1 ever used.
      m.Set(w, t, rng.Bernoulli(0.5) ? 1 : 0).AbortIfNotOk();
    }
  }
  core::KaryOptions options;
  auto result = core::KaryEvaluate(m, 0, 1, 2, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNumericalError() ||
              result.status().IsInsufficientData())
      << result.status();
}

// k-ary with pairs that never co-attempt.
TEST(FailureInjection, KaryDisjointWorkers) {
  data::ResponseMatrix m(3, 30, 2);
  for (data::TaskId t = 0; t < 10; ++t) m.Set(0, t, 0).AbortIfNotOk();
  for (data::TaskId t = 10; t < 20; ++t) m.Set(1, t, 0).AbortIfNotOk();
  for (data::TaskId t = 20; t < 30; ++t) m.Set(2, t, 0).AbortIfNotOk();
  core::KaryOptions options;
  auto result = core::KaryEvaluate(m, 0, 1, 2, options);
  EXPECT_TRUE(result.status().IsInsufficientData()) << result.status();
}

// The evaluator façade propagates spammer-filter edge cases: when the
// filter removes everyone, evaluation fails cleanly.
TEST(FailureInjection, AllWorkersFiltered) {
  Random rng(9);
  data::ResponseMatrix m(4, 100, 2);
  for (data::TaskId t = 0; t < 100; ++t) {
    for (data::WorkerId w = 0; w < 4; ++w) {
      m.Set(w, t, rng.Bernoulli(0.5) ? 1 : 0).AbortIfNotOk();
    }
  }
  core::CrowdEvaluator::Config config;
  config.prefilter_spammers = true;
  config.spammer.threshold = 0.05;  // Absurdly strict.
  core::CrowdEvaluator evaluator(config);
  auto report = evaluator.EvaluateBinary(m);
  EXPECT_FALSE(report.ok());
}

// Confidence level must be validated everywhere.
TEST(FailureInjection, BadConfidenceRejected) {
  Random rng(11);
  sim::BinarySimConfig config;
  config.num_workers = 3;
  config.num_tasks = 100;
  auto sim = sim::SimulateBinary(config, &rng);
  core::BinaryOptions options;
  options.confidence = 1.5;
  EXPECT_FALSE(
      core::ThreeWorkerEvaluate(sim.dataset.responses(), options).ok());
}

// Extreme sparsity: every worker answers very few tasks. Evaluations
// either succeed or fail with InsufficientData; never crash.
TEST(FailureInjection, ExtremeSparsity) {
  Random rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    sim::BinarySimConfig config;
    config.num_workers = 8;
    config.num_tasks = 40;
    config.assignment = sim::AssignmentConfig::Iid(0.12);
    Random stream = rng.Fork();
    auto sim = sim::SimulateBinary(config, &stream);
    core::BinaryOptions options;
    auto result = core::MWorkerEvaluate(sim.dataset.responses(), options);
    ASSERT_TRUE(result.ok());
    for (const auto& [worker, status] : result->failures) {
      EXPECT_TRUE(status.IsInsufficientData() ||
                  status.IsNumericalError())
          << status;
    }
  }
}

}  // namespace
}  // namespace crowd
