// Tests for the data module: ResponseMatrix, Dataset (with proxies),
// CSV round trips and the OverlapIndex counts.

#include <gtest/gtest.h>

#include <cstdio>

#include "data/dataset.h"
#include "data/dataset_io.h"
#include "data/overlap_index.h"
#include "data/response_matrix.h"
#include "rng/random.h"
#include "util/csv.h"

namespace crowd::data {
namespace {

TEST(ResponseMatrix, SetGetClear) {
  ResponseMatrix m(2, 3, 4);
  EXPECT_EQ(m.arity(), 4);
  EXPECT_FALSE(m.Has(0, 0));
  ASSERT_TRUE(m.Set(0, 0, 2).ok());
  EXPECT_TRUE(m.Has(0, 0));
  EXPECT_EQ(*m.Get(0, 0), 2);
  EXPECT_EQ(m.TotalResponses(), 1u);
  // Overwrite does not double count.
  ASSERT_TRUE(m.Set(0, 0, 3).ok());
  EXPECT_EQ(m.TotalResponses(), 1u);
  EXPECT_EQ(*m.Get(0, 0), 3);
  m.Clear(0, 0);
  EXPECT_FALSE(m.Has(0, 0));
  EXPECT_EQ(m.TotalResponses(), 0u);
  m.Clear(0, 0);  // Idempotent.
  EXPECT_EQ(m.TotalResponses(), 0u);
}

TEST(ResponseMatrix, Validation) {
  ResponseMatrix m(2, 2, 2);
  EXPECT_TRUE(m.Set(2, 0, 0).IsInvalid());
  EXPECT_TRUE(m.Set(0, 2, 0).IsInvalid());
  EXPECT_TRUE(m.Set(0, 0, 2).IsInvalid());
  EXPECT_TRUE(m.Set(0, 0, -1).IsInvalid());
}

TEST(ResponseMatrix, CountsAndDensity) {
  ResponseMatrix m(2, 4, 2);
  m.Set(0, 0, 1).AbortIfNotOk();
  m.Set(0, 1, 0).AbortIfNotOk();
  m.Set(1, 1, 1).AbortIfNotOk();
  EXPECT_EQ(m.WorkerResponseCount(0), 2u);
  EXPECT_EQ(m.WorkerResponseCount(1), 1u);
  EXPECT_EQ(m.TaskResponseCount(1), 2u);
  EXPECT_EQ(m.TaskResponseCount(3), 0u);
  EXPECT_DOUBLE_EQ(m.Density(), 3.0 / 8.0);
  EXPECT_EQ(m.TasksOf(0), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(m.CommonTasks(0, 1), (std::vector<TaskId>{1}));
}

TEST(ResponseMatrix, SelectWorkersReindexes) {
  ResponseMatrix m(3, 2, 2);
  m.Set(2, 0, 1).AbortIfNotOk();
  m.Set(0, 1, 0).AbortIfNotOk();
  auto selected = m.SelectWorkers({2, 0});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->num_workers(), 2u);
  EXPECT_EQ(*selected->Get(0, 0), 1);
  EXPECT_EQ(*selected->Get(1, 1), 0);
  EXPECT_TRUE(m.SelectWorkers({5}).status().IsInvalid());
}

TEST(ResponseMatrix, ThinnedRemovesRequestedFraction) {
  Random rng(3);
  ResponseMatrix m(10, 100, 2);
  for (WorkerId w = 0; w < 10; ++w) {
    for (TaskId t = 0; t < 100; ++t) m.Set(w, t, 0).AbortIfNotOk();
  }
  auto thinned = m.Thinned(0.2, [&]() { return rng.NextDouble(); });
  EXPECT_NEAR(static_cast<double>(thinned.TotalResponses()), 800.0, 60.0);
}

TEST(Dataset, GoldAndProxy) {
  ResponseMatrix m(2, 4, 2);
  // Worker 0: right, right, wrong on gold tasks 0-2.
  m.Set(0, 0, 1).AbortIfNotOk();
  m.Set(0, 1, 0).AbortIfNotOk();
  m.Set(0, 2, 0).AbortIfNotOk();
  // Worker 1 only does non-gold task 3.
  m.Set(1, 3, 1).AbortIfNotOk();
  Dataset dataset("test", std::move(m));
  dataset.SetGold(0, 1).AbortIfNotOk();
  dataset.SetGold(1, 0).AbortIfNotOk();
  dataset.SetGold(2, 1).AbortIfNotOk();
  EXPECT_EQ(dataset.GoldCount(), 3u);
  EXPECT_TRUE(dataset.HasGold(2));
  EXPECT_FALSE(dataset.HasGold(3));
  EXPECT_NEAR(*dataset.ProxyErrorRate(0), 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(dataset.ProxyErrorRate(1).status().IsInsufficientData());
  EXPECT_TRUE(dataset.SetGold(9, 0).IsInvalid());
  EXPECT_TRUE(dataset.SetGold(0, 5).IsInvalid());
}

TEST(Dataset, ProxyResponseMatrix) {
  ResponseMatrix m(1, 6, 3);
  // Truth 0 tasks: responses 0, 1. Truth 1 tasks: 1, 1. Truth 2: none.
  m.Set(0, 0, 0).AbortIfNotOk();
  m.Set(0, 1, 1).AbortIfNotOk();
  m.Set(0, 2, 1).AbortIfNotOk();
  m.Set(0, 3, 1).AbortIfNotOk();
  Dataset dataset("test", std::move(m));
  dataset.SetGold(0, 0).AbortIfNotOk();
  dataset.SetGold(1, 0).AbortIfNotOk();
  dataset.SetGold(2, 1).AbortIfNotOk();
  dataset.SetGold(3, 1).AbortIfNotOk();
  auto proxy = dataset.ProxyResponseMatrix(0);
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ(proxy->row_counts[0], 2);
  EXPECT_EQ(proxy->row_counts[2], 0);
  EXPECT_DOUBLE_EQ(proxy->probabilities[0][0], 0.5);
  EXPECT_DOUBLE_EQ(proxy->probabilities[0][1], 0.5);
  EXPECT_DOUBLE_EQ(proxy->probabilities[1][1], 1.0);
}

TEST(DatasetIo, RoundTrip) {
  ResponseMatrix m(3, 5, 3);
  Random rng(9);
  for (WorkerId w = 0; w < 3; ++w) {
    for (TaskId t = 0; t < 5; ++t) {
      if (rng.Bernoulli(0.7)) {
        m.Set(w, t, static_cast<int>(rng.UniformInt(3))).AbortIfNotOk();
      }
    }
  }
  m.Set(0, 0, 1).AbortIfNotOk();  // Ensure non-empty.
  Dataset dataset("roundtrip", std::move(m));
  dataset.SetGold(0, 2).AbortIfNotOk();
  dataset.SetGold(4, 0).AbortIfNotOk();

  std::string responses_path = testing::TempDir() + "/ds_resp.csv";
  std::string gold_path = testing::TempDir() + "/ds_gold.csv";
  ASSERT_TRUE(SaveDatasetCsv(dataset, responses_path, gold_path).ok());

  LoadOptions options;
  options.num_workers = 3;
  options.num_tasks = 5;
  options.arity = 3;
  auto loaded =
      LoadDatasetCsv("roundtrip", responses_path, gold_path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->responses().TotalResponses(),
            dataset.responses().TotalResponses());
  for (WorkerId w = 0; w < 3; ++w) {
    for (TaskId t = 0; t < 5; ++t) {
      EXPECT_EQ(loaded->responses().Get(w, t),
                dataset.responses().Get(w, t));
    }
  }
  EXPECT_EQ(*loaded->Gold(0), 2);
  EXPECT_EQ(*loaded->Gold(4), 0);
  EXPECT_FALSE(loaded->HasGold(1));
  std::remove(responses_path.c_str());
  std::remove(gold_path.c_str());
}

TEST(DatasetIo, MalformedInputsRejected) {
  std::string path = testing::TempDir() + "/bad.csv";
  ASSERT_TRUE(
      WriteStringToFile("worker,task,response\n0,0,1\n0,0,0\n", path)
          .ok());
  // Conflicting duplicate.
  EXPECT_TRUE(LoadDatasetCsv("bad", path).status().IsIoError());
  ASSERT_TRUE(
      WriteStringToFile("worker,task,response\n-1,0,1\n", path).ok());
  EXPECT_TRUE(LoadDatasetCsv("bad", path).status().IsIoError());
  ASSERT_TRUE(WriteStringToFile("worker,task\n0,0\n", path).ok());
  EXPECT_FALSE(LoadDatasetCsv("bad", path).ok());
  std::remove(path.c_str());
}

TEST(OverlapIndex, PairCounts) {
  ResponseMatrix m(3, 4, 2);
  // w0: tasks 0,1,2; w1: tasks 1,2,3; w2: task 2 only.
  for (TaskId t : {0, 1, 2}) m.Set(0, t, 0).AbortIfNotOk();
  for (TaskId t : {1, 2, 3}) m.Set(1, t, 0).AbortIfNotOk();
  m.Set(2, 2, 1).AbortIfNotOk();
  OverlapIndex overlap(m);
  EXPECT_EQ(overlap.CommonCount(0, 1), 2u);
  EXPECT_EQ(overlap.CommonCount(0, 2), 1u);
  EXPECT_EQ(overlap.AgreementCount(0, 1), 2u);
  EXPECT_EQ(overlap.AgreementCount(0, 2), 0u);
  EXPECT_DOUBLE_EQ(*overlap.AgreementRate(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(*overlap.AgreementRate(0, 2), 0.0);
  EXPECT_EQ(overlap.TripleCommonCount(0, 1, 2), 1u);
}

TEST(OverlapIndex, EmptyOverlapIsError) {
  ResponseMatrix m(2, 2, 2);
  m.Set(0, 0, 0).AbortIfNotOk();
  m.Set(1, 1, 0).AbortIfNotOk();
  OverlapIndex overlap(m);
  EXPECT_EQ(overlap.CommonCount(0, 1), 0u);
  EXPECT_TRUE(overlap.AgreementRate(0, 1).status().IsInsufficientData());
}

// The paper's worked example from Section III-B: 100 tasks, w1 does
// the first 80, w2 the last 80, w3 the middle 80; then c12 = 60,
// c13 = c23 = 70, c123 = 60.
TEST(OverlapIndex, PaperWorkedExample) {
  ResponseMatrix m(3, 100, 2);
  for (TaskId t = 0; t < 80; ++t) m.Set(0, t, 0).AbortIfNotOk();
  for (TaskId t = 20; t < 100; ++t) m.Set(1, t, 0).AbortIfNotOk();
  for (TaskId t = 10; t < 90; ++t) m.Set(2, t, 0).AbortIfNotOk();
  OverlapIndex overlap(m);
  EXPECT_EQ(overlap.CommonCount(0, 1), 60u);
  EXPECT_EQ(overlap.CommonCount(0, 2), 70u);
  EXPECT_EQ(overlap.CommonCount(1, 2), 70u);
  EXPECT_EQ(overlap.TripleCommonCount(0, 1, 2), 60u);
}

// Bitset triple counting agrees with brute force on random data.
TEST(OverlapIndexProperty, TripleCountMatchesBruteForce) {
  Random rng(17);
  ResponseMatrix m(6, 130, 2);
  for (WorkerId w = 0; w < 6; ++w) {
    for (TaskId t = 0; t < 130; ++t) {
      if (rng.Bernoulli(0.6)) m.Set(w, t, 0).AbortIfNotOk();
    }
  }
  OverlapIndex overlap(m);
  for (WorkerId i = 0; i < 6; ++i) {
    for (WorkerId j = 0; j < 6; ++j) {
      for (WorkerId k = 0; k < 6; ++k) {
        size_t brute = 0;
        for (TaskId t = 0; t < 130; ++t) {
          if (m.Has(i, t) && m.Has(j, t) && m.Has(k, t)) ++brute;
        }
        ASSERT_EQ(overlap.TripleCommonCount(i, j, k), brute);
      }
    }
  }
}

}  // namespace
}  // namespace crowd::data
