// Tests for the spectral + EM refinement extension.

#include <gtest/gtest.h>

#include <cmath>

#include "core/em_refine.h"
#include "experiments/runner.h"
#include "linalg/matrix_functions.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd::core {
namespace {

Result<CountsTensor> SimulatedCounts(int arity, size_t n, Random* rng,
                                     std::vector<linalg::Matrix>* truth) {
  sim::KarySimConfig config;
  config.arity = arity;
  config.num_tasks = n;
  CROWD_ASSIGN_OR_RETURN(auto sim, sim::SimulateKary(config, rng));
  *truth = sim.true_matrices;
  return CountsTensor::FromResponses(sim.dataset.responses(), 0, 1, 2);
}

TEST(EmRefine, ImprovesOrMatchesSpectralEstimate) {
  Random rng(3);
  for (int arity : {2, 3, 4}) {
    double spectral_total = 0.0;
    double refined_total = 0.0;
    int trials_used = 0;
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<linalg::Matrix> truth;
      Random stream = rng.Fork();
      auto counts = SimulatedCounts(arity, 1200, &stream, &truth);
      ASSERT_TRUE(counts.ok());
      auto spectral = ProbEstimate(*counts);
      auto refined = SpectralThenEm(*counts);
      if (!spectral.ok() || !refined.ok()) continue;
      ++trials_used;
      for (int w = 0; w < 3; ++w) {
        linalg::Matrix p = spectral->v(w);
        ASSERT_TRUE(linalg::NormalizeRowsToSumOne(&p).ok());
        spectral_total += p.MaxAbsDiff(truth[w]);
        refined_total += refined->p[w].MaxAbsDiff(truth[w]);
      }
    }
    ASSERT_GE(trials_used, 4) << "arity " << arity;
    EXPECT_LE(refined_total, spectral_total * 1.05) << "arity " << arity;
  }
}

TEST(EmRefine, RefinedMatricesAreRowStochastic) {
  Random rng(5);
  std::vector<linalg::Matrix> truth;
  auto counts = SimulatedCounts(3, 800, &rng, &truth);
  ASSERT_TRUE(counts.ok());
  auto refined = SpectralThenEm(*counts);
  ASSERT_TRUE(refined.ok()) << refined.status();
  for (const auto& p : refined->p) {
    for (size_t r = 0; r < p.rows(); ++r) {
      double sum = 0.0;
      for (size_t c = 0; c < p.cols(); ++c) {
        EXPECT_GE(p(r, c), 0.0);
        EXPECT_LE(p(r, c), 1.0);
        sum += p(r, c);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
  double selectivity_sum = 0.0;
  for (double s : refined->selectivity) selectivity_sum += s;
  EXPECT_NEAR(selectivity_sum, 1.0, 1e-9);
}

TEST(EmRefine, LikelihoodNonDecreasingWithIterations) {
  Random rng(7);
  std::vector<linalg::Matrix> truth;
  auto counts = SimulatedCounts(3, 600, &rng, &truth);
  ASSERT_TRUE(counts.ok());
  EmRefineOptions two;
  two.max_iterations = 2;
  EmRefineOptions many;
  many.max_iterations = 300;
  many.tolerance = 1e-6;
  auto short_run = SpectralThenEm(*counts, {}, two);
  auto long_run = SpectralThenEm(*counts, {}, many);
  ASSERT_TRUE(short_run.ok());
  ASSERT_TRUE(long_run.ok());
  EXPECT_GE(long_run->log_likelihood,
            short_run->log_likelihood - 1e-9);
  // Note: `converged` is intentionally not asserted — EM can crawl
  // along likelihood ridges for hundreds of iterations (observed on
  // this very configuration) and stopping at max_iterations with a
  // monotonically improved likelihood is correct behavior.
}

TEST(EmRefine, NonRegularDataHandled) {
  Random rng(9);
  sim::KarySimConfig config;
  config.arity = 3;
  config.num_tasks = 1500;
  config.assignment = sim::AssignmentConfig::Iid(0.6);
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  auto counts =
      CountsTensor::FromResponses(sim->dataset.responses(), 0, 1, 2);
  ASSERT_TRUE(counts.ok());
  auto refined = SpectralThenEm(*counts);
  ASSERT_TRUE(refined.ok()) << refined.status();
  for (int w = 0; w < 3; ++w) {
    EXPECT_LT(refined->p[w].MaxAbsDiff(sim->true_matrices[w]), 0.12)
        << "worker " << w;
  }
}

TEST(EmRefine, ValidationErrors) {
  CountsTensor counts(3);
  std::array<linalg::Matrix, 3> wrong_shape = {
      linalg::Matrix(2, 2), linalg::Matrix(3, 3), linalg::Matrix(3, 3)};
  EXPECT_TRUE(EmRefineFromCounts(counts, wrong_shape,
                                 linalg::Vector(3, 1.0 / 3))
                  .status()
                  .IsInvalid());
  std::array<linalg::Matrix, 3> ok_shape = {
      linalg::Matrix(3, 3, 1.0 / 3), linalg::Matrix(3, 3, 1.0 / 3),
      linalg::Matrix(3, 3, 1.0 / 3)};
  EXPECT_TRUE(EmRefineFromCounts(counts, ok_shape,
                                 linalg::Vector(2, 0.5))
                  .status()
                  .IsInvalid());
  // Empty tensor: no responses at all.
  EXPECT_TRUE(EmRefineFromCounts(counts, ok_shape,
                                 linalg::Vector(3, 1.0 / 3))
                  .status()
                  .IsInsufficientData());
}

}  // namespace
}  // namespace crowd::core
