// Tests for the simulation module: assignment models, worker models,
// simulators and the paper-dataset synthesizers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/overlap_index.h"
#include "sim/assignment.h"
#include "sim/binary_worker.h"
#include "sim/kary_worker.h"
#include "sim/paper_datasets.h"
#include "sim/simulator.h"

namespace crowd::sim {
namespace {

TEST(Assignment, RegularAttemptsEverything) {
  Random rng(1);
  auto mask = DrawAssignment(AssignmentConfig::Regular(), 3, 10, &rng);
  for (const auto& row : mask) {
    for (bool attempted : row) EXPECT_TRUE(attempted);
  }
}

TEST(Assignment, IidDensityMatchesRate) {
  Random rng(2);
  auto mask = DrawAssignment(AssignmentConfig::Iid(0.3), 20, 500, &rng);
  size_t attempts = 0;
  for (const auto& row : mask) {
    for (bool attempted : row) attempts += attempted ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(attempts) / (20 * 500), 0.3, 0.02);
}

TEST(Assignment, PerWorkerDensities) {
  Random rng(3);
  auto config = AssignmentConfig::PerWorker({0.1, 0.9});
  auto mask = DrawAssignment(config, 2, 2000, &rng);
  auto rate = [&](size_t w) {
    size_t count = 0;
    for (bool attempted : mask[w]) count += attempted ? 1 : 0;
    return static_cast<double>(count) / 2000;
  };
  EXPECT_NEAR(rate(0), 0.1, 0.03);
  EXPECT_NEAR(rate(1), 0.9, 0.03);
}

TEST(Assignment, PaperHeterogeneousProfile) {
  auto config = AssignmentConfig::PaperHeterogeneous(7);
  ASSERT_EQ(config.per_worker_density.size(), 7u);
  // d_i = (0.5 i + (m - i)) / m, decreasing from near 1 to 0.5.
  EXPECT_NEAR(config.per_worker_density[0], (0.5 + 6.0) / 7.0, 1e-12);
  EXPECT_NEAR(config.per_worker_density[6], 0.5, 1e-12);
  for (size_t i = 1; i < 7; ++i) {
    EXPECT_LT(config.per_worker_density[i],
              config.per_worker_density[i - 1]);
  }
}

TEST(BinaryWorker, RatesComeFromPool) {
  Random rng(4);
  BinaryPoolConfig config;
  config.error_rates = {0.1, 0.2, 0.3};
  auto rates = DrawErrorRates(config, 300, &rng);
  for (double rate : rates) {
    EXPECT_TRUE(rate == 0.1 || rate == 0.2 || rate == 0.3) << rate;
  }
}

TEST(BinaryWorker, SpammerAdmixture) {
  Random rng(5);
  BinaryPoolConfig config;
  config.spammer_fraction = 0.5;
  auto rates = DrawErrorRates(config, 1000, &rng);
  size_t spammers = 0;
  for (double rate : rates) {
    if (rate >= config.spammer_lo) ++spammers;
  }
  EXPECT_NEAR(static_cast<double>(spammers) / 1000, 0.5, 0.06);
}

TEST(BinaryWorker, EffectiveErrorRateClamping) {
  EXPECT_DOUBLE_EQ(EffectiveErrorRate(0.2, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(EffectiveErrorRate(0.2, 10.0), 0.6);
  EXPECT_DOUBLE_EQ(EffectiveErrorRate(0.2, -10.0), 0.001);
}

TEST(KaryWorker, PaperPoolsAreRowStochastic) {
  for (int arity : {2, 3, 4}) {
    auto pool = PaperMatrixPool(arity);
    ASSERT_TRUE(pool.ok());
    EXPECT_EQ(pool->size(), 3u);
    for (const auto& m : *pool) {
      ASSERT_EQ(m.rows(), static_cast<size_t>(arity));
      for (int r = 0; r < arity; ++r) {
        double sum = 0.0;
        for (int c = 0; c < arity; ++c) sum += m(r, c);
        EXPECT_NEAR(sum, 1.0, 1e-12);
        // Diagonal dominance within the row (the paper's recovery
        // step depends on it).
        for (int c = 0; c < arity; ++c) {
          if (c != r) {
            EXPECT_GT(m(r, r), m(r, c));
          }
        }
      }
    }
  }
  EXPECT_TRUE(PaperMatrixPool(7).status().IsInvalid());
}

TEST(KaryWorker, GeneratedMatricesAreValid) {
  Random rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    auto m = RandomResponseMatrix(4, 0.6, 0.9, &rng);
    auto adj = AdjacentBiasMatrix(5, 0.7, &rng);
    for (const auto& matrix : {m, adj}) {
      for (size_t r = 0; r < matrix.rows(); ++r) {
        double sum = 0.0;
        for (size_t c = 0; c < matrix.cols(); ++c) {
          EXPECT_GE(matrix(r, c), 0.0);
          sum += matrix(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
      }
    }
  }
}

TEST(KaryWorker, SampleResponseFollowsRow) {
  Random rng(7);
  linalg::Matrix m{{0.7, 0.3}, {0.0, 1.0}};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += SampleResponse(m, 0, &rng);
  EXPECT_NEAR(ones / 10000.0, 0.3, 0.02);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleResponse(m, 1, &rng), 1);
}

TEST(Simulator, BinaryErrorRatesMatchPlanted) {
  Random rng(8);
  BinarySimConfig config;
  config.num_workers = 4;
  config.num_tasks = 5000;
  auto out = SimulateBinary(config, &rng);
  EXPECT_EQ(out.dataset.GoldCount(), 5000u);
  for (size_t w = 0; w < 4; ++w) {
    auto proxy = out.dataset.ProxyErrorRate(w);
    ASSERT_TRUE(proxy.ok());
    EXPECT_NEAR(*proxy, out.true_error_rates[w], 0.02);
  }
}

TEST(Simulator, TaskDifficultyCorrelatesErrors) {
  // With strong task difficulty, errors of two equally-good workers
  // concentrate on the same tasks: their conditional agreement given
  // one erred is above the independent-model prediction.
  Random rng(9);
  BinarySimConfig config;
  config.num_workers = 2;
  config.num_tasks = 20000;
  config.pool.error_rates = {0.2};
  config.task_difficulty_sd = 0.15;
  auto out = SimulateBinary(config, &rng);
  size_t both_wrong = 0, first_wrong = 0;
  for (data::TaskId t = 0; t < 20000; ++t) {
    int truth = *out.dataset.Gold(t);
    bool w0 = *out.dataset.responses().Get(0, t) != truth;
    bool w1 = *out.dataset.responses().Get(1, t) != truth;
    if (w0) {
      ++first_wrong;
      if (w1) ++both_wrong;
    }
  }
  double conditional =
      static_cast<double>(both_wrong) / static_cast<double>(first_wrong);
  EXPECT_GT(conditional, 0.24);  // Independent model would give ~0.20.
}

TEST(Simulator, KaryRespectsSelectivity) {
  Random rng(10);
  KarySimConfig config;
  config.arity = 3;
  config.num_tasks = 10000;
  config.selectivity = {0.6, 0.3, 0.1};
  auto out = SimulateKary(config, &rng);
  ASSERT_TRUE(out.ok());
  std::vector<int> counts(3, 0);
  for (data::TaskId t = 0; t < 10000; ++t) {
    ++counts[*out->dataset.Gold(t)];
  }
  EXPECT_NEAR(counts[0] / 10000.0, 0.6, 0.02);
  EXPECT_NEAR(counts[2] / 10000.0, 0.1, 0.02);
}

TEST(Simulator, KaryValidation) {
  Random rng(11);
  KarySimConfig config;
  config.arity = 3;
  config.selectivity = {0.5, 0.5};  // Wrong size.
  EXPECT_TRUE(SimulateKary(config, &rng).status().IsInvalid());
  KarySimConfig config2;
  config2.arity = 9;  // No paper pool.
  EXPECT_FALSE(SimulateKary(config2, &rng).ok());
}

TEST(Simulator, RemoveResponsesFraction) {
  Random rng(12);
  BinarySimConfig config;
  config.num_workers = 5;
  config.num_tasks = 400;
  auto out = SimulateBinary(config, &rng);
  auto thinned = RemoveResponses(out.dataset.responses(), 0.2, &rng);
  EXPECT_NEAR(static_cast<double>(thinned.TotalResponses()),
              0.8 * 5 * 400, 60);
}

TEST(PaperDatasets, DeterministicInSeed) {
  auto a = SyntheticRte(42);
  auto b = SyntheticRte(42);
  auto c = SyntheticRte(43);
  EXPECT_EQ(a.responses().TotalResponses(), b.responses().TotalResponses());
  for (data::WorkerId w = 0; w < 5; ++w) {
    for (data::TaskId t = 0; t < 50; ++t) {
      EXPECT_EQ(a.responses().Get(w, t), b.responses().Get(w, t));
    }
  }
  // A different seed produces a different response pattern (total
  // count is fixed by the 10-labels-per-task protocol, so compare the
  // cells themselves).
  bool any_difference = false;
  for (data::WorkerId w = 0; w < a.responses().num_workers(); ++w) {
    for (data::TaskId t = 0; t < a.responses().num_tasks(); ++t) {
      if (a.responses().Get(w, t) != c.responses().Get(w, t)) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(PaperDatasets, RteSparsityMatchesProtocol) {
  auto dataset = SyntheticRte(1);
  // ~10 responses per task.
  double per_task =
      static_cast<double>(dataset.responses().TotalResponses()) /
      static_cast<double>(dataset.responses().num_tasks());
  EXPECT_NEAR(per_task, 10.0, 0.5);
  // Long tail: the busiest worker does far more than the median.
  std::vector<size_t> activity;
  for (data::WorkerId w = 0; w < dataset.responses().num_workers(); ++w) {
    activity.push_back(dataset.responses().WorkerResponseCount(w));
  }
  std::sort(activity.begin(), activity.end());
  EXPECT_GT(activity.back(), 4 * activity[activity.size() / 2]);
}

TEST(PaperDatasets, WsTriplesShareAboutThirtyTasks) {
  auto dataset = SyntheticWs(2);
  data::OverlapIndex overlap(dataset.responses());
  // Adjacent workers share ~half their 60-task windows.
  size_t common = overlap.TripleCommonCount(0, 1, 2);
  EXPECT_GE(common, 25u);
  EXPECT_LE(common, 60u);
}

TEST(PaperDatasets, UnknownNameRejected) {
  EXPECT_TRUE(MakePaperDataset("NOPE", 1).status().IsNotFound());
}

}  // namespace
}  // namespace crowd::sim
