// Tests for the k-ary machinery: the counts tensor and Lemma 9
// covariances (against brute-force simulation), the response-frequency
// matrices, exact ProbEstimate recovery on noiseless expected counts,
// and Algorithm A3's interval construction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/counts_tensor.h"
#include "core/kary_estimator.h"
#include "core/prob_estimate.h"
#include "linalg/matrix_functions.h"
#include "rng/random.h"
#include "sim/kary_worker.h"
#include "sim/simulator.h"

namespace crowd::core {
namespace {

TEST(CountsTensor, BuildFromResponses) {
  data::ResponseMatrix m(3, 4, 2);
  // Task 0: all respond (0,1,0) -> cell (1,2,1).
  m.Set(0, 0, 0).AbortIfNotOk();
  m.Set(1, 0, 1).AbortIfNotOk();
  m.Set(2, 0, 0).AbortIfNotOk();
  // Task 1: only workers 0 and 1 -> cell (2,2,0).
  m.Set(0, 1, 1).AbortIfNotOk();
  m.Set(1, 1, 1).AbortIfNotOk();
  // Task 2: only worker 2 -> cell (0,0,1).
  m.Set(2, 2, 0).AbortIfNotOk();
  // Task 3: nobody -> cell (0,0,0).
  auto tensor = CountsTensor::FromResponses(m, 0, 1, 2);
  ASSERT_TRUE(tensor.ok());
  EXPECT_DOUBLE_EQ(tensor->at(1, 2, 1), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(2, 2, 0), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(tensor->TripleTotal(), 1.0);
  EXPECT_DOUBLE_EQ(tensor->PairAttemptTotal(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(tensor->PatternTotal(3), 1.0);  // w1+w2 only.

  EXPECT_TRUE(CountsTensor::FromResponses(m, 0, 0, 2).status()
                  .IsInvalid());
  EXPECT_TRUE(CountsTensor::FromResponses(m, 0, 1, 9).status()
                  .IsInvalid());
}

TEST(CountsTensor, CellPattern) {
  EXPECT_EQ((CountsCell{0, 0, 0}).Pattern(), 0);
  EXPECT_EQ((CountsCell{1, 0, 0}).Pattern(), 1);
  EXPECT_EQ((CountsCell{0, 2, 3}).Pattern(), 6);
  EXPECT_EQ((CountsCell{1, 1, 1}).Pattern(), 7);
}

TEST(CountsTensor, LemmaNineStructure) {
  CountsTensor tensor(2);
  tensor.at(1, 1, 1) = 30;
  tensor.at(1, 2, 1) = 10;
  tensor.at(2, 2, 0) = 5;
  tensor.at(1, 2, 0) = 15;
  // Case 1: different patterns -> zero.
  EXPECT_DOUBLE_EQ(
      tensor.Covariance({1, 1, 1}, {2, 2, 0}), 0.0);
  // Case 2: same cell -> count (n - count) / n, n = pattern total 40.
  EXPECT_DOUBLE_EQ(tensor.Covariance({1, 1, 1}, {1, 1, 1}),
                   30.0 * 10.0 / 40.0);
  // Case 3: same pattern, different cells -> -c1 c2 / n.
  EXPECT_DOUBLE_EQ(tensor.Covariance({1, 1, 1}, {1, 2, 1}),
                   -30.0 * 10.0 / 40.0);
  EXPECT_DOUBLE_EQ(tensor.Covariance({2, 2, 0}, {1, 2, 0}),
                   -5.0 * 15.0 / 20.0);
}

// Lemma 9 against brute-force: empirical covariances of tensor cells
// over repeated draws of a fixed generative model.
TEST(CountsTensorProperty, LemmaNineMatchesSimulation) {
  Random rng(5);
  const int trials = 40000;
  const size_t n = 40;
  // Cells tracked: two in the all-three pattern, one in a pair pattern.
  const CountsCell cells[3] = {{1, 1, 1}, {1, 2, 1}, {2, 2, 0}};
  double sums[3] = {0, 0, 0};
  double cross[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  CountsTensor expected_tensor(2);

  for (int trial = 0; trial < trials; ++trial) {
    CountsTensor tensor(2);
    Random stream = rng.Fork();
    for (size_t t = 0; t < n; ++t) {
      // Fixed attempt pattern: first 30 tasks all three, last 10 only
      // workers 1 and 2.
      bool all_three = t < 30;
      int r1 = stream.Bernoulli(0.3) ? 2 : 1;
      int r2 = stream.Bernoulli(0.4) ? 2 : 1;
      int r3 = all_three ? (stream.Bernoulli(0.2) ? 2 : 1) : 0;
      tensor.at(r1, r2, r3) += 1.0;
    }
    double values[3];
    for (int c = 0; c < 3; ++c) {
      values[c] = tensor.at(cells[c]);
      sums[c] += values[c];
    }
    for (int x = 0; x < 3; ++x) {
      for (int y = 0; y < 3; ++y) cross[x][y] += values[x] * values[y];
    }
    if (trial == 0) expected_tensor = tensor;
  }

  // Build the Lemma 9 prediction from the *expected* counts (the
  // formulas are evaluated at estimated counts in production; here use
  // the analytic expectations for a sharp test).
  CountsTensor analytic(2);
  analytic.at(1, 1, 1) = 30 * 0.7 * 0.6 * 0.8;
  analytic.at(1, 2, 1) = 30 * 0.7 * 0.4 * 0.8;
  analytic.at(2, 1, 1) = 30 * 0.3 * 0.6 * 0.8;
  analytic.at(2, 2, 1) = 30 * 0.3 * 0.4 * 0.8;
  analytic.at(1, 1, 2) = 30 * 0.7 * 0.6 * 0.2;
  analytic.at(1, 2, 2) = 30 * 0.7 * 0.4 * 0.2;
  analytic.at(2, 1, 2) = 30 * 0.3 * 0.6 * 0.2;
  analytic.at(2, 2, 2) = 30 * 0.3 * 0.4 * 0.2;
  analytic.at(1, 1, 0) = 10 * 0.7 * 0.6;
  analytic.at(1, 2, 0) = 10 * 0.7 * 0.4;
  analytic.at(2, 1, 0) = 10 * 0.3 * 0.6;
  analytic.at(2, 2, 0) = 10 * 0.3 * 0.4;

  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      double empirical =
          cross[x][y] / trials - (sums[x] / trials) * (sums[y] / trials);
      double predicted = analytic.Covariance(cells[x], cells[y]);
      EXPECT_NEAR(empirical, predicted,
                  0.08 * std::fabs(predicted) + 0.03)
          << "cells " << x << "," << y;
    }
  }
}

// Builds the *expected* counts tensor for planted parameters: exact
// input for which ProbEstimate must recover the truth to numerical
// precision.
CountsTensor ExpectedCounts(const std::vector<linalg::Matrix>& p,
                            const linalg::Vector& selectivity,
                            double total_tasks) {
  const int k = static_cast<int>(selectivity.size());
  CountsTensor tensor(k);
  for (int truth = 0; truth < k; ++truth) {
    for (int a = 1; a <= k; ++a) {
      for (int b = 1; b <= k; ++b) {
        for (int c = 1; c <= k; ++c) {
          tensor.at(a, b, c) += total_tasks * selectivity[truth] *
                                p[0](truth, a - 1) * p[1](truth, b - 1) *
                                p[2](truth, c - 1);
        }
      }
    }
  }
  return tensor;
}

TEST(ProbEstimate, ExactRecoveryOnExpectedCounts) {
  for (int arity : {2, 3, 4}) {
    auto pool = sim::PaperMatrixPool(arity);
    ASSERT_TRUE(pool.ok());
    std::vector<linalg::Matrix> planted = {(*pool)[0], (*pool)[1],
                                           (*pool)[2]};
    linalg::Vector selectivity(arity, 1.0 / arity);
    CountsTensor counts = ExpectedCounts(planted, selectivity, 1e6);

    auto estimate = ProbEstimate(counts);
    ASSERT_TRUE(estimate.ok()) << "arity " << arity << ": "
                               << estimate.status();
    for (int w = 0; w < 3; ++w) {
      linalg::Matrix v = estimate->v(w);
      // Rows of S^{1/2} P: normalize and compare with the planted P.
      ASSERT_TRUE(linalg::NormalizeRowsToSumOne(&v).ok());
      EXPECT_LT(v.MaxAbsDiff(planted[w]), 1e-6)
          << "arity " << arity << " worker " << w << "\n"
          << v.ToString();
    }
  }
}

TEST(ProbEstimate, RecoversSkewedSelectivity) {
  auto pool = sim::PaperMatrixPool(3);
  ASSERT_TRUE(pool.ok());
  std::vector<linalg::Matrix> planted = {(*pool)[1], (*pool)[1],
                                         (*pool)[2]};
  linalg::Vector selectivity = {0.5, 0.3, 0.2};
  CountsTensor counts = ExpectedCounts(planted, selectivity, 1e6);
  auto estimate = ProbEstimate(counts);
  ASSERT_TRUE(estimate.ok()) << estimate.status();
  // Row sums of V squared give the selectivity.
  auto sums = linalg::RowSums(estimate->v1);
  for (int z = 0; z < 3; ++z) {
    EXPECT_NEAR(sums[z] * sums[z], selectivity[z], 1e-6);
  }
}

TEST(ProbEstimate, MixedSliceFallbackRecoversWhenAllSlicesRejected) {
  // Forcing the eigengap gate to reject every per-j3 slice exercises
  // the mixed-slice fallback, which must still recover the planted
  // parameters exactly on expected counts (generic slice combinations
  // have simple spectra even when the individual slices do not).
  auto pool = sim::PaperMatrixPool(3);
  ASSERT_TRUE(pool.ok());
  std::vector<linalg::Matrix> planted = {(*pool)[0], (*pool)[1],
                                         (*pool)[2]};
  linalg::Vector selectivity(3, 1.0 / 3);
  CountsTensor counts = ExpectedCounts(planted, selectivity, 1e6);
  ProbEstimateOptions options;
  options.min_eigengap_ratio = 1.0;  // No single slice can pass.
  auto estimate = ProbEstimate(counts, options);
  ASSERT_TRUE(estimate.ok()) << estimate.status();
  EXPECT_EQ(estimate->rotations_used, 1);  // The mixed slice.
  for (int w = 0; w < 3; ++w) {
    linalg::Matrix v = estimate->v(w);
    ASSERT_TRUE(linalg::NormalizeRowsToSumOne(&v).ok());
    EXPECT_LT(v.MaxAbsDiff(planted[w]), 1e-6) << "worker " << w;
  }
}

TEST(ProbEstimate, MinConditionalCountSkipsThinSlices) {
  auto pool = sim::PaperMatrixPool(2);
  ASSERT_TRUE(pool.ok());
  std::vector<linalg::Matrix> planted = {(*pool)[0], (*pool)[1],
                                         (*pool)[2]};
  linalg::Vector selectivity(2, 0.5);
  CountsTensor counts = ExpectedCounts(planted, selectivity, 100.0);
  // Demanding more conditioning mass than any slice has makes the
  // per-slice pass empty — and the mixed-slice fallback has nothing
  // to mix, so the call must fail cleanly.
  ProbEstimateOptions options;
  options.min_conditional_count = 1e9;
  auto estimate = ProbEstimate(counts, options);
  EXPECT_TRUE(estimate.status().IsInsufficientData())
      << estimate.status();
}

TEST(ProbEstimate, FailsOnMissingPairOverlap) {
  CountsTensor counts(2);
  counts.at(1, 0, 1) = 10;  // Only workers 1 and 3 ever co-occur.
  auto estimate = ProbEstimate(counts);
  EXPECT_TRUE(estimate.status().IsInsufficientData());
}

TEST(ResponseFrequencies, MatchHandComputation) {
  CountsTensor counts(2);
  counts.at(1, 1, 1) = 6;
  counts.at(2, 2, 1) = 2;
  counts.at(1, 2, 0) = 2;  // w1, w2 only.
  auto freq = ComputeResponseFrequencies(counts);
  ASSERT_TRUE(freq.ok());
  // d12 = 10: R12(0,0) = 6/10, R12(0,1) = 2/10, R12(1,1) = 2/10.
  EXPECT_DOUBLE_EQ(freq->r12(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(freq->r12(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(freq->r12(1, 1), 0.2);
  // d23 = 8 (triple tasks only).
  EXPECT_DOUBLE_EQ(freq->r23(0, 0), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(freq->r23(1, 0), 2.0 / 8.0);
}

TEST(KaryEstimator, IntervalsShrinkWithMoreTasks) {
  Random rng(7);
  double small_n_size = 0.0, large_n_size = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    for (size_t n : {size_t{200}, size_t{2000}}) {
      sim::KarySimConfig config;
      config.arity = 3;
      config.num_tasks = n;
      Random stream = rng.Fork();
      auto sim = sim::SimulateKary(config, &stream);
      ASSERT_TRUE(sim.ok());
      KaryOptions options;
      auto result =
          KaryEvaluate(sim->dataset.responses(), 0, 1, 2, options);
      if (!result.ok()) continue;
      double total = 0.0;
      for (int w = 0; w < 3; ++w) {
        for (int r = 0; r < 3; ++r) {
          for (int c = 0; c < 3; ++c) {
            total += result->workers[w].intervals[r][c].size();
          }
        }
      }
      (n == 200 ? small_n_size : large_n_size) += total;
    }
  }
  EXPECT_LT(large_n_size, small_n_size);
}

TEST(KaryEstimator, PaperStrictJacobianStillWorksOnRegularData) {
  Random rng(9);
  sim::KarySimConfig config;
  config.arity = 2;
  config.num_tasks = 800;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  KaryOptions strict;
  strict.paper_strict_jacobian = true;
  auto result =
      KaryEvaluate(sim->dataset.responses(), 0, 1, 2, strict);
  ASSERT_TRUE(result.ok()) << result.status();
  // On regular data pair-only cells are empty, so strict == default.
  KaryOptions loose;
  auto result2 =
      KaryEvaluate(sim->dataset.responses(), 0, 1, 2, loose);
  ASSERT_TRUE(result2.ok());
  for (int w = 0; w < 3; ++w) {
    EXPECT_LT(result->workers[w].v_deviation.MaxAbsDiff(
                  result2->workers[w].v_deviation),
              1e-9);
  }
}

TEST(KaryEstimator, RowStochasticPointEstimates) {
  Random rng(11);
  sim::KarySimConfig config;
  config.arity = 4;
  config.num_tasks = 1000;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  KaryOptions options;
  auto result = KaryEvaluate(sim->dataset.responses(), 0, 1, 2, options);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int w = 0; w < 3; ++w) {
    auto sums = linalg::RowSums(result->workers[w].p);
    for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-9);
  }
  double total_selectivity = 0.0;
  for (double s : result->selectivity) total_selectivity += s;
  EXPECT_NEAR(total_selectivity, 1.0, 1e-9);
}

}  // namespace
}  // namespace crowd::core
