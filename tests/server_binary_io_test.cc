// Unit tests for the bounds-checked ByteReader and the low-level
// little-endian / CRC helpers it builds on (server/binary_io.h). The
// properties pinned here — truncated reads fail with IoError without
// consuming, declared sizes are validated before any copy — are the
// same contract fuzz/fuzz_binary_io.cc checks under random bytes.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "server/binary_io.h"

namespace crowd::server {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) {
  return std::vector<uint8_t>(b);
}

TEST(PutGetTest, LittleEndianRoundTrip) {
  std::vector<uint8_t> buf;
  PutU32(&buf, 0x01020304u);
  PutU64(&buf, 0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 12u);
  // Little-endian on disk regardless of host order.
  EXPECT_EQ(buf[0], 0x04u);
  EXPECT_EQ(buf[3], 0x01u);
  EXPECT_EQ(buf[4], 0x08u);
  EXPECT_EQ(buf[11], 0x01u);
  EXPECT_EQ(GetU32(buf.data()), 0x01020304u);
  EXPECT_EQ(GetU64(buf.data() + 4), 0x0102030405060708ull);
}

TEST(Crc32Test, MatchesZlibVector) {
  // zlib.crc32(b"123456789") — the classic check value.
  const char kCheck[] = "123456789";
  EXPECT_EQ(Crc32(kCheck, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(ByteReaderTest, SequentialReadsConsumeInOrder) {
  std::vector<uint8_t> buf;
  PutU32(&buf, 7u);
  PutU64(&buf, 9000000000ull);
  buf.push_back(0xAB);
  ByteReader reader(buf);
  EXPECT_EQ(reader.offset(), 0u);
  EXPECT_EQ(reader.remaining(), buf.size());

  auto u32 = reader.ReadU32();
  ASSERT_TRUE(u32.ok()) << u32.status();
  EXPECT_EQ(*u32, 7u);
  auto u64 = reader.ReadU64();
  ASSERT_TRUE(u64.ok()) << u64.status();
  EXPECT_EQ(*u64, 9000000000ull);
  uint8_t tail = 0;
  ASSERT_TRUE(reader.ReadBytes(&tail, 1).ok());
  EXPECT_EQ(tail, 0xABu);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(reader.offset(), buf.size());
}

TEST(ByteReaderTest, TruncatedReadFailsWithoutConsuming) {
  std::vector<uint8_t> buf = Bytes({1, 2, 3});  // 3 bytes < u32
  ByteReader reader(buf);
  auto u32 = reader.ReadU32();
  EXPECT_TRUE(u32.status().IsIoError()) << u32.status();
  // The failed read left the cursor alone; the bytes are still there.
  EXPECT_EQ(reader.offset(), 0u);
  EXPECT_EQ(reader.remaining(), 3u);
  uint8_t out[3] = {0, 0, 0};
  ASSERT_TRUE(reader.ReadBytes(out, 3).ok());
  EXPECT_EQ(out[2], 3u);
}

TEST(ByteReaderTest, SizeInflatedRequestIsRejectedBeforeCopy) {
  // A parser that believed a hostile length field would ask for far
  // more than remains; the reader must refuse up front.
  std::vector<uint8_t> buf = Bytes({1, 2, 3, 4});
  ByteReader reader(buf);
  std::vector<uint8_t> sink(8, 0xEE);
  Status s = reader.ReadBytes(sink.data(), 1u << 20);
  EXPECT_TRUE(s.IsIoError()) << s;
  EXPECT_EQ(reader.offset(), 0u);
  // The sink was never touched.
  EXPECT_EQ(sink[0], 0xEEu);
  EXPECT_TRUE(reader.ReadSpan(5).status().IsIoError());
  EXPECT_TRUE(reader.Skip(5).IsIoError());
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(ByteReaderTest, SkipAndSpanAdvanceExactly) {
  std::vector<uint8_t> buf = Bytes({10, 11, 12, 13, 14});
  ByteReader reader(buf);
  ASSERT_TRUE(reader.Skip(2).ok());
  auto span = reader.ReadSpan(2);
  ASSERT_TRUE(span.ok()) << span.status();
  EXPECT_EQ((*span)[0], 12u);
  EXPECT_EQ((*span)[1], 13u);
  EXPECT_EQ(reader.remaining(), 1u);
}

TEST(ByteReaderTest, ZeroLengthOpsOnEmptyInputSucceed) {
  ByteReader reader(nullptr, 0);
  EXPECT_TRUE(reader.Skip(0).ok());
  EXPECT_TRUE(reader.ReadBytes(nullptr, 0).ok());
  EXPECT_TRUE(reader.ReadSpan(0).ok());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_TRUE(reader.ReadU32().status().IsIoError());
}

TEST(ByteReaderTest, ErrorMessageNamesOffsetAndShortfall) {
  std::vector<uint8_t> buf = Bytes({1, 2, 3, 4, 5});
  ByteReader reader(buf);
  ASSERT_TRUE(reader.ReadU32().ok());
  Status s = reader.ReadU32().status();
  ASSERT_TRUE(s.IsIoError());
  EXPECT_NE(s.message().find("offset 4"), std::string::npos) << s;
  EXPECT_NE(s.message().find("have 1"), std::string::npos) << s;
}

}  // namespace
}  // namespace crowd::server
