// Durability tests for the crowdevald journal + snapshot stack:
// round-trips, torn-write repair at every byte offset of the last
// record, corruption detection, and the end-to-end property that a
// recovered Service produces bit-identical assessments.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "gtest/gtest.h"
#include "rng/random.h"
#include "server/binary_io.h"
#include "server/journal.h"
#include "server/protocol.h"
#include "server/service.h"
#include "server/snapshot.h"

namespace crowd::server {
namespace {

namespace fs = std::filesystem;

// A fresh, empty scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/crowd_persist_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<JournalRecord> MakeRecords(size_t count) {
  std::vector<JournalRecord> records;
  for (size_t i = 0; i < count; ++i) {
    JournalRecord r;
    r.seq = i + 1;
    r.worker = i % 3;
    r.task = i % 5;
    r.value = static_cast<data::Response>(i % 2);
    records.push_back(r);
  }
  return records;
}

// Writes a journal with `records` and closes it (File closes on
// destruction, so the on-disk image is complete when this returns).
void WriteJournal(const std::string& path,
                  const std::vector<JournalRecord>& records) {
  JournalHeader header;
  header.num_workers = 3;
  header.num_tasks = 5;
  header.arity = 2;
  header.base_seq = 0;
  auto journal = Journal::Create(path, header);
  ASSERT_TRUE(journal.ok()) << journal.status();
  for (const JournalRecord& r : records) {
    ASSERT_TRUE(journal->Append(r).ok());
  }
}

TEST(JournalTest, RoundTrip) {
  std::string dir = ScratchDir("journal_roundtrip");
  std::string path = dir + "/journal.crwj";
  std::vector<JournalRecord> records = MakeRecords(5);
  WriteJournal(path, records);

  auto recovered = Journal::Open(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->truncated_bytes, 0u);
  EXPECT_EQ(recovered->header.num_workers, 3u);
  EXPECT_EQ(recovered->header.num_tasks, 5u);
  EXPECT_EQ(recovered->header.base_seq, 0u);
  ASSERT_EQ(recovered->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(recovered->records[i].seq, records[i].seq);
    EXPECT_EQ(recovered->records[i].worker, records[i].worker);
    EXPECT_EQ(recovered->records[i].task, records[i].task);
    EXPECT_EQ(recovered->records[i].value, records[i].value);
  }
  EXPECT_EQ(recovered->journal.next_seq(), records.size() + 1);
}

// The acceptance-critical torn-write test: truncate the file at every
// byte offset inside the last record. Recovery must always come back
// with exactly the first K-1 records and repair the file in place.
TEST(JournalTest, TornTailRepairedAtEveryByteOffset) {
  std::string dir = ScratchDir("journal_torn");
  std::string full = dir + "/full.crwj";
  constexpr size_t kRecords = 6;
  WriteJournal(full, MakeRecords(kRecords));
  const uint64_t last_start =
      Journal::kHeaderBytes + (kRecords - 1) * Journal::kRecordBytes;
  const uint64_t full_size = last_start + Journal::kRecordBytes;
  ASSERT_EQ(fs::file_size(full), full_size);

  for (uint64_t cut = last_start; cut < full_size; ++cut) {
    std::string path = dir + "/torn.crwj";
    fs::copy_file(full, path, fs::copy_options::overwrite_existing);
    fs::resize_file(path, cut);

    auto recovered = Journal::Open(path);
    ASSERT_TRUE(recovered.ok())
        << "cut at " << cut << ": " << recovered.status();
    EXPECT_EQ(recovered->records.size(), kRecords - 1) << "cut " << cut;
    EXPECT_EQ(recovered->truncated_bytes, cut - last_start)
        << "cut " << cut;
    EXPECT_EQ(recovered->journal.next_seq(), kRecords) << "cut " << cut;
    // Repaired in place: the file now ends at the last valid record...
    recovered = Journal::Open(path);  // close + reopen
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(fs::file_size(path), last_start) << "cut " << cut;
    // ...and a second recovery is clean.
    EXPECT_EQ(recovered->truncated_bytes, 0u) << "cut " << cut;
    EXPECT_EQ(recovered->records.size(), kRecords - 1) << "cut " << cut;
  }
}

TEST(JournalTest, CorruptRecordDropsItAndEverythingAfter) {
  std::string dir = ScratchDir("journal_corrupt");
  std::string path = dir + "/journal.crwj";
  WriteJournal(path, MakeRecords(6));

  // Flip one payload byte of record 3 (0-indexed 2).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(Journal::kHeaderBytes +
                                        2 * Journal::kRecordBytes + 9));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto recovered = Journal::Open(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->records.size(), 2u);
  EXPECT_EQ(recovered->truncated_bytes, 4 * Journal::kRecordBytes);
}

TEST(JournalTest, GarbageHeaderIsAnIoError) {
  std::string dir = ScratchDir("journal_badheader");
  std::string path = dir + "/journal.crwj";
  std::ofstream(path, std::ios::binary) << "not a journal at all";
  EXPECT_TRUE(Journal::Open(path).status().IsIoError());
}

TEST(SnapshotTest, RoundTrip) {
  std::string dir = ScratchDir("snapshot_roundtrip");
  data::ResponseMatrix matrix(4, 6, 2);
  ASSERT_TRUE(matrix.Set(0, 0, 1).ok());
  ASSERT_TRUE(matrix.Set(1, 3, 0).ok());
  ASSERT_TRUE(matrix.Set(3, 5, 1).ok());

  auto bytes = WriteSnapshot(dir, matrix, 42);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto loaded = LoadSnapshot(SnapshotPath(dir, 42));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_workers, 4u);
  EXPECT_EQ(loaded->num_tasks, 6u);
  EXPECT_EQ(loaded->applied_seq, 42u);

  auto back = loaded->ToMatrix();
  ASSERT_TRUE(back.ok()) << back.status();
  for (data::WorkerId w = 0; w < 4; ++w) {
    for (data::TaskId t = 0; t < 6; ++t) {
      EXPECT_EQ(back->Get(w, t), matrix.Get(w, t)) << w << "," << t;
    }
  }
}

TEST(SnapshotTest, CorruptPayloadDetected) {
  std::string dir = ScratchDir("snapshot_corrupt");
  data::ResponseMatrix matrix(3, 3, 2);
  ASSERT_TRUE(matrix.Set(1, 1, 1).ok());
  ASSERT_TRUE(WriteSnapshot(dir, matrix, 7).ok());
  std::string path = SnapshotPath(dir, 7);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);  // last payload byte
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::end);
    byte = static_cast<char>(byte ^ 0x01);
    f.write(&byte, 1);
  }
  EXPECT_TRUE(LoadSnapshot(path).status().IsIoError());
}

// The snapshot counterpart of the journal torn-write test: truncating
// a valid image at EVERY byte offset must yield a clean IoError —
// never a crash, an over-read, or a silently wrong matrix. Runs on
// the in-memory codec so ~100 offsets stay fast.
TEST(SnapshotTest, TruncationAtEveryByteOffsetFailsCleanly) {
  data::ResponseMatrix matrix(3, 4, 3);
  ASSERT_TRUE(matrix.Set(0, 0, 2).ok());
  ASSERT_TRUE(matrix.Set(2, 3, 1).ok());
  const std::vector<uint8_t> full = EncodeSnapshot(matrix, 99);

  for (size_t cut = 0; cut < full.size(); ++cut) {
    auto decoded = DecodeSnapshot(full.data(), cut, "truncated");
    EXPECT_TRUE(decoded.status().IsIoError())
        << "cut at " << cut << ": " << decoded.status();
  }
  auto intact = DecodeSnapshot(full.data(), full.size(), "intact");
  ASSERT_TRUE(intact.ok()) << intact.status();
  EXPECT_EQ(intact->applied_seq, 99u);
}

// Flip every byte of a valid image (all 8 bits at once per offset):
// decoding must either fail with a Status or — when the flip lands in
// a byte the format legitimately lets vary — produce a self-consistent
// snapshot that still round-trips. It must never crash.
TEST(SnapshotTest, ByteFlipAtEveryOffsetIsCrashFreeAndConsistent) {
  data::ResponseMatrix matrix(2, 5, 2);
  ASSERT_TRUE(matrix.Set(0, 1, 1).ok());
  ASSERT_TRUE(matrix.Set(1, 4, 0).ok());
  const std::vector<uint8_t> full = EncodeSnapshot(matrix, 7);

  int survivors = 0;
  for (size_t i = 0; i < full.size(); ++i) {
    std::vector<uint8_t> mutated = full;
    mutated[i] ^= 0xFF;
    auto decoded = DecodeSnapshot(mutated.data(), mutated.size(), "flip");
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsIoError()) << "offset " << i;
      continue;
    }
    // Accepted despite the flip (e.g. a bit of applied_seq): the
    // decode must still be internally consistent and re-encode to the
    // exact bytes it was parsed from.
    ++survivors;
    auto back = decoded->ToMatrix();
    ASSERT_TRUE(back.ok()) << "offset " << i << ": " << back.status();
    EXPECT_EQ(EncodeSnapshot(*back, decoded->applied_seq), mutated)
        << "offset " << i;
  }
  // The CRC covers the payload and the header is fully validated, so
  // the only flips that can survive are the 8 bytes of applied_seq
  // (by design not CRC-protected: the seq is cross-checked against
  // the filename) and the low byte of arity when the flip lands
  // inside [2, 32767] with every cell still in range — both decode to
  // self-consistent snapshots. Anything more means detection
  // regressed.
  EXPECT_LE(survivors, 9) << "corruption detection regressed";
}

// Regression for the u64 overflow found by fuzz_snapshot (corpus seed
// `overflow-dims`): num_workers = num_tasks = 2^31 makes
// nw * nt * 2 wrap to 0, which the pre-ByteReader loader accepted and
// then asked resize() for 2^62 cells.
TEST(SnapshotTest, OverflowedDimensionsRejectedBeforeAllocation) {
  data::ResponseMatrix matrix(1, 1, 2);
  std::vector<uint8_t> bytes = EncodeSnapshot(matrix, 1);
  auto put_u32 = [&bytes](size_t off, uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      bytes[off + static_cast<size_t>(b)] =
          static_cast<uint8_t>(v >> (8 * b));
    }
  };
  put_u32(8, 0x80000000u);   // num_workers = 2^31
  put_u32(12, 0x80000000u);  // num_tasks   = 2^31
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size(), "overflow");
  EXPECT_TRUE(decoded.status().IsIoError()) << decoded.status();
}

// A header that declares more payload than the file holds (and the
// converse) must be caught by the size check, not the CRC — the CRC
// would read out of bounds first.
TEST(SnapshotTest, SizeInflatedPayloadRejected) {
  data::ResponseMatrix matrix(2, 2, 2);
  const std::vector<uint8_t> full = EncodeSnapshot(matrix, 5);

  std::vector<uint8_t> inflated = full;
  inflated[36] = 0xFF;  // payload_bytes (u64 at offset 32) huge
  EXPECT_TRUE(DecodeSnapshot(inflated.data(), inflated.size(), "inflated")
                  .status()
                  .IsIoError());

  std::vector<uint8_t> trailing = full;
  trailing.push_back(0);  // extra byte after the declared payload
  EXPECT_TRUE(DecodeSnapshot(trailing.data(), trailing.size(), "trailing")
                  .status()
                  .IsIoError());
}

// Cells outside [-1, arity) and nonzero reserved header bytes are
// rejected at decode time so every accepted snapshot converts to a
// ResponseMatrix and re-encodes byte-identically (the fuzz round-trip
// contract).
TEST(SnapshotTest, OutOfRangeCellAndReservedFieldRejected) {
  data::ResponseMatrix matrix(2, 2, 2);
  std::vector<uint8_t> bytes = EncodeSnapshot(matrix, 5);
  const size_t payload_start = bytes.size() - 4 * sizeof(int16_t);

  std::vector<uint8_t> bad_cell = bytes;
  bad_cell[payload_start] = 0x02;  // cell value 2 >= arity 2
  // Recompute the CRC (u32 at offset 40) so only the range check can
  // reject it.
  uint32_t crc = Crc32(bad_cell.data() + payload_start,
                       bad_cell.size() - payload_start);
  for (int b = 0; b < 4; ++b) {
    bad_cell[40 + static_cast<size_t>(b)] =
        static_cast<uint8_t>(crc >> (8 * b));
  }
  EXPECT_TRUE(DecodeSnapshot(bad_cell.data(), bad_cell.size(), "cell")
                  .status()
                  .IsIoError());

  std::vector<uint8_t> reserved = bytes;
  reserved[20] = 1;  // reserved u32 at offset 20 must be zero
  EXPECT_TRUE(DecodeSnapshot(reserved.data(), reserved.size(), "reserved")
                  .status()
                  .IsIoError());
}

TEST(SnapshotTest, ListAndRemove) {
  std::string dir = ScratchDir("snapshot_list");
  data::ResponseMatrix matrix(2, 2, 2);
  for (uint64_t seq : {3u, 10u, 7u}) {
    ASSERT_TRUE(WriteSnapshot(dir, matrix, seq).ok());
  }
  auto seqs = ListSnapshotSeqs(dir);
  ASSERT_TRUE(seqs.ok()) << seqs.status();
  EXPECT_EQ(*seqs, (std::vector<uint64_t>{10, 7, 3}));

  ASSERT_TRUE(RemoveSnapshotsBefore(dir, 10).ok());
  seqs = ListSnapshotSeqs(dir);
  ASSERT_TRUE(seqs.ok());
  EXPECT_EQ(*seqs, (std::vector<uint64_t>{10}));
}

// ---------------------------------------------------------------------
// Service-level recovery properties.

std::string EvalAllJson(Service* service) {
  core::MWorkerResult result = service->EvaluateAll();
  return MWorkerResultBodyJson(result);
}

// The headline property: stream random responses through a durable
// service (crossing several automatic snapshot/compaction boundaries),
// "crash" (drop the handle without any final snapshot), recover, and
// require the recovered assessments to be bit-identical both to the
// pre-crash service and to an in-memory service fed the same stream.
TEST(ServiceRecoveryTest, RandomStreamsRecoverBitIdentical) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::string dir =
        ScratchDir("service_roundtrip_" + std::to_string(seed));
    constexpr size_t kWorkers = 10;
    constexpr size_t kTasks = 40;
    constexpr size_t kResponses = 300;

    ServiceOptions durable;
    durable.num_workers = kWorkers;
    durable.num_tasks = kTasks;
    durable.data_dir = dir + "/state";
    durable.snapshot_every = 71;  // several compactions per stream
    auto service = Service::Open(durable);
    ASSERT_TRUE(service.ok()) << service.status();

    ServiceOptions in_memory;
    in_memory.num_workers = kWorkers;
    in_memory.num_tasks = kTasks;
    auto mirror = Service::Open(in_memory);
    ASSERT_TRUE(mirror.ok()) << mirror.status();

    Random rng(seed);
    for (size_t i = 0; i < kResponses; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      ASSERT_TRUE((*service)->Ingest(w, t, v).ok());
      ASSERT_TRUE((*mirror)->Ingest(w, t, v).ok());
    }
    const std::string expected = EvalAllJson(service->get());
    const uint64_t expected_seq = (*service)->last_seq();
    EXPECT_GT((*service)->stats().snapshots_written, 1u);
    service->reset();  // "crash": no final snapshot

    ServiceOptions recover;
    recover.data_dir = dir + "/state";  // dims come from disk
    auto recovered = Service::Open(recover);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ((*recovered)->num_workers(), kWorkers);
    EXPECT_EQ((*recovered)->num_tasks(), kTasks);
    EXPECT_EQ((*recovered)->last_seq(), expected_seq);
    EXPECT_EQ(EvalAllJson(recovered->get()), expected) << "seed " << seed;
    EXPECT_EQ(EvalAllJson(mirror->get()), expected) << "seed " << seed;
  }
}

// A torn final record must roll the service back to exactly the state
// before that response — compared bit-for-bit against a fresh
// evaluator fed the surviving prefix.
TEST(ServiceRecoveryTest, TornJournalTailRollsBackOneResponse) {
  std::string dir = ScratchDir("service_torn");
  constexpr size_t kWorkers = 6;
  constexpr size_t kTasks = 10;

  ServiceOptions durable;
  durable.num_workers = kWorkers;
  durable.num_tasks = kTasks;
  durable.data_dir = dir + "/state";
  auto service = Service::Open(durable);
  ASSERT_TRUE(service.ok()) << service.status();

  // Distinct cells so every response is accepted and journaled.
  std::vector<JournalRecord> stream;
  Random rng(99);
  for (size_t i = 0; i < 40; ++i) {
    JournalRecord r;
    r.worker = i % kWorkers;
    r.task = (i / kWorkers) % kTasks;
    r.value = static_cast<data::Response>(rng.UniformInt(2));
    stream.push_back(r);
    ASSERT_TRUE((*service)->Ingest(r.worker, r.task, r.value).ok());
  }
  ASSERT_EQ((*service)->last_seq(), stream.size());
  service->reset();

  std::string journal = dir + "/state/journal.crwj";
  fs::resize_file(journal, fs::file_size(journal) - 7);  // mid-record

  ServiceOptions recover;
  recover.data_dir = dir + "/state";
  auto recovered = Service::Open(recover);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->last_seq(), stream.size() - 1);
  EXPECT_EQ((*recovered)->stats().recovery_truncated_bytes,
            Journal::kRecordBytes - 7);
  EXPECT_EQ((*recovered)->stats().recovered_records, stream.size() - 1);

  core::IncrementalEvaluator prefix(kWorkers, kTasks);
  for (size_t i = 0; i + 1 < stream.size(); ++i) {
    ASSERT_TRUE(
        prefix.AddResponse(stream[i].worker, stream[i].task, stream[i].value)
            .ok());
  }
  core::MWorkerResult want = prefix.EvaluateAll();
  EXPECT_EQ(EvalAllJson(recovered->get()), MWorkerResultBodyJson(want));
}

TEST(ServiceRecoveryTest, StaleTempFilesSweptOnOpen) {
  std::string dir = ScratchDir("service_tmp_sweep");
  ServiceOptions options;
  options.num_workers = 3;
  options.num_tasks = 3;
  options.data_dir = dir + "/state";
  { auto service = Service::Open(options); ASSERT_TRUE(service.ok()); }

  // Simulate a crash mid-snapshot / mid-compaction.
  std::ofstream(dir + "/state/journal.crwj.tmp") << "partial";
  std::ofstream(dir + "/state/snapshot-00000000000000000009.crws.tmp")
      << "partial";
  auto service = Service::Open(options);
  ASSERT_TRUE(service.ok()) << service.status();
  EXPECT_FALSE(fs::exists(dir + "/state/journal.crwj.tmp"));
  EXPECT_FALSE(
      fs::exists(dir + "/state/snapshot-00000000000000000009.crws.tmp"));
}

TEST(ServiceRecoveryTest, ConflictingDimensionsRejected) {
  std::string dir = ScratchDir("service_dim_conflict");
  ServiceOptions options;
  options.num_workers = 5;
  options.num_tasks = 8;
  options.data_dir = dir + "/state";
  { auto service = Service::Open(options); ASSERT_TRUE(service.ok()); }

  options.num_workers = 6;
  EXPECT_TRUE(Service::Open(options).status().IsInvalid());
}

TEST(ServiceRecoveryTest, FreshServiceRequiresDimensions) {
  ServiceOptions options;  // no dims, no data_dir
  EXPECT_TRUE(Service::Open(options).status().IsInvalid());
}

}  // namespace
}  // namespace crowd::server
