// Tests for the CrowdEvaluator façade: id remapping through the
// spammer filter, decision helpers, and the k-ary entry point.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/evaluator.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd::core {
namespace {

TEST(Evaluator, DecisionHelpers) {
  std::vector<WorkerAssessment> assessments(3);
  assessments[0].worker = 10;
  assessments[0].interval = {0.01, 0.09, 0.9};  // Confidently good.
  assessments[1].worker = 11;
  assessments[1].interval = {0.31, 0.44, 0.9};  // Confidently bad.
  assessments[2].worker = 12;
  assessments[2].interval = {0.05, 0.35, 0.9};  // Undecided.

  auto good = CrowdEvaluator::WorkersConfidentlyBelow(assessments, 0.25);
  auto bad = CrowdEvaluator::WorkersConfidentlyAbove(assessments, 0.25);
  EXPECT_EQ(good, (std::vector<data::WorkerId>{10}));
  EXPECT_EQ(bad, (std::vector<data::WorkerId>{11}));
}

TEST(Evaluator, SpammerFilterRemapsToOriginalIds) {
  Random rng(3);
  sim::BinarySimConfig config;
  config.num_workers = 10;
  config.num_tasks = 400;
  config.pool.error_rates = {0.1};
  auto sim = sim::SimulateBinary(config, &rng);
  // Make workers 2 and 6 coin-flip spammers.
  for (data::WorkerId w : {data::WorkerId{2}, data::WorkerId{6}}) {
    for (data::TaskId t = 0; t < 400; ++t) {
      sim.dataset.mutable_responses()
          ->Set(w, t, rng.Bernoulli(0.5) ? 1 : 0)
          .AbortIfNotOk();
    }
  }

  CrowdEvaluator::Config config_with_filter;
  config_with_filter.prefilter_spammers = true;
  CrowdEvaluator evaluator(config_with_filter);
  auto report = evaluator.EvaluateBinary(sim.dataset.responses());
  ASSERT_TRUE(report.ok()) << report.status();

  // Spammers are reported under their original ids and are absent
  // from the assessments.
  EXPECT_EQ(report->removed_spammers,
            (std::vector<data::WorkerId>{2, 6}));
  for (const auto& a : report->assessments) {
    EXPECT_NE(a.worker, 2u);
    EXPECT_NE(a.worker, 6u);
    // Remapped ids point to the real good workers.
    EXPECT_NEAR(a.error_rate, 0.1, 0.08) << "worker " << a.worker;
  }
  EXPECT_EQ(report->assessments.size(), 8u);

  // The pruned workers appear in `failures` with a FilteredOut status,
  // so assessments ∪ failures is total over the input pool.
  size_t filtered = 0;
  std::vector<bool> covered(10, false);
  for (const auto& a : report->assessments) covered[a.worker] = true;
  for (const auto& [worker, status] : report->failures) {
    EXPECT_FALSE(covered[worker]) << "worker " << worker
                                  << " reported twice";
    covered[worker] = true;
    if (status.IsFilteredOut()) {
      ++filtered;
      EXPECT_TRUE(worker == 2u || worker == 6u) << "worker " << worker;
    }
  }
  EXPECT_EQ(filtered, 2u);
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool c) { return c; }));
  // Failures are sorted by worker id.
  EXPECT_TRUE(std::is_sorted(
      report->failures.begin(), report->failures.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(Evaluator, WithoutFilterMatchesMWorkerEvaluate) {
  Random rng(5);
  sim::BinarySimConfig config;
  config.num_workers = 5;
  config.num_tasks = 200;
  auto sim = sim::SimulateBinary(config, &rng);
  CrowdEvaluator evaluator;
  auto report = evaluator.EvaluateBinary(sim.dataset.responses());
  ASSERT_TRUE(report.ok());
  auto direct =
      MWorkerEvaluate(sim.dataset.responses(), evaluator.config().binary);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(report->assessments.size(), direct->assessments.size());
  for (size_t i = 0; i < report->assessments.size(); ++i) {
    EXPECT_EQ(report->assessments[i].worker,
              direct->assessments[i].worker);
    EXPECT_DOUBLE_EQ(report->assessments[i].error_rate,
                     direct->assessments[i].error_rate);
  }
  EXPECT_TRUE(report->removed_spammers.empty());
}

TEST(Evaluator, KaryTripleEntryPoint) {
  Random rng(7);
  sim::KarySimConfig config;
  config.arity = 3;
  config.num_tasks = 1000;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  CrowdEvaluator::Config evaluator_config;
  evaluator_config.kary.confidence = 0.9;
  CrowdEvaluator evaluator(evaluator_config);
  auto result =
      evaluator.EvaluateKaryTriple(sim->dataset.responses(), 0, 1, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(result->workers[w].intervals.size(), 3u);
    EXPECT_DOUBLE_EQ(result->workers[w].intervals[0][0].confidence, 0.9);
  }
}

}  // namespace
}  // namespace crowd::core
