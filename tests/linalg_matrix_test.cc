// Unit tests for the dense Matrix/Vector types.

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/matrix_functions.h"

namespace crowd::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.IsSquare());
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_TRUE(m.IsSquare());
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

TEST(Matrix, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  Matrix d = Matrix::Diagonal({2, 3});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, TransposedAndRowsColumns) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_EQ(m.Row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.Column(2), (Vector{3, 6}));
}

TEST(Matrix, SwapRowsAndColumns) {
  Matrix m{{1, 2}, {3, 4}};
  m.SwapRows(0, 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 3);
  m.SwapColumns(0, 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 4);
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 12);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4);
  Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6);
}

TEST(Matrix, Product) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
  // Identity is neutral.
  EXPECT_TRUE((a * Matrix::Identity(2)).ApproxEquals(a));
  EXPECT_TRUE((Matrix::Identity(2) * a).ApproxEquals(a));
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Vector y = a * Vector{1, 1};
  EXPECT_DOUBLE_EQ(y[0], 3);
  EXPECT_DOUBLE_EQ(y[1], 7);
}

TEST(Matrix, NormsAndComparison) {
  Matrix a{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
  Matrix b = a;
  b(0, 0) += 1e-12;
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-15));
  EXPECT_NEAR(a.MaxAbsDiff(b), 1e-12, 1e-15);
}

TEST(Matrix, Symmetry) {
  Matrix sym{{1, 2}, {2, 5}};
  EXPECT_TRUE(sym.IsSymmetric());
  Matrix asym{{1, 2}, {3, 5}};
  EXPECT_FALSE(asym.IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(VectorOps, DotNormL1) {
  Vector a = {1, 2, 2};
  Vector b = {2, 0, 1};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm(a), 3.0);
  EXPECT_DOUBLE_EQ(L1Norm({-1, 2, -3}), 6.0);
}

TEST(VectorOps, Normalize) {
  Vector v = {3, 4};
  EXPECT_TRUE(Normalize(&v));
  EXPECT_DOUBLE_EQ(v[0], 0.6);
  EXPECT_DOUBLE_EQ(v[1], 0.8);
  Vector zero = {0, 0};
  EXPECT_FALSE(Normalize(&zero));
}

TEST(MatrixFunctions, RowSumsAndNormalization) {
  Matrix m{{2, 2}, {1, 3}};
  Vector sums = RowSums(m);
  EXPECT_DOUBLE_EQ(sums[0], 4.0);
  ASSERT_TRUE(NormalizeRowsToSumOne(&m).ok());
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.75);

  Matrix zero_row{{0, 0}, {1, 1}};
  EXPECT_TRUE(NormalizeRowsToSumOne(&zero_row).IsNumericalError());
}

TEST(MatrixFunctions, ClampEntries) {
  Matrix m{{-1, 0.5}, {2, 0.7}};
  ClampEntries(&m, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.7);
}

}  // namespace
}  // namespace crowd::linalg
