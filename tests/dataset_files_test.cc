// Tests against the *checked-in* dataset CSVs in data/: they must
// load, match the documented shapes, and round-trip through the full
// pipeline — guarding both the file format and the bundled artifacts.
// Skipped gracefully when the files are absent (e.g. out-of-tree test
// runs); CTest sets CROWDEVAL_DATA_DIR to the source data directory.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/evaluator.h"
#include "core/kary_m_worker.h"
#include "data/dataset_io.h"
#include "util/csv.h"

namespace crowd {
namespace {

std::string DataDir() {
  const char* env = std::getenv("CROWDEVAL_DATA_DIR");
  return env != nullptr && env[0] != '\0' ? env : "data";
}

bool HaveData() {
  return ReadFileToString(DataDir() + "/IC.responses.csv").ok();
}

Result<data::Dataset> LoadBundled(const std::string& name) {
  return data::LoadDatasetCsv(name, DataDir() + "/" + name +
                                        ".responses.csv",
                              DataDir() + "/" + name + ".gold.csv");
}

TEST(DatasetFiles, AllBundledDatasetsLoadWithDocumentedShapes) {
  if (!HaveData()) GTEST_SKIP() << "data/ not present";
  struct Expectation {
    const char* name;
    size_t workers;
    size_t tasks;
    int arity;
  };
  const Expectation expectations[] = {
      {"IC", 19, 48, 2},    {"RTE", 164, 800, 2}, {"TEM", 76, 462, 2},
      {"MOOC", 60, 300, 3}, {"WSD", 35, 350, 2},  {"WS", 40, 200, 2},
  };
  for (const auto& e : expectations) {
    auto dataset = LoadBundled(e.name);
    ASSERT_TRUE(dataset.ok()) << e.name << ": " << dataset.status();
    EXPECT_EQ(dataset->responses().num_workers(), e.workers) << e.name;
    EXPECT_EQ(dataset->responses().num_tasks(), e.tasks) << e.name;
    EXPECT_EQ(dataset->responses().arity(), e.arity) << e.name;
    EXPECT_EQ(dataset->GoldCount(), e.tasks) << e.name;
  }
}

TEST(DatasetFiles, BundledIcEvaluatesEndToEnd) {
  if (!HaveData()) GTEST_SKIP() << "data/ not present";
  auto dataset = LoadBundled("IC");
  ASSERT_TRUE(dataset.ok());
  core::CrowdEvaluator::Config config;
  config.prefilter_spammers = true;
  config.binary.confidence = 0.9;
  auto report =
      core::CrowdEvaluator(config).EvaluateBinary(dataset->responses());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->assessments.size(), 12u);
  size_t covered = 0, scored = 0;
  for (const auto& a : report->assessments) {
    auto proxy = dataset->ProxyErrorRate(a.worker);
    if (!proxy.ok()) continue;
    ++scored;
    if (a.interval.Contains(*proxy)) ++covered;
  }
  ASSERT_GT(scored, 10u);
  // On a single fixed dataset binomial noise is coarse; require
  // majority coverage at 90% nominal.
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(scored),
            0.7);
}

TEST(DatasetFiles, BundledMoocSupportsKaryEvaluation) {
  if (!HaveData()) GTEST_SKIP() << "data/ not present";
  auto dataset = LoadBundled("MOOC");
  ASSERT_TRUE(dataset.ok());
  // A single 140-common-task triple is too noisy for a fixed-seed
  // point assertion (the intervals say so themselves); fuse all the
  // qualifying triples of worker 0 instead.
  core::KaryMWorkerOptions options;
  options.min_pair_overlap = 60;
  auto fused =
      core::KaryEvaluateWorker(dataset->responses(), 0, options);
  ASSERT_TRUE(fused.ok()) << fused.status();
  EXPECT_GE(fused->num_triples, 2u);
  auto proxy = dataset->ProxyResponseMatrix(0);
  ASSERT_TRUE(proxy.ok());
  // Diagonal entries: the fused estimates land in the right region.
  for (int z = 0; z < 3; ++z) {
    if (proxy->row_counts[z] < 20) continue;
    EXPECT_NEAR(fused->p(z, z), proxy->probabilities[z][z], 0.35)
        << "class " << z;
  }
}

}  // namespace
}  // namespace crowd
