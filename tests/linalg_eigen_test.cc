// Tests for the eigensolvers: Jacobi (symmetric), Hessenberg
// reduction, Francis QR eigenvalues, general real eigendecomposition
// and the matrix square roots built on them.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "linalg/eigen.h"
#include "linalg/francis_qr.h"
#include "linalg/hessenberg.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix_functions.h"
#include "rng/random.h"

namespace crowd::linalg {
namespace {

Matrix RandomSymmetric(size_t n, Random* rng) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      m(i, j) = m(j, i) = rng->Uniform(-1, 1);
    }
  }
  return m;
}

TEST(Jacobi, DiagonalMatrixIsItsOwnSpectrum) {
  auto eig = JacobiEigen(Matrix::Diagonal({3, 1, 2}));
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3, 1e-12);
  EXPECT_NEAR(eig->values[1], 2, 1e-12);
  EXPECT_NEAR(eig->values[2], 1, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  auto eig = JacobiEigen(Matrix{{2, 1}, {1, 2}});
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig->vectors(0, 0)), std::sqrt(0.5), 1e-10);
}

TEST(Jacobi, RejectsAsymmetric) {
  EXPECT_TRUE(JacobiEigen(Matrix{{1, 2}, {0, 1}}).status().IsInvalid());
  EXPECT_TRUE(JacobiEigen(Matrix(2, 3)).status().IsInvalid());
}

// Property: V D V^T reconstructs A; V is orthogonal.
TEST(JacobiProperty, Reconstruction) {
  Random rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 2 + rng.UniformInt(7);
    Matrix a = RandomSymmetric(n, &rng);
    auto eig = JacobiEigen(a);
    ASSERT_TRUE(eig.ok());
    Matrix reconstructed = eig->vectors * Matrix::Diagonal(eig->values) *
                           eig->vectors.Transposed();
    EXPECT_TRUE(reconstructed.ApproxEquals(a, 1e-9));
    EXPECT_TRUE((eig->vectors * eig->vectors.Transposed())
                    .ApproxEquals(Matrix::Identity(n), 1e-9));
    // Sorted descending.
    EXPECT_TRUE(std::is_sorted(eig->values.rbegin(), eig->values.rend()));
  }
}

TEST(Hessenberg, ShapeAndSimilarity) {
  Random rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng.UniformInt(7);
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Uniform(-1, 1);
    }
    auto hess = ReduceToHessenberg(a);
    ASSERT_TRUE(hess.ok());
    EXPECT_TRUE(IsUpperHessenberg(hess->h, 1e-10));
    // Q orthogonal and A = Q H Q^T.
    EXPECT_TRUE((hess->q * hess->q.Transposed())
                    .ApproxEquals(Matrix::Identity(n), 1e-9));
    Matrix back = hess->q * hess->h * hess->q.Transposed();
    EXPECT_TRUE(back.ApproxEquals(a, 1e-9));
  }
}

TEST(FrancisQr, KnownEigenvalues) {
  // Companion-style matrix with eigenvalues 1, 2, 3.
  Matrix a{{6, -11, 6}, {1, 0, 0}, {0, 1, 0}};
  auto values = GeneralEigenvalues(a);
  ASSERT_TRUE(values.ok()) << values.status();
  std::vector<double> reals;
  for (auto v : *values) {
    EXPECT_NEAR(v.imag(), 0.0, 1e-8);
    reals.push_back(v.real());
  }
  std::sort(reals.begin(), reals.end());
  EXPECT_NEAR(reals[0], 1.0, 1e-8);
  EXPECT_NEAR(reals[1], 2.0, 1e-8);
  EXPECT_NEAR(reals[2], 3.0, 1e-8);
}

TEST(FrancisQr, ComplexPairDetected) {
  // Rotation by 90 degrees: eigenvalues +-i.
  Matrix rotation{{0, -1}, {1, 0}};
  auto values = GeneralEigenvalues(rotation);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR(std::abs((*values)[0].imag()), 1.0, 1e-10);
  EXPECT_NEAR((*values)[0].real(), 0.0, 1e-10);
}

// Property: eigenvalue sums/products match trace/determinant.
TEST(FrancisQrProperty, TraceAndDeterminant) {
  Random rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 2 + rng.UniformInt(6);
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Uniform(-1, 1);
    }
    auto values = GeneralEigenvalues(a);
    ASSERT_TRUE(values.ok());
    std::complex<double> sum = 0.0, product = 1.0;
    for (auto v : *values) {
      sum += v;
      product *= v;
    }
    double trace = 0.0;
    for (size_t i = 0; i < n; ++i) trace += a(i, i);
    EXPECT_NEAR(sum.real(), trace, 1e-7);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
    EXPECT_NEAR(product.real(), *Determinant(a), 1e-6);
  }
}

TEST(EigenGeneral, RecoversPlantedDecomposition) {
  // A = E D E^{-1} with known distinct spectrum.
  Matrix e{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}};
  Matrix d = Matrix::Diagonal({5, 2, 1});
  Matrix a = e * d * *Inverse(e);
  auto eig = EigenGeneralReal(a);
  ASSERT_TRUE(eig.ok()) << eig.status();
  EXPECT_NEAR(eig->values[0], 5, 1e-8);
  EXPECT_NEAR(eig->values[1], 2, 1e-8);
  EXPECT_NEAR(eig->values[2], 1, 1e-8);
  EXPECT_LT(eig->max_residual, 1e-8);
  // Reconstruction through the (non-orthogonal) eigenvectors.
  Matrix back =
      eig->vectors * Matrix::Diagonal(eig->values) * *Inverse(eig->vectors);
  EXPECT_TRUE(back.ApproxEquals(a, 1e-7));
}

// Stress: a 30x30 matrix with a planted well-separated real spectrum.
TEST(EigenGeneral, LargePlantedSpectrumStress) {
  Random rng(41);
  const size_t n = 30;
  Matrix basis(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) basis(i, j) = rng.Uniform(-1, 1);
    basis(i, i) += 4.0;  // Keep the basis well-conditioned.
  }
  Vector spectrum(n);
  for (size_t i = 0; i < n; ++i) {
    spectrum[i] = static_cast<double>(n - i);  // 30, 29, ..., 1.
  }
  Matrix a = basis * Matrix::Diagonal(spectrum) * *Inverse(basis);
  auto eig = EigenGeneralReal(a);
  ASSERT_TRUE(eig.ok()) << eig.status();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(eig->values[i], spectrum[i], 1e-6) << i;
  }
  EXPECT_LT(eig->max_residual, 1e-5);
}

TEST(EigenGeneral, RejectsComplexSpectrum) {
  Matrix rotation{{0, -1}, {1, 0}};
  EXPECT_TRUE(EigenGeneralReal(rotation).status().IsNumericalError());
}

// Property: similar-to-PSD matrices (the k-ary method's case) round-
// trip through PrincipalSqrt: S*S ~= A.
TEST(SqrtProperty, PrincipalSqrtSquares) {
  Random rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng.UniformInt(4);
    // Build A = B^T diag(positive) B with invertible B: real positive
    // spectrum, not symmetric in general.
    Matrix b(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b(i, j) = rng.Uniform(-1, 1);
      b(i, i) += 2.5;
    }
    Vector diag(n);
    for (double& v : diag) v = rng.Uniform(0.2, 3.0);
    Matrix a = *Inverse(b) * Matrix::Diagonal(diag) * b;
    auto sqrt = PrincipalSqrt(a);
    ASSERT_TRUE(sqrt.ok()) << sqrt.status();
    EXPECT_TRUE((*sqrt * *sqrt).ApproxEquals(a, 1e-6))
        << "trial " << trial;
  }
}

TEST(Sqrt, SymmetricSqrtSquares) {
  Random rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng.UniformInt(5);
    Matrix b = RandomSymmetric(n, &rng);
    Matrix a = b * b;  // Symmetric PSD.
    auto sqrt = SymmetricSqrt(a);
    ASSERT_TRUE(sqrt.ok());
    EXPECT_TRUE((*sqrt * *sqrt).ApproxEquals(a, 1e-8));
  }
}

TEST(Sqrt, StronglyNegativeSpectrumRejected) {
  EXPECT_TRUE(
      PrincipalSqrt(Matrix::Diagonal({1.0, -0.9})).status()
          .IsNumericalError());
  // Mildly negative eigenvalues are clamped, not fatal.
  auto clamped = PrincipalSqrt(Matrix::Diagonal({1.0, -1e-12}));
  EXPECT_TRUE(clamped.ok());
}

}  // namespace
}  // namespace crowd::linalg
