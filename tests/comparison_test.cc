// Paper-level comparative claims as tests: the headline relationships
// between methods that the evaluation figures report must hold on
// fresh simulated data.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/old_technique.h"
#include "core/m_worker.h"
#include "experiments/runner.h"
#include "rng/random.h"
#include "sim/simulator.h"
#include "stats/normal.h"

namespace crowd {
namespace {

// Figure 1's claim: at equal n, m and c, the new technique's intervals
// are substantially tighter than the old technique's. (Sizes compare
// intervals clipped to the admissible [0, 1/2] domain, as in the
// bench.)
TEST(Comparison, NewIntervalsBeatOldIntervals) {
  const double confidence = 0.5;
  const double z = *stats::TwoSidedZ(confidence);
  double new_total = 0.0, old_total = 0.0;
  size_t new_count = 0, old_count = 0;

  experiments::RepeatTrials(80, 0xF161, [&](int, Random* rng) {
    sim::BinarySimConfig config;
    config.num_workers = 3;
    config.num_tasks = 100;
    auto sim = sim::SimulateBinary(config, rng);

    core::BinaryOptions options;
    options.confidence = confidence;
    auto new_result =
        core::MWorkerEvaluate(sim.dataset.responses(), options);
    if (new_result.ok()) {
      for (const auto& a : new_result->assessments) {
        double lo = std::max(0.0, a.error_rate - z * a.deviation);
        double hi = std::min(0.5, a.error_rate + z * a.deviation);
        new_total += std::max(0.0, hi - lo);
        ++new_count;
      }
    }
    baselines::OldTechniqueOptions old_options;
    old_options.confidence = confidence;
    auto old_result = baselines::OldMWorkerEvaluate(
        sim.dataset.responses(), old_options);
    if (old_result.ok()) {
      for (const auto& a : *old_result) {
        old_total += a.interval.size();
        ++old_count;
      }
    }
  });
  ASSERT_GT(new_count, 100u);
  ASSERT_GT(old_count, 100u);
  double new_mean = new_total / static_cast<double>(new_count);
  double old_mean = old_total / static_cast<double>(old_count);
  // The paper reports ~40% reduction at c = 0.5, m = 3, n = 100.
  EXPECT_LT(new_mean, 0.75 * old_mean)
      << "new " << new_mean << " vs old " << old_mean;
}

// Figure 2(b)'s claim: interval size shrinks as density grows, for
// fixed n, m, c.
TEST(Comparison, IntervalSizeDecreasesWithDensity) {
  auto mean_dev_at = [&](double density) {
    double total = 0.0;
    int count = 0;
    experiments::RepeatTrials(40, 0xF162, [&](int, Random* rng) {
      sim::BinarySimConfig config;
      config.num_workers = 7;
      config.num_tasks = 300;
      config.assignment = sim::AssignmentConfig::Iid(density);
      auto sim = sim::SimulateBinary(config, rng);
      core::BinaryOptions options;
      auto result =
          core::MWorkerEvaluate(sim.dataset.responses(), options);
      if (!result.ok()) return;
      for (const auto& a : result->assessments) {
        total += a.deviation;
        ++count;
      }
    });
    return total / count;
  };
  double at_half = mean_dev_at(0.5);
  double at_three_quarters = mean_dev_at(0.75);
  double at_full = mean_dev_at(1.0);
  EXPECT_GT(at_half, at_three_quarters);
  EXPECT_GT(at_three_quarters, at_full);
}

// Both techniques contain the truth at roughly their nominal rate on
// iid data — the old technique is valid, just wasteful; that waste is
// the paper's point.
TEST(Comparison, BothTechniquesCoverOnIidData) {
  const double confidence = 0.8;
  size_t new_covered = 0, new_total = 0;
  size_t old_covered = 0, old_total = 0;
  experiments::RepeatTrials(120, 0xF163, [&](int, Random* rng) {
    sim::BinarySimConfig config;
    config.num_workers = 5;
    config.num_tasks = 200;
    auto sim = sim::SimulateBinary(config, rng);

    core::BinaryOptions options;
    options.confidence = confidence;
    auto new_result =
        core::MWorkerEvaluate(sim.dataset.responses(), options);
    if (new_result.ok()) {
      for (const auto& a : new_result->assessments) {
        ++new_total;
        if (a.interval.Contains(sim.true_error_rates[a.worker])) {
          ++new_covered;
        }
      }
    }
    baselines::OldTechniqueOptions old_options;
    old_options.confidence = confidence;
    auto old_result = baselines::OldMWorkerEvaluate(
        sim.dataset.responses(), old_options);
    if (old_result.ok()) {
      for (const auto& a : *old_result) {
        ++old_total;
        if (a.interval.Contains(sim.true_error_rates[a.worker])) {
          ++old_covered;
        }
      }
    }
  });
  double new_rate =
      static_cast<double>(new_covered) / static_cast<double>(new_total);
  double old_rate =
      static_cast<double>(old_covered) / static_cast<double>(old_total);
  EXPECT_NEAR(new_rate, confidence, 0.08);
  EXPECT_GE(old_rate, confidence - 0.05);  // Old may over-cover.
}

}  // namespace
}  // namespace crowd
