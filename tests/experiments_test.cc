// Tests for the experiment harness: metrics, series/table rendering,
// gnuplot output and the repetition driver.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "experiments/metrics.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "experiments/series.h"
#include "util/csv.h"

namespace crowd::experiments {
namespace {

TEST(Metrics, AccuracyAndSize) {
  IntervalScore score;
  score.Add({0.1, 0.3, 0.9}, 0.2);   // Covered, size 0.2.
  score.Add({0.1, 0.3, 0.9}, 0.35);  // Missed.
  score.Add({0.0, 0.4, 0.9}, 0.4);   // Covered (boundary), size 0.4.
  EXPECT_EQ(score.total(), 3u);
  EXPECT_EQ(score.covered(), 2u);
  EXPECT_NEAR(score.Accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.MeanSize(), (0.2 + 0.2 + 0.4) / 3.0, 1e-12);
}

TEST(Metrics, MergeAndEmpty) {
  IntervalScore empty;
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.MeanSize(), 0.0);
  IntervalScore a, b;
  a.Add({0.0, 1.0, 0.9}, 0.5);
  b.Add({0.0, 0.1, 0.9}, 0.5);
  a.Merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.covered(), 1u);
}

TEST(Series, AddPointGroupsByLabel) {
  Figure figure;
  figure.AddPoint("a", 1.0, 2.0);
  figure.AddPoint("b", 1.0, 3.0);
  figure.AddPoint("a", 2.0, 4.0);
  ASSERT_EQ(figure.series.size(), 2u);
  EXPECT_EQ(figure.series[0].points.size(), 2u);
  EXPECT_EQ(figure.series[1].points.size(), 1u);
}

TEST(Series, RenderTableAlignsAndFillsGaps) {
  Figure figure;
  figure.name = "t";
  figure.title = "test";
  figure.x_label = "x";
  figure.AddPoint("alpha", 1.0, 0.5);
  figure.AddPoint("alpha", 2.0, 0.25);
  figure.AddPoint("beta", 2.0, 0.75);
  std::string table = RenderTable(figure, 2);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("0.25"), std::string::npos);
  // Missing (beta, x=1) renders as "-".
  EXPECT_NE(table.find("-"), std::string::npos);
}

TEST(Series, GnuplotFileStructure) {
  Figure figure;
  figure.name = "gnuplot_test_fig";
  figure.title = "gp";
  figure.AddPoint("s1", 0.5, 1.5);
  figure.AddPoint("s1", 1.0, 2.5);
  std::string dir = testing::TempDir();
  ASSERT_TRUE(WriteGnuplotData(figure, dir).ok());
  auto contents = ReadFileToString(dir + "/gnuplot_test_fig.dat");
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("# x\ts1"), std::string::npos);
  EXPECT_NE(contents->find("0.5\t1.5"), std::string::npos);
  std::remove((dir + "/gnuplot_test_fig.dat").c_str());
}

TEST(Runner, ResolveRepsPrecedence) {
  unsetenv("CROWDEVAL_REPS");
  EXPECT_EQ(ResolveReps(42), 42);
  setenv("CROWDEVAL_REPS", "7", 1);
  EXPECT_EQ(ResolveReps(42), 7);
  const char* argv[] = {"prog", "--reps=13"};
  EXPECT_EQ(ResolveReps(42, 2, argv), 13);
  setenv("CROWDEVAL_REPS", "bogus", 1);
  EXPECT_EQ(ResolveReps(42), 42);
  unsetenv("CROWDEVAL_REPS");
}

TEST(Runner, RepeatTrialsIsDeterministicAndForksStreams) {
  std::vector<uint64_t> first_run, second_run;
  RepeatTrials(5, 99, [&](int, Random* rng) {
    first_run.push_back(rng->NextUint64());
  });
  RepeatTrials(5, 99, [&](int, Random* rng) {
    second_run.push_back(rng->NextUint64());
  });
  EXPECT_EQ(first_run, second_run);
  std::set<uint64_t> distinct(first_run.begin(), first_run.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Runner, Grids) {
  auto confidences = ConfidenceGrid();
  ASSERT_EQ(confidences.size(), 19u);
  EXPECT_NEAR(confidences.front(), 0.05, 1e-12);
  EXPECT_NEAR(confidences.back(), 0.95, 1e-12);
  auto densities = DensityGrid();
  ASSERT_EQ(densities.size(), 10u);
  EXPECT_NEAR(densities.front(), 0.5, 1e-12);
  EXPECT_NEAR(densities.back(), 0.95, 1e-12);
}

}  // namespace
}  // namespace crowd::experiments
