// Tests for the crowdevald wire protocol: command parsing and the JSON
// serializers shared by the daemon and the CLI's --format=json mode.

#include "server/protocol.h"

#include <cstdlib>
#include <limits>

#include "gtest/gtest.h"
#include "util/status.h"

namespace crowd::server {
namespace {

TEST(ParseCommandTest, RespHappyPath) {
  auto cmd = ParseCommand("RESP 3 17 1");
  ASSERT_TRUE(cmd.ok()) << cmd.status();
  EXPECT_EQ(cmd->type, CommandType::kResp);
  EXPECT_EQ(cmd->worker, 3u);
  EXPECT_EQ(cmd->task, 17u);
  EXPECT_EQ(cmd->value, 1);
}

TEST(ParseCommandTest, ToleratesTabsRepeatedSpacesAndTrailingCr) {
  auto cmd = ParseCommand("RESP\t3  17 \t 0\r");
  ASSERT_TRUE(cmd.ok()) << cmd.status();
  EXPECT_EQ(cmd->type, CommandType::kResp);
  EXPECT_EQ(cmd->worker, 3u);
  EXPECT_EQ(cmd->task, 17u);
  EXPECT_EQ(cmd->value, 0);
}

TEST(ParseCommandTest, RespArityChecked) {
  EXPECT_TRUE(ParseCommand("RESP 1 2").status().IsInvalid());
  EXPECT_TRUE(ParseCommand("RESP 1 2 3 4").status().IsInvalid());
}

TEST(ParseCommandTest, RespRejectsNonNumericAndNegativeIds) {
  EXPECT_TRUE(ParseCommand("RESP x 2 1").status().IsInvalid());
  EXPECT_TRUE(ParseCommand("RESP 1 -2 1").status().IsInvalid());
  EXPECT_TRUE(ParseCommand("RESP 1 2 yes").status().IsInvalid());
}

TEST(ParseCommandTest, Eval) {
  auto cmd = ParseCommand("EVAL 7");
  ASSERT_TRUE(cmd.ok()) << cmd.status();
  EXPECT_EQ(cmd->type, CommandType::kEval);
  EXPECT_EQ(cmd->worker, 7u);
  EXPECT_TRUE(ParseCommand("EVAL").status().IsInvalid());
  EXPECT_TRUE(ParseCommand("EVAL 1 2").status().IsInvalid());
}

TEST(ParseCommandTest, NullaryVerbs) {
  struct Case {
    const char* line;
    CommandType type;
  };
  const Case cases[] = {
      {"EVAL_ALL", CommandType::kEvalAll},
      {"SPAMMERS", CommandType::kSpammers},
      {"STATS", CommandType::kStats},
      {"SNAPSHOT", CommandType::kSnapshot},
      {"QUIT", CommandType::kQuit},
  };
  for (const Case& c : cases) {
    auto cmd = ParseCommand(c.line);
    ASSERT_TRUE(cmd.ok()) << c.line << ": " << cmd.status();
    EXPECT_EQ(cmd->type, c.type) << c.line;
    // Arguments on a nullary verb are an error, not silently dropped.
    auto with_arg = ParseCommand(std::string(c.line) + " 1");
    EXPECT_TRUE(with_arg.status().IsInvalid()) << c.line;
  }
}

TEST(ParseCommandTest, UnknownAndEmptyCommands) {
  EXPECT_TRUE(ParseCommand("FLUSH").status().IsInvalid());
  EXPECT_TRUE(ParseCommand("").status().IsInvalid());
  EXPECT_TRUE(ParseCommand("   \t ").status().IsInvalid());
  EXPECT_TRUE(ParseCommand("resp 1 2 1").status().IsInvalid())
      << "verbs are case-sensitive";
}

TEST(JsonEscapeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonDoubleTest, RoundTripsBitExactly) {
  const double values[] = {0.0,
                           1.0 / 3.0,
                           0.1,
                           -2.5e-17,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -123.456789012345678};
  for (double v : values) {
    std::string text = JsonDouble(v);
    double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, v) << text;
  }
}

TEST(JsonDoubleTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(-std::numeric_limits<double>::infinity()), "null");
}

TEST(SerializerTest, AssessmentJsonShape) {
  core::WorkerAssessment a;
  a.worker = 4;
  a.error_rate = 0.25;
  a.deviation = 0.5;
  a.interval = {0.1, 0.4, 0.95};
  a.num_triples = 6;
  a.any_clamped = true;
  EXPECT_EQ(AssessmentJson(a),
            "{\"worker\":4,\"error_rate\":0.25,\"deviation\":0.5,"
            "\"interval\":{\"lo\":0.10000000000000001,"
            "\"hi\":0.40000000000000002,\"confidence\":0.94999999999999996},"
            "\"num_triples\":6,\"any_clamped\":true}");
}

TEST(SerializerTest, FailureAndErrorJsonEscapeMessages) {
  Status st = Status::Invalid("bad \"input\"");
  std::string failure = FailureJson(2, st);
  EXPECT_NE(failure.find("\"worker\":2"), std::string::npos);
  EXPECT_NE(failure.find("bad \\\"input\\\""), std::string::npos);
  EXPECT_NE(failure.find(StatusCodeToString(st.code())),
            std::string::npos);

  std::string error = ErrorJson(st);
  EXPECT_NE(error.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(error.find("bad \\\"input\\\""), std::string::npos);
}

TEST(SerializerTest, MWorkerResultBodyJson) {
  core::MWorkerResult result;
  core::WorkerAssessment a;
  a.worker = 0;
  a.error_rate = 0.5;
  a.deviation = 0.0;
  a.interval = {0.25, 0.75, 0.9};
  a.num_triples = 1;
  result.assessments.push_back(a);
  result.failures.emplace_back(1, Status::InsufficientData("no triple"));
  std::string body = MWorkerResultBodyJson(result);
  EXPECT_EQ(body.find("\"assessments\":[{"), 0u);
  EXPECT_NE(body.find("\"failures\":[{\"worker\":1,"), std::string::npos);
  EXPECT_NE(body.find("no triple"), std::string::npos);
}

}  // namespace
}  // namespace crowd::server
