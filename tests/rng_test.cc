// Unit tests for the deterministic PRNG and variate transforms.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/random.h"

namespace crowd {
namespace {

TEST(SplitMix, KnownSequence) {
  // Reference values for SplitMix64 seeded with 0 (from the public
  // reference implementation).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.Next(), 0x06c45d188009454fULL);
}

TEST(Random, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  bool any_different = false;
  Random a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.NextUint64() != c.NextUint64()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rng(1);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Random, UniformMeanIsCentered) {
  Random rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.01);
}

TEST(Random, UniformIntBoundsAndUniformity) {
  Random rng(3);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, n / 7, 500);
  }
}

TEST(Random, BernoulliRate) {
  Random rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, CategoricalRespectsWeights) {
  Random rng(5);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Random, GaussianMoments) {
  Random rng(6);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Random, BinomialMatchesMean) {
  Random rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Binomial(50, 0.2);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Random, ShuffleIsAPermutation) {
  Random rng(8);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = items;
  rng.Shuffle(&items);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Random, ForkedStreamsDiffer) {
  Random parent(9);
  Random child1 = parent.Fork();
  Random child2 = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace crowd
