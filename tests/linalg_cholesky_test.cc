// Tests for the Cholesky decomposition.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "rng/random.h"

namespace crowd::linalg {
namespace {

Matrix RandomSpd(size_t n, Random* rng) {
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b(i, j) = rng->Uniform(-1, 1);
  }
  Matrix a = b * b.Transposed();
  for (size_t i = 0; i < n; ++i) a(i, i) += 0.5;
  return a;
}

TEST(Cholesky, KnownFactorization) {
  // A = [[4, 2], [2, 5]] has L = [[2, 0], [1, 2]].
  auto chol = CholeskyDecomposition::Compute(Matrix{{4, 2}, {2, 5}});
  ASSERT_TRUE(chol.ok()) << chol.status();
  EXPECT_NEAR(chol->L()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol->L()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol->L()(1, 1), 2.0, 1e-12);
  EXPECT_NEAR(chol->L()(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(chol->Determinant(), 16.0, 1e-10);
}

TEST(Cholesky, RejectsInvalidInputs) {
  EXPECT_TRUE(CholeskyDecomposition::Compute(Matrix(2, 3)).status()
                  .IsInvalid());
  EXPECT_TRUE(
      CholeskyDecomposition::Compute(Matrix{{1, 2}, {0, 1}}).status()
          .IsInvalid());
  // Symmetric but indefinite.
  EXPECT_TRUE(
      CholeskyDecomposition::Compute(Matrix{{1, 2}, {2, 1}}).status()
          .IsNumericalError());
  EXPECT_FALSE(IsPositiveDefinite(Matrix{{-1}}));
  EXPECT_TRUE(IsPositiveDefinite(Matrix{{2, 0}, {0, 3}}));
}

TEST(CholeskyProperty, FactorReconstructsAndSolves) {
  Random rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 1 + rng.UniformInt(8);
    Matrix a = RandomSpd(n, &rng);
    auto chol = CholeskyDecomposition::Compute(a);
    ASSERT_TRUE(chol.ok()) << chol.status();
    EXPECT_TRUE((chol->L() * chol->L().Transposed()).ApproxEquals(a, 1e-9));

    Vector x_true(n);
    for (double& v : x_true) v = rng.Uniform(-2, 2);
    Vector b = a * x_true;
    auto x = chol->Solve(b);
    ASSERT_TRUE(x.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
    }
  }
}

TEST(CholeskyProperty, AgreesWithLu) {
  Random rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 2 + rng.UniformInt(6);
    Matrix a = RandomSpd(n, &rng);
    auto chol_inverse = CholeskyDecomposition::Compute(a)->Inverse();
    auto lu_inverse = Inverse(a);
    ASSERT_TRUE(chol_inverse.ok());
    ASSERT_TRUE(lu_inverse.ok());
    EXPECT_TRUE(chol_inverse->ApproxEquals(*lu_inverse, 1e-8));
    EXPECT_NEAR(CholeskyDecomposition::Compute(a)->Determinant(),
                *Determinant(a),
                1e-8 * std::fabs(*Determinant(a)) + 1e-12);
  }
}

}  // namespace
}  // namespace crowd::linalg
