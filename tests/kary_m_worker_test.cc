// Tests for the m-worker k-ary extension: fused estimates must track
// planted matrices, fusing must tighten intervals relative to single
// triples, coverage must stay near nominal despite the documented
// independence approximation, and degenerate pools fail cleanly.

#include <gtest/gtest.h>

#include <cmath>

#include "core/kary_m_worker.h"
#include "experiments/runner.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd::core {
namespace {

TEST(KaryMWorker, FusedEstimateTracksPlantedMatrix) {
  Random rng(3);
  sim::KarySimConfig config;
  config.arity = 3;
  config.num_workers = 9;
  config.num_tasks = 2000;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  KaryMWorkerOptions options;
  auto assessment =
      KaryEvaluateWorker(sim->dataset.responses(), 0, options);
  ASSERT_TRUE(assessment.ok()) << assessment.status();
  EXPECT_EQ(assessment->num_triples, 4u);  // 8 peers -> 4 pairs.
  EXPECT_LT(assessment->p.MaxAbsDiff(sim->true_matrices[0]), 0.08);
}

TEST(KaryMWorker, MoreTriplesTightenIntervals) {
  Random rng(5);
  sim::KarySimConfig config;
  config.arity = 3;
  config.num_workers = 9;
  config.num_tasks = 1200;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  KaryMWorkerOptions one_triple;
  one_triple.max_triples = 1;
  KaryMWorkerOptions many_triples;
  auto narrow = KaryEvaluateWorker(sim->dataset.responses(), 0,
                                   many_triples);
  auto wide = KaryEvaluateWorker(sim->dataset.responses(), 0, one_triple);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  double narrow_total = 0.0, wide_total = 0.0;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      narrow_total += narrow->intervals[r][c].size();
      wide_total += wide->intervals[r][c].size();
    }
  }
  EXPECT_LT(narrow_total, wide_total);
}

TEST(KaryMWorker, CoverageNearNominalDespiteIndependenceApprox) {
  size_t covered = 0, total = 0;
  experiments::RepeatTrials(25, 0x6A5, [&](int, Random* rng) {
    sim::KarySimConfig config;
    config.arity = 3;
    config.num_workers = 7;
    config.num_tasks = 900;
    auto sim = sim::SimulateKary(config, rng);
    ASSERT_TRUE(sim.ok());
    KaryMWorkerOptions options;
    options.kary.confidence = 0.9;
    auto assessment =
        KaryEvaluateWorker(sim->dataset.responses(), 0, options);
    if (!assessment.ok()) return;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        ++total;
        if (assessment->intervals[r][c].Contains(
                sim->true_matrices[0](r, c))) {
          ++covered;
        }
      }
    }
  });
  ASSERT_GT(total, 150u);
  double coverage =
      static_cast<double>(covered) / static_cast<double>(total);
  // The independence approximation costs a few points of coverage at
  // most; anything below ~0.8 at nominal 0.9 would flag a real defect.
  EXPECT_GT(coverage, 0.80) << coverage;
}

TEST(KaryMWorker, RowStochasticOutput) {
  Random rng(7);
  sim::KarySimConfig config;
  config.arity = 4;
  config.num_workers = 7;
  config.num_tasks = 1500;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  auto assessment = KaryEvaluateWorker(sim->dataset.responses(), 2, {});
  ASSERT_TRUE(assessment.ok()) << assessment.status();
  for (size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_GE(assessment->p(r, c), 0.0);
      sum += assessment->p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(KaryMWorker, InsufficientOverlapFailsCleanly) {
  // Three workers with disjoint task ranges.
  data::ResponseMatrix m(3, 30, 3);
  for (data::TaskId t = 0; t < 10; ++t) m.Set(0, t, 0).AbortIfNotOk();
  for (data::TaskId t = 10; t < 20; ++t) m.Set(1, t, 1).AbortIfNotOk();
  for (data::TaskId t = 20; t < 30; ++t) m.Set(2, t, 2).AbortIfNotOk();
  auto assessment = KaryEvaluateWorker(m, 0, {});
  EXPECT_TRUE(assessment.status().IsInsufficientData());
  EXPECT_TRUE(KaryEvaluateWorker(m, 9, {}).status().IsInvalid());

  auto all = KaryEvaluateAllWorkers(m, {});
  EXPECT_TRUE(all.assessments.empty());
  EXPECT_EQ(all.failures.size(), 3u);
}

TEST(KaryMWorker, EvaluateAllCoversThePool) {
  Random rng(9);
  sim::KarySimConfig config;
  config.arity = 2;
  config.num_workers = 8;
  config.num_tasks = 600;
  auto sim = sim::SimulateKary(config, &rng);
  ASSERT_TRUE(sim.ok());
  auto all = KaryEvaluateAllWorkers(sim->dataset.responses(), {});
  EXPECT_EQ(all.assessments.size() + all.failures.size(), 8u);
  EXPECT_GE(all.assessments.size(), 6u);
  for (const auto& a : all.assessments) {
    EXPECT_LT(a.p.MaxAbsDiff(sim->true_matrices[a.worker]), 0.15)
        << "worker " << a.worker;
  }
}

}  // namespace
}  // namespace crowd::core
