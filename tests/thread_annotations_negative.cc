// Compile-only fixture for the thread-safety negative-compile test
// (scripts/negative_compile_check.sh, ctest name
// `thread_annotations_negative_compile`).
//
// Without CROWD_NEGATIVE_COMPILE this TU is a correctly locked
// program and must compile cleanly under `-Wthread-safety -Werror`.
// With -DCROWD_NEGATIVE_COMPILE it contains exactly the bug class the
// analysis exists for — reading a CROWD_GUARDED_BY field without the
// lock, the same mistake as deleting an annotation or a MutexLock in
// Service/ThreadPool — and compilation MUST fail. The harness asserts
// both directions, proving the annotations are load-bearing rather
// than decorative.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    crowd::util::MutexLock lock(mu_);
    balance_ += amount;
  }

  int Read() {
#if defined(CROWD_NEGATIVE_COMPILE)
    // Unguarded access to a guarded field: -Wthread-safety rejects
    // this line; the harness requires that it does.
    return balance_;
#else
    crowd::util::MutexLock lock(mu_);
    return balance_;
#endif
  }

  void TransferLocked(int amount) CROWD_REQUIRES(mu_) {
    balance_ += amount;
  }

  void Transfer(int amount) {
#if defined(CROWD_NEGATIVE_COMPILE_REQUIRES)
    // Calling a CROWD_REQUIRES function without the capability —
    // the ThreadPool/Service *_Locked discipline — must also fail.
    TransferLocked(amount);
#else
    crowd::util::MutexLock lock(mu_);
    TransferLocked(amount);
#endif
  }

 private:
  crowd::util::Mutex mu_;
  int balance_ CROWD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.Transfer(2);
  return account.Read() == 3 ? 0 : 1;
}
