// Tests for the binary core: agreement clamping, the triangulation
// formula and its Lemma 2 gradient (checked against finite
// differences), the Lemma 3 covariances (checked against brute-force
// simulation) and Algorithm A1.

#include <gtest/gtest.h>

#include <cmath>

#include "core/agreement.h"
#include "core/spammer_filter.h"
#include "core/three_worker.h"
#include "core/triangulation.h"
#include "rng/random.h"
#include "sim/simulator.h"
#include "stats/descriptive.h"

namespace crowd::core {
namespace {

TEST(Agreement, RateAndClamping) {
  data::ResponseMatrix m(2, 10, 2);
  for (data::TaskId t = 0; t < 10; ++t) {
    m.Set(0, t, 0).AbortIfNotOk();
    m.Set(1, t, t < 3 ? 0 : 1).AbortIfNotOk();  // Agree on 3/10.
  }
  data::OverlapIndex overlap(m);
  auto pair = ComputePairAgreement(overlap, 0, 1, 0.01);
  ASSERT_TRUE(pair.ok());
  EXPECT_DOUBLE_EQ(pair->q_raw, 0.3);
  EXPECT_DOUBLE_EQ(pair->q, 0.51);  // Clamped to 0.5 + margin.
  EXPECT_TRUE(pair->clamped);
  EXPECT_EQ(pair->common, 10u);
}

TEST(Agreement, NoOverlapIsError) {
  data::ResponseMatrix m(2, 2, 2);
  m.Set(0, 0, 0).AbortIfNotOk();
  m.Set(1, 1, 0).AbortIfNotOk();
  data::OverlapIndex overlap(m);
  EXPECT_TRUE(ComputePairAgreement(overlap, 0, 1, 0.01)
                  .status()
                  .IsInsufficientData());
}

TEST(Triangulation, ExactOnConsistentRates) {
  // Plant p = (0.1, 0.2, 0.3); q_ij = p_i p_j + (1-p_i)(1-p_j).
  const double p1 = 0.1, p2 = 0.2, p3 = 0.3;
  auto q = [](double a, double b) { return a * b + (1 - a) * (1 - b); };
  auto result = TriangulateErrorRate(q(p1, p2), q(p1, p3), q(p2, p3));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(*result, p1, 1e-12);
  // Rotated roles recover the other workers.
  EXPECT_NEAR(*TriangulateErrorRate(q(p1, p2), q(p2, p3), q(p1, p3)), p2,
              1e-12);
  EXPECT_NEAR(*TriangulateErrorRate(q(p1, p3), q(p2, p3), q(p1, p2)), p3,
              1e-12);
}

TEST(Triangulation, PerfectWorkersHaveZeroError) {
  auto result = TriangulateErrorRate(1.0, 1.0, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(*result, 0.0, 1e-12);
}

TEST(Triangulation, DomainEnforced) {
  EXPECT_TRUE(TriangulateErrorRate(0.5, 0.8, 0.8).status()
                  .IsNumericalError());
  EXPECT_TRUE(TriangulateErrorRate(0.8, 0.4, 0.8).status()
                  .IsNumericalError());
  EXPECT_TRUE(TriangulateErrorRate(0.8, 0.8, 1.01).status()
                  .IsNumericalError());
}

// Lemma 2's closed-form gradient against central finite differences.
TEST(TriangulationProperty, GradientMatchesFiniteDifferences) {
  Random rng(3);
  const double h = 1e-6;
  for (int trial = 0; trial < 200; ++trial) {
    double a = rng.Uniform(0.55, 0.95);
    double b = rng.Uniform(0.55, 0.95);
    double c = rng.Uniform(0.55, 0.95);
    auto grad = TriangulateWithGradient(a, b, c);
    ASSERT_TRUE(grad.ok());
    auto fd = [&](double da, double db, double dc) {
      return (*TriangulateErrorRate(a + da, b + db, c + dc) -
              *TriangulateErrorRate(a - da, b - db, c - dc)) /
             (2 * h);
    };
    EXPECT_NEAR(grad->d_q_ij, fd(h, 0, 0), 1e-5);
    EXPECT_NEAR(grad->d_q_ik, fd(0, h, 0), 1e-5);
    EXPECT_NEAR(grad->d_q_jk, fd(0, 0, h), 1e-5);
    // Signs per Lemma 2.
    EXPECT_LT(grad->d_q_ij, 0.0);
    EXPECT_LT(grad->d_q_ik, 0.0);
    EXPECT_GT(grad->d_q_jk, 0.0);
  }
}

// Lemma 3's covariance formulas against brute-force simulation: draw
// many datasets with fixed truth assignments, measure the empirical
// covariance of the Q estimators and compare.
TEST(TripleCovarianceProperty, MatchesBruteForceSimulation) {
  const double p[3] = {0.15, 0.25, 0.3};
  const size_t n = 60;
  Random rng(17);

  // Fixed non-regular attempt pattern.
  std::vector<std::array<bool, 3>> attempts(n);
  for (size_t t = 0; t < n; ++t) {
    for (int w = 0; w < 3; ++w) attempts[t][w] = rng.Bernoulli(0.8);
  }

  const int trials = 60000;
  double sum_q[3] = {0, 0, 0};
  double sum_qq[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  // Pair order: (0,1), (0,2), (1,2).
  const int pair_a[3] = {0, 0, 1};
  const int pair_b[3] = {1, 2, 2};

  for (int trial = 0; trial < trials; ++trial) {
    int agree[3] = {0, 0, 0};
    int common[3] = {0, 0, 0};
    for (size_t t = 0; t < n; ++t) {
      int truth = 0;
      int response[3];
      for (int w = 0; w < 3; ++w) {
        response[w] = rng.Bernoulli(p[w]) ? 1 - truth : truth;
      }
      for (int pair = 0; pair < 3; ++pair) {
        if (attempts[t][pair_a[pair]] && attempts[t][pair_b[pair]]) {
          ++common[pair];
          if (response[pair_a[pair]] == response[pair_b[pair]]) {
            ++agree[pair];
          }
        }
      }
    }
    double q[3];
    for (int pair = 0; pair < 3; ++pair) {
      q[pair] = static_cast<double>(agree[pair]) / common[pair];
      sum_q[pair] += q[pair];
    }
    for (int x = 0; x < 3; ++x) {
      for (int y = 0; y < 3; ++y) sum_qq[x][y] += q[x] * q[y];
    }
  }

  // Build the analytic covariance via the production code path.
  data::ResponseMatrix attempted(3, n, 2);
  for (size_t t = 0; t < n; ++t) {
    for (int w = 0; w < 3; ++w) {
      if (attempts[t][w]) attempted.Set(w, t, 0).AbortIfNotOk();
    }
  }
  data::OverlapIndex overlap(attempted);
  TripleEstimate estimate;
  estimate.i = 0;
  estimate.j1 = 1;
  estimate.j2 = 2;
  auto fill = [&](PairAgreement* pa, int a, int b, double q_true) {
    pa->a = a;
    pa->b = b;
    pa->common = overlap.CommonCount(a, b);
    pa->q_raw = pa->q = q_true;
  };
  auto q_of = [&](int a, int b) {
    return p[a] * p[b] + (1 - p[a]) * (1 - p[b]);
  };
  fill(&estimate.q_i_j1, 0, 1, q_of(0, 1));
  fill(&estimate.q_i_j2, 0, 2, q_of(0, 2));
  fill(&estimate.q_j1_j2, 1, 2, q_of(1, 2));
  estimate.c_triple = overlap.TripleCommonCount(0, 1, 2);
  estimate.p = p[0];
  estimate.p_j1 = p[1];
  estimate.p_j2 = p[2];
  linalg::Matrix analytic = TripleCovariance(estimate);

  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      double empirical = sum_qq[x][y] / trials -
                         (sum_q[x] / trials) * (sum_q[y] / trials);
      // Covariances are O(1e-3); require agreement within ~12%.
      EXPECT_NEAR(empirical, analytic(x, y),
                  0.12 * std::fabs(analytic(x, y)) + 2e-5)
          << "entry (" << x << "," << y << ")";
    }
  }
}

TEST(ThreeWorker, RequiresBinaryAndThreeWorkers) {
  BinaryOptions options;
  EXPECT_TRUE(ThreeWorkerEvaluate(data::ResponseMatrix(3, 4, 3), options)
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(ThreeWorkerEvaluate(data::ResponseMatrix(4, 4, 2), options)
                  .status()
                  .IsInvalid());
}

TEST(ThreeWorker, LemmaOneIsSpecialCaseOfLemmaThree) {
  // On regular data, the Lemma 3 covariance with c_ij = c_ijk = n must
  // reduce to Lemma 1's 1/n forms. The variance diagonal additionally
  // carries the (documented) Agresti correction of O(1/n^2), so it is
  // compared at that tolerance; the cross terms are exact.
  TripleEstimate t;
  t.q_i_j1 = {0, 1, 100, 0.8, 0.8, false};
  t.q_i_j2 = {0, 2, 100, 0.75, 0.75, false};
  t.q_j1_j2 = {1, 2, 100, 0.7, 0.7, false};
  t.c_triple = 100;
  t.p = 0.1;
  t.p_j1 = 0.2;
  t.p_j2 = 0.3;
  linalg::Matrix cov = TripleCovariance(t);
  EXPECT_NEAR(cov(0, 0), 0.8 * 0.2 / 100, 3.0 / (100.0 * 100.0));
  EXPECT_NEAR(cov(1, 1), 0.75 * 0.25 / 100, 3.0 / (100.0 * 100.0));
  EXPECT_NEAR(cov(2, 2), 0.7 * 0.3 / 100, 3.0 / (100.0 * 100.0));
  EXPECT_NEAR(cov(0, 1), 0.1 * 0.9 * (2 * 0.7 - 1) / 100, 1e-15);
  EXPECT_NEAR(cov(0, 2), 0.2 * 0.8 * (2 * 0.75 - 1) / 100, 1e-15);
  EXPECT_NEAR(cov(1, 2), 0.3 * 0.7 * (2 * 0.8 - 1) / 100, 1e-15);
}

TEST(SpammerFilter, RemovesPlantedSpammers) {
  Random rng(21);
  sim::BinarySimConfig config;
  config.num_workers = 12;
  config.num_tasks = 400;
  config.pool.error_rates = {0.1, 0.15};
  config.pool.spammer_fraction = 0.3;
  config.pool.spammer_lo = 0.48;
  config.pool.spammer_hi = 0.52;
  auto sim = sim::SimulateBinary(config, &rng);

  auto filtered = FilterSpammers(sim.dataset.responses());
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->kept.size() + filtered->removed.size(), 12u);
  for (auto w : filtered->removed) {
    EXPECT_GT(sim.true_error_rates[w], 0.4) << "worker " << w;
  }
  for (auto w : filtered->kept) {
    EXPECT_LT(sim.true_error_rates[w], 0.4) << "worker " << w;
  }
  EXPECT_EQ(filtered->filtered.num_workers(), filtered->kept.size());
}

TEST(SpammerFilter, ThresholdRespected) {
  data::ResponseMatrix m(3, 2, 2);
  for (data::TaskId t = 0; t < 2; ++t) {
    m.Set(0, t, 0).AbortIfNotOk();
    m.Set(1, t, 0).AbortIfNotOk();
    m.Set(2, t, 1).AbortIfNotOk();  // Always disagrees.
  }
  SpammerFilterOptions options;
  options.threshold = 0.4;
  auto filtered = FilterSpammers(m, options);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->removed, (std::vector<data::WorkerId>{2}));
}

}  // namespace
}  // namespace crowd::core
