// Tests for the Theorem-1 delta-method engine, including a
// Monte-Carlo validation: the delta-method deviation of a nonlinear
// function of correlated normals must match the simulated deviation.

#include <gtest/gtest.h>

#include <cmath>

#include "rng/random.h"
#include "stats/delta_method.h"
#include "stats/descriptive.h"

namespace crowd::stats {
namespace {

TEST(DeltaMethod, DeviationOfIndependentSum) {
  // Y = X1 + X2 with unit variances: Dev = sqrt(2).
  linalg::Matrix cov = linalg::Matrix::Identity(2);
  auto dev = DeltaDeviation({1.0, 1.0}, cov);
  ASSERT_TRUE(dev.ok());
  EXPECT_NEAR(*dev, std::sqrt(2.0), 1e-12);
}

TEST(DeltaMethod, CorrelationChangesDeviation) {
  // Perfectly correlated: Y = X1 - X2 has zero variance.
  linalg::Matrix cov{{1.0, 1.0}, {1.0, 1.0}};
  auto dev = DeltaDeviation({1.0, -1.0}, cov);
  ASSERT_TRUE(dev.ok());
  EXPECT_NEAR(*dev, 0.0, 1e-12);
  // And Y = X1 + X2 doubles it.
  auto dev2 = DeltaDeviation({1.0, 1.0}, cov);
  EXPECT_NEAR(*dev2, 2.0, 1e-12);
}

TEST(DeltaMethod, ShapeMismatchRejected) {
  EXPECT_TRUE(DeltaDeviation({1.0, 1.0}, linalg::Matrix::Identity(3))
                  .status()
                  .IsInvalid());
}

TEST(DeltaMethod, SlightlyNegativeVarianceClamped) {
  // An estimated covariance that is not quite PSD.
  linalg::Matrix cov{{1.0, -1.0 - 1e-12}, {-1.0 - 1e-12, 1.0}};
  auto dev = DeltaDeviation({1.0, 1.0}, cov);
  ASSERT_TRUE(dev.ok());
  EXPECT_DOUBLE_EQ(*dev, 0.0);
}

TEST(DeltaMethod, StronglyNegativeVarianceRejected) {
  linalg::Matrix cov{{1.0, -2.0}, {-2.0, 1.0}};
  EXPECT_TRUE(
      DeltaDeviation({1.0, 1.0}, cov).status().IsNumericalError());
}

TEST(DeltaMethod, IntervalMatchesNormalForm) {
  LinearizedEstimate est;
  est.value = 0.25;
  est.gradient = {2.0};
  linalg::Matrix cov{{0.01}};  // Var(X) = 0.01 -> Dev(Y) = 0.2.
  auto ci = DeltaInterval(est, cov, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->center(), 0.25, 1e-12);
  EXPECT_NEAR(ci->size(), 2 * 1.959963984540054 * 0.2, 1e-9);
}

TEST(DeltaMethod, WeightedSumVariance) {
  linalg::Matrix cov{{4.0, 1.0}, {1.0, 9.0}};
  auto var = WeightedSumVariance({0.5, 0.5}, cov);
  ASSERT_TRUE(var.ok());
  EXPECT_NEAR(*var, 0.25 * 4 + 0.25 * 9 + 2 * 0.25 * 1, 1e-12);
}

// Monte-Carlo validation of Theorem 1 on a nonlinear function of
// correlated inputs: f(x, y) = sqrt(x * y). The delta deviation must
// match the empirical deviation of f over draws of (X, Y).
TEST(DeltaMethodProperty, MonteCarloAgreement) {
  const double ex = 2.0, ey = 3.0;
  const double sx = 0.03, sy = 0.05, rho = 0.6;

  // Gradient of sqrt(x y): (y, x) / (2 sqrt(x y)).
  double f0 = std::sqrt(ex * ey);
  linalg::Vector gradient = {ey / (2 * f0), ex / (2 * f0)};
  linalg::Matrix cov{{sx * sx, rho * sx * sy}, {rho * sx * sy, sy * sy}};
  auto predicted = DeltaDeviation(gradient, cov);
  ASSERT_TRUE(predicted.ok());

  Random rng(31);
  RunningStat observed;
  for (int i = 0; i < 200000; ++i) {
    double z1 = rng.NextGaussian();
    double z2 = rng.NextGaussian();
    double x = ex + sx * z1;
    double y = ey + sy * (rho * z1 + std::sqrt(1 - rho * rho) * z2);
    observed.Add(std::sqrt(x * y));
  }
  EXPECT_NEAR(observed.mean(), f0, 1e-3);
  EXPECT_NEAR(observed.stddev(), *predicted, 0.02 * *predicted);
}

}  // namespace
}  // namespace crowd::stats
