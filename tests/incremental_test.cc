// Tests for the incremental evaluator: its statistics and assessments
// must match the batch pipeline exactly at every prefix of the stream,
// with memoization that only skips genuinely clean workers.

#include <gtest/gtest.h>

#include <cmath>

#include "core/incremental.h"
#include "core/m_worker.h"
#include "data/overlap_index.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd::core {
namespace {

TEST(Incremental, OverlapStatsMatchRebuildUnderStreaming) {
  Random rng(3);
  const size_t m = 6, n = 80;
  data::ResponseMatrix reference(m, n, 2);
  IncrementalEvaluator incremental(m, n);

  for (int step = 0; step < 400; ++step) {
    data::WorkerId w = rng.UniformInt(m);
    data::TaskId t = rng.UniformInt(n);
    data::Response r = rng.Bernoulli(0.5) ? 1 : 0;
    ASSERT_TRUE(reference.Set(w, t, r).ok());
    ASSERT_TRUE(incremental.AddResponse(w, t, r).ok());

    if (step % 57 != 0) continue;  // Compare a sample of prefixes.
    data::OverlapIndex rebuilt(reference);
    for (data::WorkerId a = 0; a < m; ++a) {
      for (data::WorkerId b = 0; b < m; ++b) {
        ASSERT_EQ(incremental.overlap().CommonCount(a, b),
                  rebuilt.CommonCount(a, b))
            << "step " << step;
        ASSERT_EQ(incremental.overlap().AgreementCount(a, b),
                  rebuilt.AgreementCount(a, b))
            << "step " << step;
        for (data::WorkerId c = 0; c < m; ++c) {
          ASSERT_EQ(incremental.overlap().TripleCommonCount(a, b, c),
                    rebuilt.TripleCommonCount(a, b, c));
        }
      }
    }
  }
}

TEST(Incremental, AssessmentsMatchBatchAtEveryCheckpoint) {
  Random rng(5);
  sim::BinarySimConfig config;
  config.num_workers = 7;
  config.num_tasks = 150;
  config.assignment = sim::AssignmentConfig::Iid(0.8);
  auto sim = sim::SimulateBinary(config, &rng);

  BinaryOptions options;
  IncrementalEvaluator incremental(7, 150, options);
  data::ResponseMatrix replay(7, 150, 2);

  int checked = 0;
  for (data::TaskId t = 0; t < 150; ++t) {
    for (data::WorkerId w = 0; w < 7; ++w) {
      auto r = sim.dataset.responses().Get(w, t);
      if (!r.has_value()) continue;
      ASSERT_TRUE(incremental.AddResponse(w, t, *r).ok());
      ASSERT_TRUE(replay.Set(w, t, *r).ok());
    }
    if (t % 37 != 36) continue;
    auto batch = MWorkerEvaluate(replay, options);
    ASSERT_TRUE(batch.ok());
    auto streaming = incremental.EvaluateAll();
    ASSERT_EQ(streaming.assessments.size(), batch->assessments.size());
    ASSERT_EQ(streaming.failures.size(), batch->failures.size());
    for (size_t i = 0; i < streaming.assessments.size(); ++i) {
      const auto& a = streaming.assessments[i];
      const auto& b = batch->assessments[i];
      EXPECT_EQ(a.worker, b.worker);
      EXPECT_NEAR(a.error_rate, b.error_rate, 1e-12);
      EXPECT_NEAR(a.deviation, b.deviation, 1e-12);
      EXPECT_EQ(a.num_triples, b.num_triples);
    }
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(Incremental, OverwritingAResponseUpdatesAgreement) {
  IncrementalEvaluator incremental(3, 4);
  ASSERT_TRUE(incremental.AddResponse(0, 0, 1).ok());
  ASSERT_TRUE(incremental.AddResponse(1, 0, 1).ok());
  EXPECT_EQ(incremental.overlap().AgreementCount(0, 1), 1u);
  // Flip worker 1's response: agreement disappears, common stays.
  ASSERT_TRUE(incremental.AddResponse(1, 0, 0).ok());
  EXPECT_EQ(incremental.overlap().AgreementCount(0, 1), 0u);
  EXPECT_EQ(incremental.overlap().CommonCount(0, 1), 1u);
  // Flip back.
  ASSERT_TRUE(incremental.AddResponse(1, 0, 1).ok());
  EXPECT_EQ(incremental.overlap().AgreementCount(0, 1), 1u);
  // Re-submitting the same response is a no-op.
  ASSERT_TRUE(incremental.AddResponse(1, 0, 1).ok());
  EXPECT_EQ(incremental.overlap().CommonCount(0, 1), 1u);
  EXPECT_EQ(incremental.responses().TotalResponses(), 2u);
}

TEST(Incremental, MemoizationSkipsUntouchedWorkers) {
  Random rng(7);
  sim::BinarySimConfig config;
  config.num_workers = 6;
  config.num_tasks = 120;
  auto sim = sim::SimulateBinary(config, &rng);

  IncrementalEvaluator incremental(6, 120);
  for (data::TaskId t = 0; t < 120; ++t) {
    for (data::WorkerId w = 0; w < 6; ++w) {
      auto r = sim.dataset.responses().Get(w, t);
      if (r.has_value()) {
        ASSERT_TRUE(incremental.AddResponse(w, t, *r).ok());
      }
    }
  }
  EXPECT_EQ(incremental.DirtyWorkerCount(), 6u);
  incremental.EvaluateAll();
  EXPECT_EQ(incremental.DirtyWorkerCount(), 0u);
  // A repeated identical response leaves caches warm.
  auto existing = incremental.responses().Get(0, 0);
  ASSERT_TRUE(existing.has_value());
  ASSERT_TRUE(incremental.AddResponse(0, 0, *existing).ok());
  EXPECT_EQ(incremental.DirtyWorkerCount(), 0u);
  // A fresh response dirties the responder and overlapping workers —
  // on this dense data, everyone.
  ASSERT_TRUE(incremental.AddResponse(
                  0, 0, 1 - *existing).ok());
  EXPECT_EQ(incremental.DirtyWorkerCount(), 6u);
}

// Regression test for over-invalidation: a response to a task with no
// other attempters must not invalidate workers that cannot observe any
// changed statistic through their peers.
TEST(Incremental, ResponseToUnsharedTaskOnlyDirtiesResponder) {
  const size_t m = 3, n = 6;
  IncrementalEvaluator incremental(m, n);
  // Everyone answers tasks 0..3, so all pairs overlap.
  for (data::TaskId t = 0; t < 4; ++t) {
    for (data::WorkerId w = 0; w < m; ++w) {
      ASSERT_TRUE(
          incremental.AddResponse(w, t, (w + t) % 2 == 0 ? 1 : 0).ok());
    }
  }
  incremental.EvaluateAll();
  ASSERT_EQ(incremental.DirtyWorkerCount(), 0u);

  // Worker 0 answers task 5, which nobody else attempted. Only the
  // self-pair statistics of worker 0 change, so only worker 0's cache
  // may be invalidated.
  ASSERT_TRUE(incremental.AddResponse(0, 5, 1).ok());
  EXPECT_EQ(incremental.DirtyWorkerCount(), 1u);

  // And the refreshed results still match a batch evaluation.
  auto streaming = incremental.EvaluateAll();
  EXPECT_EQ(incremental.DirtyWorkerCount(), 0u);
  auto batch = MWorkerEvaluate(incremental.responses(), BinaryOptions{});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(streaming.assessments.size(), batch->assessments.size());
  for (size_t i = 0; i < streaming.assessments.size(); ++i) {
    EXPECT_EQ(streaming.assessments[i].error_rate,
              batch->assessments[i].error_rate);
  }
}

// The counterpart: once a task IS shared, a response to it must dirty
// every worker whose evaluation can read a changed pair statistic —
// including workers that never attempted the task but have both
// attempters as peers.
TEST(Incremental, ResponseToSharedTaskDirtiesObservers) {
  const size_t m = 3, n = 6;
  IncrementalEvaluator incremental(m, n);
  for (data::TaskId t = 0; t < 4; ++t) {
    for (data::WorkerId w = 0; w < m; ++w) {
      ASSERT_TRUE(
          incremental.AddResponse(w, t, (w + t) % 2 == 0 ? 1 : 0).ok());
    }
  }
  // Worker 1 alone attempts task 4: dirties only worker 1.
  incremental.EvaluateAll();
  ASSERT_TRUE(incremental.AddResponse(1, 4, 0).ok());
  EXPECT_EQ(incremental.DirtyWorkerCount(), 1u);
  incremental.EvaluateAll();
  ASSERT_EQ(incremental.DirtyWorkerCount(), 0u);

  // Worker 0 then answers task 4 too: the pair (0, 1) changes, and
  // worker 2 — who overlaps both — evaluates the triple (2, 0, 1)
  // whose peer-pair statistic q_{0,1} just moved. All three are dirty.
  ASSERT_TRUE(incremental.AddResponse(0, 4, 0).ok());
  EXPECT_EQ(incremental.DirtyWorkerCount(), 3u);

  auto streaming = incremental.EvaluateAll();
  auto batch = MWorkerEvaluate(incremental.responses(), BinaryOptions{});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(streaming.assessments.size(), batch->assessments.size());
  for (size_t i = 0; i < streaming.assessments.size(); ++i) {
    EXPECT_EQ(streaming.assessments[i].error_rate,
              batch->assessments[i].error_rate);
  }
}

TEST(Incremental, RangeValidation) {
  IncrementalEvaluator incremental(2, 3);
  EXPECT_TRUE(incremental.AddResponse(2, 0, 0).IsInvalid());
  EXPECT_TRUE(incremental.AddResponse(0, 3, 0).IsInvalid());
  EXPECT_TRUE(incremental.Evaluate(5).status().IsInvalid());
}

// AddResponse handles untrusted (network) input: rejections must name
// the offending id/value and the valid range, and must leave the
// evaluator completely untouched.
TEST(Incremental, AddResponseRejectionNamesOffendingValue) {
  IncrementalEvaluator incremental(4, 7);
  ASSERT_TRUE(incremental.AddResponse(1, 2, 1).ok());

  Status st = incremental.AddResponse(4, 0, 0);
  ASSERT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("worker id 4 out of range [0, 4)"),
            std::string::npos)
      << st.message();

  st = incremental.AddResponse(0, 7, 0);
  ASSERT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("task id 7 out of range [0, 7)"),
            std::string::npos)
      << st.message();

  st = incremental.AddResponse(0, 0, 2);
  ASSERT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("response 2"), std::string::npos)
      << st.message();
  st = incremental.AddResponse(0, 0, -1);
  ASSERT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("response -1"), std::string::npos)
      << st.message();

  // No rejected call changed any state.
  EXPECT_EQ(incremental.TotalResponses(), 1u);
  EXPECT_EQ(incremental.responses().Get(1, 2), std::optional<int>(1));
}

}  // namespace
}  // namespace crowd::core
