// Runtime behavior of the util::Mutex / util::MutexLock shim
// (util/mutex.h). The *static* half of the contract — that unguarded
// access to a CROWD_GUARDED_BY field fails the build — is covered by
// the negative-compile test (tests/thread_annotations_negative.cc via
// scripts/negative_compile_check.sh); these tests pin the dynamic
// semantics the annotations assume: mutual exclusion, RAII release,
// TryLock, and condition-variable wakeups through MutexLock::Wait.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace crowd {
namespace {

TEST(MutexTest, TryLockReflectsOwnership) {
  util::Mutex mu;
  mu.Lock();
  // try_lock on a std::mutex already held by this thread is UB, so
  // probe from another thread.
  bool acquired = true;
  std::thread prober([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  std::thread prober2([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  prober2.join();
  EXPECT_TRUE(acquired);
}

TEST(MutexTest, MutexLockReleasesOnScopeExit) {
  util::Mutex mu;
  {
    util::MutexLock lock(mu);
  }
  // Plain bool so the thread-safety analysis can track the
  // try-acquire branch (it cannot see through the EXPECT_* expansion).
  const bool reacquired = mu.TryLock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.Unlock();
}

// CROWD_GUARDED_BY applies to data members, so the contended fixture
// is a struct rather than locals (the attribute is not valid on local
// variables in all supported Clang versions).
struct GuardedCounter {
  util::Mutex mu;
  int value CROWD_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, GuardedCounterIsRaceFreeUnderContention) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        util::MutexLock lock(counter.mu);
        ++counter.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  util::MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, kThreads * kIncrements);
}

TEST(MutexTest, WaitWithPredicateObservesNotify) {
  util::Mutex mu;
  std::condition_variable cv;
  bool ready = false;    // protected by mu by convention; unannotated
  int observed = 0;      // so the predicate lambda needs no attributes

  std::thread waiter([&] {
    util::MutexLock lock(mu);
    lock.Wait(cv, [&] { return ready; });
    observed = 42;
  });
  {
    util::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  util::MutexLock lock(mu);
  EXPECT_EQ(observed, 42);
}

TEST(MutexTest, PlainWaitLoopObservesNotify) {
  util::Mutex mu;
  std::condition_variable cv;
  int stage = 0;

  std::thread waiter([&] {
    util::MutexLock lock(mu);
    while (stage == 0) lock.Wait(cv);
    stage = 2;
  });
  {
    util::MutexLock lock(mu);
    stage = 1;
  }
  cv.notify_all();
  waiter.join();
  util::MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

}  // namespace
}  // namespace crowd
