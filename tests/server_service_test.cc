// Tests for the crowdevald serving layer (Service::ExecuteLine and the
// typed entry points): command replies, counter accounting, cache
// hit/miss tracking, and snapshot compaction — all in-process, no
// sockets.

#include "server/service.h"

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/m_worker.h"
#include "gtest/gtest.h"
#include "rng/random.h"
#include "server/protocol.h"

namespace crowd::server {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/crowd_service_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::unique_ptr<Service> OpenInMemory(size_t workers, size_t tasks) {
  ServiceOptions options;
  options.num_workers = workers;
  options.num_tasks = tasks;
  auto service = Service::Open(options);
  EXPECT_TRUE(service.ok()) << service.status();
  return std::move(*service);
}

// Fills every cell of the service (and the returned matrix) with a
// deterministic pseudo-random response pattern.
data::ResponseMatrix FillDense(Service* service, size_t workers,
                               size_t tasks, uint64_t seed) {
  data::ResponseMatrix matrix(workers, tasks, 2);
  Random rng(seed);
  for (data::WorkerId w = 0; w < workers; ++w) {
    for (data::TaskId t = 0; t < tasks; ++t) {
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      EXPECT_TRUE(service->Ingest(w, t, v).ok());
      EXPECT_TRUE(matrix.Set(w, t, v).ok());
    }
  }
  return matrix;
}

TEST(ServiceTest, RespAcksWithSequenceNumber) {
  auto service = OpenInMemory(4, 6);
  EXPECT_EQ(service->ExecuteLine("RESP 0 0 1"), "{\"ok\":true,\"seq\":1}");
  EXPECT_EQ(service->ExecuteLine("RESP 1 0 0"), "{\"ok\":true,\"seq\":2}");
  // Identical re-submission is acknowledged but does not advance seq.
  EXPECT_EQ(service->ExecuteLine("RESP 1 0 0"), "{\"ok\":true,\"seq\":2}");
  // Overwriting with a different value is a new accepted response.
  EXPECT_EQ(service->ExecuteLine("RESP 1 0 1"), "{\"ok\":true,\"seq\":3}");

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.responses_ingested, 3u);
  EXPECT_EQ(stats.responses_noop, 1u);
  EXPECT_EQ(stats.responses_rejected, 0u);
}

TEST(ServiceTest, RespRejectionNamesTheOffendingId) {
  auto service = OpenInMemory(4, 6);
  std::string reply = service->ExecuteLine("RESP 9 0 1");
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(reply.find("worker id 9 out of range [0, 4)"),
            std::string::npos);
  reply = service->ExecuteLine("RESP 0 42 1");
  EXPECT_NE(reply.find("task id 42 out of range [0, 6)"),
            std::string::npos);
  reply = service->ExecuteLine("RESP 0 0 5");
  EXPECT_NE(reply.find("response 5"), std::string::npos);
  EXPECT_EQ(service->stats().responses_rejected, 3u);
  EXPECT_EQ(service->last_seq(), 0u);
}

TEST(ServiceTest, EvalAllMatchesBatchEvaluatorBitForBit) {
  constexpr size_t kWorkers = 8;
  constexpr size_t kTasks = 20;
  auto service = OpenInMemory(kWorkers, kTasks);
  data::ResponseMatrix matrix =
      FillDense(service.get(), kWorkers, kTasks, 2024);

  auto batch = core::MWorkerEvaluate(matrix, core::BinaryOptions{});
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_FALSE(batch->assessments.empty());
  EXPECT_EQ(service->ExecuteLine("EVAL_ALL"),
            "{\"ok\":true," + MWorkerResultBodyJson(*batch) + "}");

  // A single EVAL carries the same per-worker document.
  const core::WorkerAssessment& first = batch->assessments[0];
  EXPECT_EQ(
      service->ExecuteLine("EVAL " + std::to_string(first.worker)),
      "{\"ok\":true,\"assessment\":" + AssessmentJson(first) + "}");
}

TEST(ServiceTest, EvalTracksCacheHitsAndMisses) {
  auto service = OpenInMemory(6, 12);
  data::ResponseMatrix matrix = FillDense(service.get(), 6, 12, 7);

  // Whether worker 2 evaluates or legitimately fails (no usable
  // triple) is data-dependent; either way the result is computed once
  // and memoized.
  service->ExecuteLine("EVAL 2");
  EXPECT_EQ(service->stats().eval_cache_misses, 1u);
  EXPECT_EQ(service->stats().eval_cache_hits, 0u);

  service->ExecuteLine("EVAL 2");  // memoized now
  EXPECT_EQ(service->stats().eval_cache_hits, 1u);

  // Flip (2, 0) to the opposite value: a real change, so worker 2's
  // cached assessment is invalidated.
  int flipped = 1 - *matrix.Get(2, 0);
  service->ExecuteLine("RESP 2 0 " + std::to_string(flipped));
  service->ExecuteLine("EVAL 2");
  EXPECT_EQ(service->stats().eval_cache_misses, 2u);
}

TEST(ServiceTest, EvalAllBatchesWritesBetweenEvaluations) {
  // Two disjoint cliques: workers 0-2 on tasks 0-5, workers 3-5 on
  // tasks 6-11. A write inside one clique cannot dirty the other.
  constexpr size_t kWorkers = 6;
  constexpr size_t kTasks = 12;
  auto service = OpenInMemory(kWorkers, kTasks);
  Random rng(11);
  for (data::WorkerId w = 0; w < kWorkers; ++w) {
    for (data::TaskId t = (w < 3) ? 0u : 6u; t < ((w < 3) ? 6u : kTasks);
         ++t) {
      ASSERT_TRUE(
          service
              ->Ingest(w, t, static_cast<data::Response>(rng.UniformInt(2)))
              .ok());
    }
  }

  service->ExecuteLine("EVAL_ALL");
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.eval_all_runs, 1u);
  EXPECT_EQ(stats.eval_cache_misses, kWorkers);

  // A burst of writes in the first clique is absorbed by one pass;
  // the second clique's workers are served from cache.
  service->ExecuteLine("RESP 0 0 0");
  service->ExecuteLine("RESP 0 0 1");  // guaranteed change vs previous line
  service->ExecuteLine("EVAL_ALL");
  stats = service->stats();
  EXPECT_EQ(stats.eval_all_runs, 2u);
  EXPECT_GE(stats.eval_cache_hits, 3u) << "second clique stayed cached";
}

TEST(ServiceTest, StatsReportsCountersAsJson) {
  auto service = OpenInMemory(5, 9);
  service->ExecuteLine("RESP 0 0 1");
  service->ExecuteLine("RESP 1 0 0");
  service->ExecuteLine("EVAL_ALL");

  std::string reply = service->ExecuteLine("STATS");
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(reply.find("\"num_workers\":5"), std::string::npos);
  EXPECT_NE(reply.find("\"num_tasks\":9"), std::string::npos);
  EXPECT_NE(reply.find("\"total_responses\":2"), std::string::npos);
  EXPECT_NE(reply.find("\"last_seq\":2"), std::string::npos);
  EXPECT_NE(reply.find("\"responses_ingested\":2"), std::string::npos);
  EXPECT_NE(reply.find("\"eval_all_runs\":1"), std::string::npos);
  EXPECT_NE(reply.find("\"dirty_workers\":0"), std::string::npos);
}

TEST(ServiceTest, SnapshotWithoutDataDirIsAnError) {
  auto service = OpenInMemory(3, 3);
  std::string reply = service->ExecuteLine("SNAPSHOT");
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(reply.find("data directory"), std::string::npos);
}

TEST(ServiceTest, QuitAndUnknownCommands) {
  auto service = OpenInMemory(3, 3);
  bool quit = false;
  EXPECT_EQ(service->ExecuteLine("QUIT", &quit),
            "{\"ok\":true,\"bye\":true}");
  EXPECT_TRUE(quit);

  quit = true;
  std::string reply = service->ExecuteLine("BOGUS 1 2", &quit);
  EXPECT_FALSE(quit);
  EXPECT_NE(reply.find("unknown command: BOGUS"), std::string::npos);
  EXPECT_NE(service->ExecuteLine("").find("\"ok\":false"),
            std::string::npos);
}

TEST(ServiceTest, SnapshotCommandCompactsJournal) {
  std::string dir = ScratchDir("snapshot_compacts");
  ServiceOptions options;
  options.num_workers = 5;
  options.num_tasks = 10;
  options.data_dir = dir + "/state";
  auto service = Service::Open(options);
  ASSERT_TRUE(service.ok()) << service.status();

  for (int i = 0; i < 10; ++i) {
    (*service)->ExecuteLine(
        "RESP " + std::to_string(i % 5) + " " + std::to_string(i / 5) +
        " 1");
  }
  ServiceStats before = (*service)->stats();
  EXPECT_EQ(before.journal_records, 10u);

  std::string reply = (*service)->ExecuteLine("SNAPSHOT");
  EXPECT_EQ(reply.find("{\"ok\":true,\"snapshot_seq\":10,"), 0u) << reply;
  ServiceStats after = (*service)->stats();
  EXPECT_EQ(after.journal_records, 0u);
  EXPECT_EQ(after.snapshot_seq, 10u);
  EXPECT_EQ(after.snapshots_written, 1u);
  EXPECT_LT(after.journal_bytes, before.journal_bytes);

  // Post-snapshot writes land in the compacted journal and recovery
  // stitches snapshot + tail back together.
  (*service)->ExecuteLine("RESP 4 9 1");
  std::string expected =
      MWorkerResultBodyJson((*service)->EvaluateAll());
  service->reset();

  ServiceOptions recover;
  recover.data_dir = dir + "/state";
  auto recovered = Service::Open(recover);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->last_seq(), 11u);
  EXPECT_EQ((*recovered)->stats().recovered_records, 1u);
  EXPECT_EQ(MWorkerResultBodyJson((*recovered)->EvaluateAll()), expected);
}

TEST(ServiceTest, AutomaticSnapshotEveryN) {
  std::string dir = ScratchDir("auto_snapshot");
  ServiceOptions options;
  options.num_workers = 4;
  options.num_tasks = 8;
  options.data_dir = dir + "/state";
  options.snapshot_every = 5;
  auto service = Service::Open(options);
  ASSERT_TRUE(service.ok()) << service.status();

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*service)
                    ->Ingest(static_cast<data::WorkerId>(i % 4),
                             static_cast<data::TaskId>(i / 4), 1)
                    .ok());
  }
  ServiceStats stats = (*service)->stats();
  EXPECT_EQ(stats.snapshots_written, 2u);
  EXPECT_EQ(stats.snapshot_seq, 10u);
  EXPECT_EQ(stats.journal_records, 2u);
}

TEST(ServiceTest, MetricsCommandExportsPrometheus) {
  auto service = OpenInMemory(5, 9);
  service->ExecuteLine("RESP 0 0 1");
  service->ExecuteLine("RESP 9 0 1");  // rejected: worker out of range
  service->ExecuteLine("EVAL_ALL");

  std::string text = service->ExecuteLine("METRICS");
  // Terminated by an EOF marker line (the one multi-line reply in the
  // protocol).
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "\n# EOF") << text;
  EXPECT_NE(
      text.find("# TYPE crowdeval_server_responses_ingested_total counter"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("crowdeval_server_responses_ingested_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("crowdeval_server_responses_rejected_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("crowdeval_server_eval_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("crowdeval_server_command_seconds_bucket{command=\"RESP\""),
      std::string::npos)
      << text;
}

// Hammers STATS/METRICS from readers while writers ingest — the
// regression test for the pre-registry ServiceStats counters, whose
// unsynchronized increments raced. Run under TSan in CI.
TEST(ServiceTest, ConcurrentIngestAndStatsAreRaceFree) {
  auto service = OpenInMemory(8, 64);
  constexpr int kWriters = 4;
  constexpr int kResponsesPerWriter = 2000;
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Random rng(100 + static_cast<uint64_t>(w));
      for (int i = 0; i < kResponsesPerWriter; ++i) {
        auto worker = static_cast<data::WorkerId>(rng.UniformInt(8));
        auto task = static_cast<data::TaskId>(rng.UniformInt(64));
        auto value = static_cast<data::Response>(rng.UniformInt(2));
        EXPECT_TRUE(service->Ingest(worker, task, value).ok());
      }
    });
  }
  std::thread reader([&] {
    while (!done.load()) {
      ServiceStats stats = service->stats();
      EXPECT_LE(stats.responses_ingested + stats.responses_noop,
                static_cast<uint64_t>(kWriters) * kResponsesPerWriter);
      std::string text = service->ExecuteLine("METRICS");
      EXPECT_NE(text.find("# EOF"), std::string::npos);
    }
  });
  for (auto& t : threads) t.join();
  done.store(true);
  reader.join();

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.responses_ingested + stats.responses_noop,
            static_cast<uint64_t>(kWriters) * kResponsesPerWriter);
  EXPECT_EQ(stats.responses_rejected, 0u);
}

TEST(ServiceTest, SpammersCommandReportsFilteredWorkers) {
  constexpr size_t kWorkers = 5;
  constexpr size_t kTasks = 30;
  auto service = OpenInMemory(kWorkers, kTasks);
  // Workers 0-3 agree on everything; worker 4 contradicts the majority
  // on every task (proxy error 1.0, far above the 0.4 threshold).
  for (data::TaskId t = 0; t < kTasks; ++t) {
    for (data::WorkerId w = 0; w + 1 < kWorkers; ++w) {
      ASSERT_TRUE(service->Ingest(w, t, 1).ok());
    }
    ASSERT_TRUE(service->Ingest(kWorkers - 1, t, 0).ok());
  }
  std::string reply = service->ExecuteLine("SPAMMERS");
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(reply.find("\"spammers\":[{\"worker\":4,"), std::string::npos)
      << reply;
}

}  // namespace
}  // namespace crowd::server
