# Composable sanitizer presets, replacing the ad-hoc per-CI-job flag
# strings. Usage:
#
#   cmake -B build -S . -DCROWDEVAL_SANITIZE=address,undefined
#   cmake -B build -S . -DCROWDEVAL_SANITIZE=thread
#   cmake -B build -S . -DCROWDEVAL_SANITIZE=memory            # Clang only
#   cmake -B build -S . -DCROWDEVAL_SANITIZE=fuzzer,address,undefined
#
# Accepted elements (comma- or semicolon-separated):
#
#   address    AddressSanitizer (heap/stack/global OOB, UAF, leaks)
#   thread     ThreadSanitizer (data races)
#   memory     MemorySanitizer with origin tracking (uninitialized
#              reads); Clang only, and the standard library should be
#              MSan-instrumented too or anything it initializes reports
#              false positives (see .github/workflows/ci.yml `msan`)
#   undefined  UBSan with -fno-sanitize-recover=all (first report fails)
#   fuzzer     libFuzzer coverage instrumentation for the whole tree
#              (-fsanitize=fuzzer-no-link); the harnesses under fuzz/
#              additionally link the engine. Clang only.
#
# Invalid elements and incompatible combinations (address/thread/memory
# are mutually exclusive) are configure-time errors, so a CI job can
# never silently run un-sanitized.

set(CROWDEVAL_SANITIZE "" CACHE STRING
    "Sanitizer preset list: address;thread;memory;undefined;fuzzer")

set(CROWDEVAL_FUZZER_ENGINE OFF)

string(REPLACE "," ";" _crowd_sanitize "${CROWDEVAL_SANITIZE}")
if(_crowd_sanitize)
  set(_known address thread memory undefined fuzzer)
  foreach(_s IN LISTS _crowd_sanitize)
    if(NOT _s IN_LIST _known)
      message(FATAL_ERROR
        "CROWDEVAL_SANITIZE: unknown sanitizer '${_s}' "
        "(expected a subset of: ${_known})")
    endif()
  endforeach()

  set(_exclusive "")
  foreach(_s address thread memory)
    if(_s IN_LIST _crowd_sanitize)
      list(APPEND _exclusive ${_s})
    endif()
  endforeach()
  list(LENGTH _exclusive _n_exclusive)
  if(_n_exclusive GREATER 1)
    message(FATAL_ERROR
      "CROWDEVAL_SANITIZE: ${_exclusive} are mutually exclusive")
  endif()

  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    foreach(_s memory fuzzer)
      if(_s IN_LIST _crowd_sanitize)
        message(FATAL_ERROR
          "CROWDEVAL_SANITIZE=${_s} requires Clang "
          "(current compiler: ${CMAKE_CXX_COMPILER_ID})")
      endif()
    endforeach()
  endif()
  if("fuzzer" IN_LIST _crowd_sanitize AND "thread" IN_LIST _crowd_sanitize)
    message(FATAL_ERROR
      "CROWDEVAL_SANITIZE: libFuzzer does not compose with "
      "ThreadSanitizer; use fuzzer with address/memory/undefined")
  endif()

  set(_compile_flags -g -fno-omit-frame-pointer)
  set(_link_flags "")
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    # Sanitizer instrumentation changes GCC's inlining enough to trip
    # spurious -Wmaybe-uninitialized deep in libstdc++ (<variant>,
    # shared_ptr), which -Werror then fatalizes (GCC PR 105562 family).
    list(APPEND _compile_flags -Wno-maybe-uninitialized)
  endif()
  if("address" IN_LIST _crowd_sanitize)
    list(APPEND _compile_flags -fsanitize=address)
    list(APPEND _link_flags -fsanitize=address)
  endif()
  if("thread" IN_LIST _crowd_sanitize)
    list(APPEND _compile_flags -fsanitize=thread)
    list(APPEND _link_flags -fsanitize=thread)
  endif()
  if("memory" IN_LIST _crowd_sanitize)
    list(APPEND _compile_flags
      -fsanitize=memory -fsanitize-memory-track-origins=2)
    list(APPEND _link_flags -fsanitize=memory)
  endif()
  if("undefined" IN_LIST _crowd_sanitize)
    list(APPEND _compile_flags
      -fsanitize=undefined -fno-sanitize-recover=all)
    list(APPEND _link_flags -fsanitize=undefined)
  endif()
  if("fuzzer" IN_LIST _crowd_sanitize)
    # Coverage instrumentation everywhere; only the fuzz/ harnesses
    # link the libFuzzer driver (they would otherwise all gain a
    # main() and every test binary would become a fuzzer).
    list(APPEND _compile_flags -fsanitize=fuzzer-no-link)
    set(CROWDEVAL_FUZZER_ENGINE ON)
  endif()

  add_compile_options(${_compile_flags})
  add_link_options(${_link_flags})
  message(STATUS
    "crowdeval: sanitizers enabled: ${_crowd_sanitize}")
endif()
