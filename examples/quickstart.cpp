// Quickstart: evaluate a small crowd without any gold-standard labels.
//
// Builds a response matrix by hand (the data you would pull from your
// crowdsourcing platform), runs the m-worker estimator and prints a
// confidence interval on each worker's error rate.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/evaluator.h"
#include "rng/random.h"
#include "sim/simulator.h"

int main() {
  using namespace crowd;

  // Simulate what a platform export looks like: 5 workers, 200 binary
  // tasks, each worker answered ~80% of them. Worker 4 is planted as a
  // poor worker. In your application, fill the ResponseMatrix from
  // your own task log via ResponseMatrix::Set(worker, task, response).
  Random rng(2026);
  sim::BinarySimConfig scenario;
  scenario.num_workers = 5;
  scenario.num_tasks = 200;
  scenario.assignment = sim::AssignmentConfig::Iid(0.8);
  scenario.pool.error_rates = {0.08, 0.12, 0.15, 0.18, 0.35};
  auto world = sim::SimulateBinary(scenario, &rng);
  const data::ResponseMatrix& responses = world.dataset.responses();

  std::printf("Input: %zu workers x %zu tasks, %zu responses "
              "(density %.2f)\n\n",
              responses.num_workers(), responses.num_tasks(),
              responses.TotalResponses(), responses.Density());

  // Evaluate. No gold labels are used anywhere below.
  core::CrowdEvaluator::Config config;
  config.binary.confidence = 0.9;
  core::CrowdEvaluator evaluator(config);
  auto report = evaluator.EvaluateBinary(responses);
  if (!report.ok()) {
    std::printf("evaluation failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s %-10s %-22s %-8s %s\n", "worker", "estimate",
              "90%-interval", "triples", "(true rate)");
  for (const auto& a : report->assessments) {
    std::printf("w%-7zu %-10.3f %-22s %-8zu %.3f\n", a.worker,
                a.error_rate,
                a.interval.ClampTo(0.0, 1.0).ToString().c_str(),
                a.num_triples, world.true_error_rates[a.worker]);
  }

  // Intervals support decisions that point estimates cannot: fire only
  // when the *whole* interval clears the bar.
  auto fire = core::CrowdEvaluator::WorkersConfidentlyAbove(
      report->assessments, 0.25);
  std::printf("\nworkers confidently above 25%% error (fire): ");
  if (fire.empty()) std::printf("none");
  for (auto w : fire) std::printf("w%zu ", w);
  std::printf("\n");
  return 0;
}
