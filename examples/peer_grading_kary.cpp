// Peer grading with k-ary tasks: the MOOC scenario of Section IV-C.
// Three graders grade the same window of submissions on a 3-point
// scale; the k-ary estimator recovers each grader's full response-
// probability matrix — including their bias (e.g. a tendency to grade
// one point low) — with a confidence interval per entry, and estimates
// the grade distribution (selectivity) without any instructor grades.
//
//   $ ./build/examples/peer_grading_kary

#include <cstdio>

#include "core/evaluator.h"
#include "data/overlap_index.h"
#include "sim/paper_datasets.h"

namespace {

void PrintWorkerMatrix(const crowd::core::KaryWorkerEstimate& est,
                       const crowd::data::Dataset& dataset,
                       size_t worker) {
  const int k = static_cast<int>(est.p.rows());
  std::printf("grader %zu (rows: true grade; cols: given grade)\n",
              worker);
  auto proxy = dataset.ProxyResponseMatrix(worker);
  for (int r = 0; r < k; ++r) {
    std::printf("  true=%d: ", r);
    for (int c = 0; c < k; ++c) {
      std::printf(" %.2f %-16s", est.p(r, c),
                  est.intervals[r][c]
                      .ClampTo(0.0, 1.0)
                      .ToString()
                      .c_str());
    }
    if (proxy.ok() && proxy->row_counts[r] > 0) {
      std::printf("  | gold proxy:");
      for (int c = 0; c < k; ++c) {
        std::printf(" %.2f", proxy->probabilities[r][c]);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace crowd;

  // The MOOC analogue: 60 graders x 300 submissions, 3-ary grades,
  // graders attempt overlapping 150-task windows.
  data::Dataset dataset = sim::SyntheticMooc(2015);
  std::printf("%s\n\n", dataset.Summary().c_str());

  // Pick a grader triple with plenty of common submissions, as the
  // paper's protocol requires (t = 60 for MOOC).
  data::OverlapIndex overlap(dataset.responses());
  size_t w1 = 0, w2 = 1, w3 = 2;
  size_t best = 0;
  for (size_t a = 0; a < 20; ++a) {
    for (size_t b = a + 1; b < 20; ++b) {
      for (size_t c = b + 1; c < 20; ++c) {
        size_t common = overlap.TripleCommonCount(a, b, c);
        if (common > best) {
          best = common;
          w1 = a;
          w2 = b;
          w3 = c;
        }
      }
    }
  }
  std::printf("evaluating graders (%zu, %zu, %zu), %zu common "
              "submissions\n\n",
              w1, w2, w3, best);

  core::CrowdEvaluator::Config config;
  config.kary.confidence = 0.9;
  core::CrowdEvaluator evaluator(config);
  auto result = evaluator.EvaluateKaryTriple(dataset.responses(), w1, w2,
                                             w3);
  if (!result.ok()) {
    std::printf("evaluation failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  const size_t workers[3] = {w1, w2, w3};
  for (int i = 0; i < 3; ++i) {
    PrintWorkerMatrix(result->workers[i], dataset, workers[i]);
    std::printf("\n");
  }

  std::printf("estimated grade distribution:");
  for (double s : result->selectivity) std::printf(" %.2f", s);
  std::printf("   (planted: 0.25 0.45 0.30)\n");
  return 0;
}
