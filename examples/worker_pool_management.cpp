// Worker-pool management: the hire/fire loop the paper's introduction
// motivates. A pool of workers processes task batches round by round;
// after each round the evaluator re-computes confidence intervals over
// all responses so far, fires workers confidently above the error bar
// (replacing them with fresh hires) and "certifies" workers
// confidently below it.
//
// The run prints, per round, the firing/certification decisions and
// how many decisions were correct against the (hidden) planted rates —
// demonstrating that interval-based decisions rarely fire good
// workers, the property the paper argues protects a requester's
// market reputation.
//
//   $ ./build/examples/worker_pool_management

#include <cstdio>
#include <vector>

#include "core/evaluator.h"
#include "rng/random.h"
#include "sim/binary_worker.h"

namespace {

constexpr double kFireAbove = 0.25;
constexpr double kCertifyBelow = 0.15;
constexpr size_t kPoolSize = 8;
constexpr size_t kTasksPerRound = 60;
constexpr int kRounds = 6;

// A worker slot in the pool: the hidden true rate plus the column
// range of tasks they have answered.
struct Slot {
  double true_rate;
  bool certified = false;
};

double DrawRate(crowd::Random* rng) {
  // Mostly good hires with occasional bad ones.
  return rng->Bernoulli(0.25) ? rng->Uniform(0.28, 0.45)
                              : rng->Uniform(0.05, 0.2);
}

}  // namespace

int main() {
  using namespace crowd;
  Random rng(77);

  std::vector<Slot> pool;
  for (size_t i = 0; i < kPoolSize; ++i) pool.push_back({DrawRate(&rng)});

  // All responses accumulated so far (grows by kTasksPerRound each
  // round; fired slots keep their history attributed to the new hire's
  // column being reset, so we simply rebuild per-round matrices and
  // concatenate).
  size_t total_tasks = 0;
  std::vector<std::vector<std::pair<size_t, int>>> history(kPoolSize);

  int fired_total = 0, fired_wrong = 0;
  int certified_total = 0, certified_wrong = 0;

  for (int round = 1; round <= kRounds; ++round) {
    // The pool answers a fresh batch (everyone answers ~85%).
    for (size_t t = 0; t < kTasksPerRound; ++t) {
      size_t task = total_tasks + t;
      int truth = rng.Bernoulli(0.5) ? 1 : 0;
      for (size_t w = 0; w < kPoolSize; ++w) {
        if (!rng.Bernoulli(0.85)) continue;
        int response =
            rng.Bernoulli(pool[w].true_rate) ? 1 - truth : truth;
        history[w].push_back({task, response});
      }
    }
    total_tasks += kTasksPerRound;

    data::ResponseMatrix responses(kPoolSize, total_tasks, 2);
    for (size_t w = 0; w < kPoolSize; ++w) {
      for (const auto& [task, response] : history[w]) {
        responses.Set(w, task, response).AbortIfNotOk();
      }
    }

    core::CrowdEvaluator::Config config;
    config.binary.confidence = 0.9;
    core::CrowdEvaluator evaluator(config);
    auto report = evaluator.EvaluateBinary(responses);
    if (!report.ok()) {
      std::printf("round %d: evaluation failed: %s\n", round,
                  report.status().ToString().c_str());
      continue;
    }

    std::printf("round %d (%zu tasks of history):\n", round, total_tasks);
    for (const auto& a : report->assessments) {
      Slot& slot = pool[a.worker];
      if (a.interval.lo > kFireAbove) {
        bool wrong = slot.true_rate <= kFireAbove;
        std::printf("  FIRE     w%zu: interval %s, true rate %.2f%s\n",
                    a.worker,
                    a.interval.ClampTo(0, 1).ToString().c_str(),
                    slot.true_rate, wrong ? "  <-- WRONG CALL" : "");
        ++fired_total;
        fired_wrong += wrong ? 1 : 0;
        // Replace with a fresh hire; their history starts empty.
        slot = Slot{DrawRate(&rng)};
        history[a.worker].clear();
      } else if (!slot.certified && a.interval.hi < kCertifyBelow) {
        bool wrong = slot.true_rate >= kCertifyBelow;
        std::printf("  CERTIFY  w%zu: interval %s, true rate %.2f%s\n",
                    a.worker,
                    a.interval.ClampTo(0, 1).ToString().c_str(),
                    slot.true_rate, wrong ? "  <-- WRONG CALL" : "");
        slot.certified = true;
        ++certified_total;
        certified_wrong += wrong ? 1 : 0;
      }
    }
  }

  std::printf("\nsummary: fired %d (%d wrongly), certified %d "
              "(%d wrongly)\n",
              fired_total, fired_wrong, certified_total,
              certified_wrong);
  return 0;
}
