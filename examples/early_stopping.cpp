// Interval-driven early stopping: confidence intervals are actionable
// *during* data collection, not just after it. A requester screening a
// worker pool against a quality bar can stop collecting for a worker
// the moment that worker's interval falls entirely on one side of the
// bar — workers far from the bar resolve after a handful of tasks,
// and only borderline workers consume real budget.
//
// This example compares that policy against the fixed-budget protocol
// a point-estimate-only pipeline is forced into (without a reliability
// measure, it must collect the full worst-case budget for everyone),
// counting both responses spent and classification mistakes.
//
// The incremental evaluator keeps statistics current as responses
// stream in, so each stopping decision costs O(m) bookkeeping.
//
//   $ ./build/examples/early_stopping

#include <cstdio>
#include <vector>

#include "core/incremental.h"
#include "rng/random.h"

namespace {

constexpr size_t kPoolSize = 10;
constexpr size_t kMaxTasks = 360;   // Worst-case tasks per worker.
constexpr size_t kTasksPerRound = 6;
constexpr double kBar = 0.25;       // Quality threshold.
constexpr double kConfidence = 0.95;

struct Outcome {
  size_t responses = 0;
  int wrong_calls = 0;
  int undecided = 0;
};

// Streams rounds of shared tasks. With early stopping, workers whose
// interval clears the bar stop answering; without, everyone answers
// the full budget and is classified at the end by point estimate.
Outcome Run(const std::vector<double>& true_rates, uint64_t seed,
            bool early_stopping) {
  using namespace crowd;
  Random rng(seed);
  core::BinaryOptions options;
  options.confidence = kConfidence;
  core::IncrementalEvaluator evaluator(kPoolSize, kMaxTasks, options);

  std::vector<int> decision(kPoolSize, -1);  // -1 undecided, 0 good, 1 bad.
  Outcome out;

  for (size_t start = 0; start < kMaxTasks; start += kTasksPerRound) {
    for (size_t offset = 0; offset < kTasksPerRound; ++offset) {
      size_t t = start + offset;
      int truth = 0;  // WLOG under the symmetric error model.
      for (data::WorkerId w = 0; w < kPoolSize; ++w) {
        if (early_stopping && decision[w] != -1) continue;
        int response =
            rng.Bernoulli(true_rates[w]) ? 1 - truth : truth;
        evaluator.AddResponse(w, t, response).AbortIfNotOk();
        ++out.responses;
      }
    }
    if (!early_stopping) continue;
    bool all_decided = true;
    for (data::WorkerId w = 0; w < kPoolSize; ++w) {
      if (decision[w] != -1) continue;
      auto assessment = evaluator.Evaluate(w);
      if (assessment.ok()) {
        if (assessment->interval.lo > kBar) {
          decision[w] = 1;
        } else if (assessment->interval.hi < kBar) {
          decision[w] = 0;
        }
      }
      if (decision[w] == -1) all_decided = false;
    }
    if (all_decided) break;
  }

  // Whatever is still undecided gets classified by point estimate
  // (the only option a point pipeline ever has).
  for (data::WorkerId w = 0; w < kPoolSize; ++w) {
    if (decision[w] == -1) {
      auto assessment = evaluator.Evaluate(w);
      if (assessment.ok()) {
        decision[w] = assessment->error_rate > kBar ? 1 : 0;
        if (early_stopping) ++out.undecided;
      }
    }
    bool actually_bad = true_rates[w] > kBar;
    if (decision[w] != -1 && decision[w] != (actually_bad ? 1 : 0)) {
      ++out.wrong_calls;
    }
  }
  return out;
}

}  // namespace

int main() {
  crowd::Random seeder(321);
  Outcome stopped_total, fixed_total;
  const int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> rates;
    for (size_t w = 0; w < kPoolSize; ++w) {
      rates.push_back(seeder.Bernoulli(0.3)
                          ? seeder.Uniform(0.3, 0.45)
                          : seeder.Uniform(0.05, 0.2));
    }
    auto stopped = Run(rates, 1000 + trial, /*early_stopping=*/true);
    auto fixed = Run(rates, 1000 + trial, /*early_stopping=*/false);
    stopped_total.responses += stopped.responses;
    stopped_total.wrong_calls += stopped.wrong_calls;
    stopped_total.undecided += stopped.undecided;
    fixed_total.responses += fixed.responses;
    fixed_total.wrong_calls += fixed.wrong_calls;
  }

  std::printf("screening a %zu-worker pool against a %.0f%% error bar "
              "(%d pools, worst-case budget %zu tasks/worker):\n\n",
              kPoolSize, kBar * 100, kTrials, kMaxTasks);
  std::printf("  interval-driven early stopping: %5zu responses/pool, "
              "%d wrong calls, %d still undecided at budget\n",
              stopped_total.responses / kTrials,
              stopped_total.wrong_calls, stopped_total.undecided);
  std::printf("  fixed budget (point pipeline):  %5zu responses/pool, "
              "%d wrong calls\n",
              fixed_total.responses / kTrials, fixed_total.wrong_calls);
  std::printf("\nintervals tell the requester *when to stop paying* for "
              "evidence on each worker;\npoint estimates cannot. The "
              "residual wrong calls concentrate on workers whose\ntrue "
              "rate sits at the bar, where repeated interval peeking "
              "inflates the per-look\nerror (the classical sequential-"
              "testing caveat; the paper's predecessor [2]\ndevelops "
              "properly sequential procedures).\n");
  return 0;
}
