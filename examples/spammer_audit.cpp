// Spammer audit: the Section III-E2 workflow on the IC (image
// comparison) analogue. Runs the evaluator with and without the
// majority-vote spammer pre-filter over many dataset draws and shows
// (a) who gets flagged and how that aligns with gold-standard truth,
// (b) how interval coverage at high confidence improves after pruning
// — the Figure 3 -> Figure 4 effect.
//
//   $ ./build/examples/spammer_audit

#include <algorithm>
#include <cstdio>

#include "core/evaluator.h"
#include "rng/random.h"
#include "sim/paper_datasets.h"
#include "sim/simulator.h"

namespace {

struct Coverage {
  size_t scored = 0;
  size_t covered = 0;
  double Rate() const {
    return scored == 0 ? 0.0
                       : static_cast<double>(covered) /
                             static_cast<double>(scored);
  }
};

void Score(const crowd::core::CrowdEvaluator::BinaryReport& report,
           const crowd::data::Dataset& dataset, Coverage* coverage) {
  for (const auto& a : report.assessments) {
    auto proxy = dataset.ProxyErrorRate(a.worker);
    if (!proxy.ok()) continue;
    ++coverage->scored;
    if (a.interval.Contains(*proxy)) ++coverage->covered;
  }
}

}  // namespace

int main() {
  using namespace crowd;

  const double confidence = 0.9;
  const int kSeeds = 40;

  Coverage raw_total, pruned_total;
  size_t flagged_total = 0, flagged_truly_bad = 0;

  core::CrowdEvaluator::Config raw_config;
  raw_config.binary.confidence = confidence;
  core::CrowdEvaluator::Config pruned_config = raw_config;
  pruned_config.prefilter_spammers = true;
  pruned_config.spammer.threshold = 0.4;

  Random rng(4242);
  for (int seed = 0; seed < kSeeds; ++seed) {
    data::Dataset dataset = sim::SyntheticIc(9000 + seed);
    // The paper de-regularizes IC by dropping 20% of responses.
    *dataset.mutable_responses() =
        sim::RemoveResponses(dataset.responses(), 0.2, &rng);

    auto raw = core::CrowdEvaluator(raw_config)
                   .EvaluateBinary(dataset.responses());
    auto pruned = core::CrowdEvaluator(pruned_config)
                      .EvaluateBinary(dataset.responses());
    if (!raw.ok() || !pruned.ok()) continue;
    Score(*raw, dataset, &raw_total);
    Score(*pruned, dataset, &pruned_total);
    for (auto w : pruned->removed_spammers) {
      ++flagged_total;
      auto proxy = dataset.ProxyErrorRate(w);
      if (proxy.ok() && *proxy > 0.35) ++flagged_truly_bad;
    }

    if (seed == 0) {
      std::printf("example draw — %s\n", dataset.Summary().c_str());
      std::printf("flagged as spammers: ");
      if (pruned->removed_spammers.empty()) std::printf("none");
      for (auto w : pruned->removed_spammers) {
        auto proxy = dataset.ProxyErrorRate(w);
        std::printf("w%zu(gold-proxy %.2f) ", w,
                    proxy.ok() ? *proxy : -1.0);
      }
      std::printf("\n\nmost confidently reliable workers this draw:\n");
      auto assessments = pruned->assessments;
      std::sort(assessments.begin(), assessments.end(),
                [](const auto& a, const auto& b) {
                  return a.interval.hi < b.interval.hi;
                });
      for (size_t i = 0; i < std::min<size_t>(4, assessments.size());
           ++i) {
        const auto& a = assessments[i];
        auto proxy = dataset.ProxyErrorRate(a.worker);
        std::printf("  w%-3zu interval %s  gold proxy %.3f\n", a.worker,
                    a.interval.ClampTo(0, 0.5).ToString().c_str(),
                    proxy.ok() ? *proxy : -1.0);
      }
      std::printf("\n");
    }
  }

  std::printf("aggregate over %d dataset draws:\n", kSeeds);
  std::printf("  flagged %zu workers; %zu (%.0f%%) have gold-proxy "
              "error > 0.35\n",
              flagged_total, flagged_truly_bad,
              flagged_total == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(flagged_truly_bad) /
                        static_cast<double>(flagged_total));
  std::printf("  interval coverage vs gold proxy at %.0f%% nominal:\n",
              confidence * 100);
  std::printf("    raw:     %zu/%zu (%.1f%%)\n", raw_total.covered,
              raw_total.scored, 100.0 * raw_total.Rate());
  std::printf("    pruned:  %zu/%zu (%.1f%%)\n", pruned_total.covered,
              pruned_total.scored, 100.0 * pruned_total.Rate());
  std::printf("\n(the pruned coverage should sit closer to the nominal "
              "level — the paper's Figure 3 vs Figure 4 contrast)\n");
  return 0;
}
