// Figure emission: prints the console table and writes the gnuplot
// .dat file into the output directory (CROWDEVAL_OUT or cwd).

#ifndef CROWD_EXPERIMENTS_REPORT_H_
#define CROWD_EXPERIMENTS_REPORT_H_

#include <string>

#include "experiments/series.h"

namespace crowd::experiments {

/// \brief Where .dat files go: $CROWDEVAL_OUT if set, else ".".
std::string OutputDirectory();

/// \brief Prints the table to stdout and writes <out>/<name>.dat.
/// I/O failures are logged, not fatal (the printed table remains the
/// primary artifact).
void EmitFigure(const Figure& figure);

}  // namespace crowd::experiments

#endif  // CROWD_EXPERIMENTS_REPORT_H_
