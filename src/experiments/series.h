// Figure data containers: named series of (x, y) points, renderable as
// an aligned console table and as gnuplot-ready .dat files — the
// benches reproduce every figure of the paper through this type.

#ifndef CROWD_EXPERIMENTS_SERIES_H_
#define CROWD_EXPERIMENTS_SERIES_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace crowd::experiments {

struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
};

/// \brief One plotted line.
struct Series {
  std::string label;
  std::vector<SeriesPoint> points;
};

/// \brief One figure panel of the paper.
struct Figure {
  /// Short id, e.g. "fig2a"; used as the .dat file stem.
  std::string name;
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<Series> series;

  /// Adds a point to the series with the given label, creating it on
  /// first use.
  void AddPoint(const std::string& label, double x, double y);
};

/// \brief Renders the figure as an aligned console table (x column
/// plus one column per series; missing cells render as "-").
std::string RenderTable(const Figure& figure, int precision = 4);

/// \brief Writes `<dir>/<name>.dat`: a gnuplot-ready whitespace table
/// with a comment header naming the columns.
Status WriteGnuplotData(const Figure& figure, const std::string& dir);

}  // namespace crowd::experiments

#endif  // CROWD_EXPERIMENTS_SERIES_H_
