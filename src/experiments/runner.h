// Repetition driver for the synthetic experiments: deterministic
// seeding, environment/CLI-controlled repetition counts, and the
// standard confidence-level sweep the paper uses.

#ifndef CROWD_EXPERIMENTS_RUNNER_H_
#define CROWD_EXPERIMENTS_RUNNER_H_

#include <functional>
#include <vector>

#include "rng/random.h"

namespace crowd::experiments {

/// \brief Repetition configuration shared by the figure benches.
struct RunConfig {
  /// Trials per configuration. The paper uses 500; the benches default
  /// lower so the full suite stays fast, and scale up via
  /// CROWDEVAL_REPS or --reps.
  int reps = 120;
  uint64_t seed = 20150412;  // Arbitrary fixed default.
};

/// \brief Resolves the repetition count: `--reps=N` in (argc, argv)
/// wins, then the CROWDEVAL_REPS environment variable, then
/// `default_reps`.
int ResolveReps(int default_reps, int argc = 0,
                const char* const* argv = nullptr);

/// \brief Calls fn(trial_index, &rng) `reps` times, each trial with an
/// independently forked RNG stream, deterministically in `seed`.
void RepeatTrials(int reps, uint64_t seed,
                  const std::function<void(int, Random*)>& fn);

/// \brief The paper's confidence-level grid {0.05, 0.10, ..., 0.95}.
std::vector<double> ConfidenceGrid();

/// \brief The paper's density grid {0.5, 0.55, ..., 0.95}.
std::vector<double> DensityGrid();

}  // namespace crowd::experiments

#endif  // CROWD_EXPERIMENTS_RUNNER_H_
