// Scoring metrics for confidence intervals, as defined by the paper's
// evaluation protocol:
//   interval-accuracy — fraction of intervals containing the true
//     value (should match the nominal confidence; the y = x line in
//     the accuracy figures);
//   average interval size — hi - lo, averaged over all intervals.

#ifndef CROWD_EXPERIMENTS_METRICS_H_
#define CROWD_EXPERIMENTS_METRICS_H_

#include "stats/descriptive.h"
#include "stats/intervals.h"

namespace crowd::experiments {

/// \brief Accumulates coverage and size over many intervals.
class IntervalScore {
 public:
  /// Scores one interval against the true value it targets.
  void Add(const stats::ConfidenceInterval& interval, double truth);

  size_t total() const { return total_; }
  size_t covered() const { return covered_; }

  /// covered / total; 0 when empty.
  double Accuracy() const;

  /// Mean of interval sizes; 0 when empty.
  double MeanSize() const;

  void Merge(const IntervalScore& other);

 private:
  size_t total_ = 0;
  size_t covered_ = 0;
  stats::RunningStat sizes_;
};

}  // namespace crowd::experiments

#endif  // CROWD_EXPERIMENTS_METRICS_H_
