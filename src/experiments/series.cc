#include "experiments/series.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/csv.h"
#include "util/string_util.h"

namespace crowd::experiments {

namespace {

// Collects the sorted union of x values across all series and a lookup
// from (series, x) to y.
struct Grid {
  std::vector<double> xs;
  // One map per series: x -> y.
  std::vector<std::map<double, double>> lookup;
};

Grid BuildGrid(const Figure& figure) {
  Grid grid;
  std::set<double> xs;
  grid.lookup.resize(figure.series.size());
  for (size_t s = 0; s < figure.series.size(); ++s) {
    for (const auto& point : figure.series[s].points) {
      xs.insert(point.x);
      grid.lookup[s][point.x] = point.y;
    }
  }
  grid.xs.assign(xs.begin(), xs.end());
  return grid;
}

}  // namespace

void Figure::AddPoint(const std::string& label, double x, double y) {
  for (auto& existing : series) {
    if (existing.label == label) {
      existing.points.push_back({x, y});
      return;
    }
  }
  series.push_back({label, {{x, y}}});
}

std::string RenderTable(const Figure& figure, int precision) {
  Grid grid = BuildGrid(figure);
  std::vector<std::vector<std::string>> cells;

  std::vector<std::string> header;
  header.push_back(figure.x_label.empty() ? "x" : figure.x_label);
  for (const auto& s : figure.series) header.push_back(s.label);
  cells.push_back(header);

  for (double x : grid.xs) {
    std::vector<std::string> row;
    row.push_back(StrFormat("%.*g", precision + 2, x));
    for (size_t s = 0; s < figure.series.size(); ++s) {
      auto it = grid.lookup[s].find(x);
      row.push_back(it == grid.lookup[s].end()
                        ? "-"
                        : StrFormat("%.*f", precision, it->second));
    }
    cells.push_back(row);
  }

  // Column widths.
  std::vector<size_t> widths(header.size(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  out += "== " + figure.name + ": " + figure.title + " ==\n";
  if (!figure.y_label.empty()) out += "(y: " + figure.y_label + ")\n";
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      if (c > 0) out += "  ";
      // Right-align numbers under their header.
      out += StrFormat("%*s", static_cast<int>(widths[c]),
                       cells[r][c].c_str());
    }
    out += "\n";
    if (r == 0) {
      size_t rule = 0;
      for (size_t c = 0; c < widths.size(); ++c) {
        rule += widths[c] + (c > 0 ? 2 : 0);
      }
      out += std::string(rule, '-') + "\n";
    }
  }
  return out;
}

Status WriteGnuplotData(const Figure& figure, const std::string& dir) {
  Grid grid = BuildGrid(figure);
  std::string text = "# " + figure.name + ": " + figure.title + "\n";
  text += "# x";
  for (const auto& s : figure.series) text += "\t" + s.label;
  text += "\n";
  for (double x : grid.xs) {
    text += StrFormat("%.10g", x);
    for (size_t s = 0; s < figure.series.size(); ++s) {
      auto it = grid.lookup[s].find(x);
      text += it == grid.lookup[s].end()
                  ? "\tnan"
                  : StrFormat("\t%.10g", it->second);
    }
    text += "\n";
  }
  return WriteStringToFile(text, dir + "/" + figure.name + ".dat");
}

}  // namespace crowd::experiments
