#include "experiments/metrics.h"

namespace crowd::experiments {

void IntervalScore::Add(const stats::ConfidenceInterval& interval,
                        double truth) {
  ++total_;
  if (interval.Contains(truth)) ++covered_;
  sizes_.Add(interval.size());
}

double IntervalScore::Accuracy() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(covered_) / static_cast<double>(total_);
}

double IntervalScore::MeanSize() const { return sizes_.mean(); }

void IntervalScore::Merge(const IntervalScore& other) {
  total_ += other.total_;
  covered_ += other.covered_;
  sizes_.Merge(other.sizes_);
}

}  // namespace crowd::experiments
