#include "experiments/runner.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace crowd::experiments {

int ResolveReps(int default_reps, int argc, const char* const* argv) {
  int reps = default_reps;
  if (const char* env = std::getenv("CROWDEVAL_REPS")) {
    auto parsed = ParseInt(env);
    if (parsed.ok() && *parsed > 0) {
      reps = static_cast<int>(*parsed);
    } else {
      CROWD_LOG_WARNING << "ignoring invalid CROWDEVAL_REPS='" << env
                        << "'";
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      auto parsed = ParseInt(arg + 7);
      if (parsed.ok() && *parsed > 0) {
        reps = static_cast<int>(*parsed);
      } else {
        CROWD_LOG_WARNING << "ignoring invalid " << arg;
      }
    }
  }
  return reps;
}

void RepeatTrials(int reps, uint64_t seed,
                  const std::function<void(int, Random*)>& fn) {
  Random root(seed);
  for (int trial = 0; trial < reps; ++trial) {
    Random stream = root.Fork();
    fn(trial, &stream);
  }
}

std::vector<double> ConfidenceGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 19; ++i) grid.push_back(0.05 * i);
  return grid;
}

std::vector<double> DensityGrid() {
  std::vector<double> grid;
  for (int i = 0; i <= 9; ++i) grid.push_back(0.5 + 0.05 * i);
  return grid;
}

}  // namespace crowd::experiments
