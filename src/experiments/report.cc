#include "experiments/report.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace crowd::experiments {

std::string OutputDirectory() {
  const char* env = std::getenv("CROWDEVAL_OUT");
  return env != nullptr && env[0] != '\0' ? env : ".";
}

void EmitFigure(const Figure& figure) {
  std::fputs(RenderTable(figure).c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
  Status status = WriteGnuplotData(figure, OutputDirectory());
  if (!status.ok()) {
    CROWD_LOG_WARNING << "could not write " << figure.name
                      << ".dat: " << status.ToString();
  }
}

}  // namespace crowd::experiments
