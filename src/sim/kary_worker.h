// k-ary worker models: each worker owns a k x k response-probability
// matrix; Section IV-B's experiments draw each worker's matrix
// uniformly from a pool of three arity-specific matrices, reproduced
// verbatim here.

#ifndef CROWD_SIM_KARY_WORKER_H_
#define CROWD_SIM_KARY_WORKER_H_

#include <vector>

#include "linalg/matrix.h"
#include "rng/random.h"
#include "util/result.h"

namespace crowd::sim {

/// \brief The paper's pool of response-probability matrices for
/// arity 2, 3 or 4 (Section IV-B). Fails for other arities.
Result<std::vector<linalg::Matrix>> PaperMatrixPool(int arity);

/// \brief A diagonally-dominant random response matrix: diagonal entry
/// ~ U[diag_lo, diag_hi], off-diagonal mass spread with random
/// proportions. Useful for property tests and the dataset synthesizers.
linalg::Matrix RandomResponseMatrix(int arity, double diag_lo,
                                    double diag_hi, Random* rng);

/// \brief A response matrix biased toward adjacent classes (graders
/// who confuse a grade mostly with its neighbors), used by the MOOC
/// analogue.
linalg::Matrix AdjacentBiasMatrix(int arity, double correct, Random* rng);

/// \brief Assigns one matrix per worker, drawn uniformly from `pool`.
std::vector<linalg::Matrix> DrawWorkerMatrices(
    const std::vector<linalg::Matrix>& pool, size_t num_workers,
    Random* rng);

/// \brief Samples a response given the true class and a worker matrix
/// (categorical draw over row `truth`).
int SampleResponse(const linalg::Matrix& response_matrix, int truth,
                   Random* rng);

}  // namespace crowd::sim

#endif  // CROWD_SIM_KARY_WORKER_H_
