#include "sim/simulator.h"

#include "util/logging.h"

namespace crowd::sim {

BinarySimOutput SimulateBinary(const BinarySimConfig& config, Random* rng) {
  CROWD_CHECK(rng != nullptr);
  const size_t m = config.num_workers;
  const size_t n = config.num_tasks;

  std::vector<double> rates = DrawErrorRates(config.pool, m, rng);
  std::vector<double> difficulty =
      DrawTaskDifficulty(n, config.task_difficulty_sd, rng);
  auto mask = DrawAssignment(config.assignment, m, n, rng);

  data::ResponseMatrix responses(m, n, 2);
  data::Dataset dataset("binary-sim", std::move(responses));
  for (data::TaskId t = 0; t < n; ++t) {
    int truth = rng->Bernoulli(config.positive_prior) ? 1 : 0;
    dataset.SetGold(t, truth).AbortIfNotOk();
    for (data::WorkerId w = 0; w < m; ++w) {
      if (!mask[w][t]) continue;
      double p = EffectiveErrorRate(rates[w], difficulty[t]);
      int response = rng->Bernoulli(p) ? 1 - truth : truth;
      dataset.mutable_responses()->Set(w, t, response).AbortIfNotOk();
    }
  }
  return BinarySimOutput{std::move(dataset), std::move(rates)};
}

Result<KarySimOutput> SimulateKary(const KarySimConfig& config,
                                   Random* rng) {
  CROWD_CHECK(rng != nullptr);
  const size_t m = config.num_workers;
  const size_t n = config.num_tasks;
  const int k = config.arity;

  std::vector<linalg::Matrix> pool = config.matrix_pool;
  if (pool.empty()) {
    CROWD_ASSIGN_OR_RETURN(pool, PaperMatrixPool(k));
  }
  for (const auto& matrix : pool) {
    if (matrix.rows() != static_cast<size_t>(k) ||
        matrix.cols() != static_cast<size_t>(k)) {
      return Status::Invalid("matrix pool entry does not match arity");
    }
  }
  linalg::Vector selectivity = config.selectivity;
  if (selectivity.empty()) {
    selectivity.assign(k, 1.0 / static_cast<double>(k));
  }
  if (selectivity.size() != static_cast<size_t>(k)) {
    return Status::Invalid("selectivity size does not match arity");
  }

  std::vector<linalg::Matrix> matrices = DrawWorkerMatrices(pool, m, rng);
  auto mask = DrawAssignment(config.assignment, m, n, rng);

  data::ResponseMatrix responses(m, n, k);
  data::Dataset dataset("kary-sim", std::move(responses));
  for (data::TaskId t = 0; t < n; ++t) {
    int truth = static_cast<int>(rng->Categorical(selectivity));
    CROWD_RETURN_NOT_OK(dataset.SetGold(t, truth));
    for (data::WorkerId w = 0; w < m; ++w) {
      if (!mask[w][t]) continue;
      int response = SampleResponse(matrices[w], truth, rng);
      CROWD_RETURN_NOT_OK(
          dataset.mutable_responses()->Set(w, t, response));
    }
  }
  return KarySimOutput{std::move(dataset), std::move(matrices)};
}

data::ResponseMatrix RemoveResponses(const data::ResponseMatrix& matrix,
                                     double fraction, Random* rng) {
  CROWD_CHECK(rng != nullptr);
  return matrix.Thinned(fraction, [rng]() { return rng->NextDouble(); });
}

}  // namespace crowd::sim
