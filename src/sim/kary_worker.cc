#include "sim/kary_worker.h"

#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace crowd::sim {

Result<std::vector<linalg::Matrix>> PaperMatrixPool(int arity) {
  using linalg::Matrix;
  switch (arity) {
    case 2:
      return std::vector<Matrix>{
          Matrix{{0.9, 0.1}, {0.2, 0.8}},
          Matrix{{0.8, 0.2}, {0.1, 0.9}},
          Matrix{{0.9, 0.1}, {0.1, 0.9}},
      };
    case 3:
      return std::vector<Matrix>{
          Matrix{{0.6, 0.3, 0.1}, {0.1, 0.6, 0.3}, {0.3, 0.1, 0.6}},
          Matrix{{0.8, 0.1, 0.1}, {0.2, 0.8, 0.0}, {0.0, 0.2, 0.8}},
          Matrix{{0.9, 0.0, 0.1}, {0.1, 0.9, 0.0}, {0.0, 0.2, 0.8}},
      };
    case 4:
      return std::vector<Matrix>{
          Matrix{{0.7, 0.1, 0.1, 0.1},
                 {0.1, 0.6, 0.2, 0.1},
                 {0.0, 0.1, 0.8, 0.1},
                 {0.2, 0.1, 0.0, 0.7}},
          Matrix{{0.8, 0.1, 0.0, 0.1},
                 {0.1, 0.8, 0.0, 0.1},
                 {0.1, 0.1, 0.7, 0.1},
                 {0.0, 0.1, 0.2, 0.7}},
          Matrix{{0.6, 0.1, 0.2, 0.1},
                 {0.0, 0.7, 0.1, 0.2},
                 {0.1, 0.0, 0.9, 0.0},
                 {0.2, 0.0, 0.0, 0.8}},
      };
    default:
      return Status::Invalid(StrFormat(
          "the paper's matrix pool covers arity 2-4, requested %d",
          arity));
  }
}

linalg::Matrix RandomResponseMatrix(int arity, double diag_lo,
                                    double diag_hi, Random* rng) {
  CROWD_CHECK(rng != nullptr);
  linalg::Matrix m(arity, arity);
  for (int r = 0; r < arity; ++r) {
    double diag = rng->Uniform(diag_lo, diag_hi);
    // Random off-diagonal proportions.
    double remaining = 1.0 - diag;
    std::vector<double> weights(arity - 1);
    double total = 0.0;
    for (double& w : weights) {
      w = rng->Uniform(0.05, 1.0);
      total += w;
    }
    int idx = 0;
    for (int c = 0; c < arity; ++c) {
      if (c == r) {
        m(r, c) = diag;
      } else {
        m(r, c) = remaining * weights[idx++] / total;
      }
    }
  }
  return m;
}

linalg::Matrix AdjacentBiasMatrix(int arity, double correct, Random* rng) {
  CROWD_CHECK(rng != nullptr);
  linalg::Matrix m(arity, arity);
  for (int r = 0; r < arity; ++r) {
    double diag = correct + rng->Uniform(-0.05, 0.05);
    double remaining = 1.0 - diag;
    // Off-diagonal mass decays geometrically with grade distance.
    std::vector<double> weights(arity, 0.0);
    double total = 0.0;
    for (int c = 0; c < arity; ++c) {
      if (c == r) continue;
      weights[c] = std::pow(0.35, std::abs(c - r) - 1);
      total += weights[c];
    }
    for (int c = 0; c < arity; ++c) {
      m(r, c) = (c == r) ? diag : remaining * weights[c] / total;
    }
  }
  return m;
}

std::vector<linalg::Matrix> DrawWorkerMatrices(
    const std::vector<linalg::Matrix>& pool, size_t num_workers,
    Random* rng) {
  CROWD_CHECK(rng != nullptr);
  CROWD_CHECK(!pool.empty());
  std::vector<linalg::Matrix> matrices;
  matrices.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    matrices.push_back(pool[rng->UniformInt(pool.size())]);
  }
  return matrices;
}

int SampleResponse(const linalg::Matrix& response_matrix, int truth,
                   Random* rng) {
  CROWD_CHECK(rng != nullptr);
  return static_cast<int>(
      rng->Categorical(response_matrix.Row(static_cast<size_t>(truth))));
}

}  // namespace crowd::sim
