// End-to-end synthetic dataset simulators reproducing the paper's
// experimental protocols: draw ground truths, worker parameters and an
// assignment, then sample responses. Gold labels are attached to every
// task so the experiment harness can score intervals against truth.

#ifndef CROWD_SIM_SIMULATOR_H_
#define CROWD_SIM_SIMULATOR_H_

#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "rng/random.h"
#include "sim/assignment.h"
#include "sim/binary_worker.h"
#include "sim/kary_worker.h"
#include "util/result.h"

namespace crowd::sim {

/// \brief Binary simulation protocol (Sections III-A/D).
struct BinarySimConfig {
  size_t num_workers = 3;
  size_t num_tasks = 100;
  BinaryPoolConfig pool;
  AssignmentConfig assignment = AssignmentConfig::Regular();
  /// Prior probability that a task's true response is 1.
  double positive_prior = 0.5;
  /// Std-dev of the per-task difficulty offset (0 = the paper's iid
  /// model; > 0 mimics real datasets).
  double task_difficulty_sd = 0.0;
};

/// \brief A simulated binary dataset plus its hidden parameters.
struct BinarySimOutput {
  data::Dataset dataset;
  /// The workers' *base* error rates p_i.
  std::vector<double> true_error_rates;
};

/// \brief Runs the binary protocol.
BinarySimOutput SimulateBinary(const BinarySimConfig& config, Random* rng);

/// \brief k-ary simulation protocol (Section IV-B).
struct KarySimConfig {
  size_t num_workers = 3;
  size_t num_tasks = 500;
  int arity = 3;
  /// Pool of response matrices; each worker gets one uniformly.
  /// Empty = use the paper's pool for the arity.
  std::vector<linalg::Matrix> matrix_pool;
  /// Prior over true responses; empty = uniform.
  linalg::Vector selectivity;
  AssignmentConfig assignment = AssignmentConfig::Regular();
};

/// \brief A simulated k-ary dataset plus its hidden parameters.
struct KarySimOutput {
  data::Dataset dataset;
  std::vector<linalg::Matrix> true_matrices;
};

/// \brief Runs the k-ary protocol. Fails only when `matrix_pool` is
/// empty and the arity has no paper pool.
Result<KarySimOutput> SimulateKary(const KarySimConfig& config,
                                   Random* rng);

/// \brief Removes `fraction` of the responses uniformly at random —
/// the paper's protocol for de-regularizing the IC dataset.
data::ResponseMatrix RemoveResponses(const data::ResponseMatrix& matrix,
                                     double fraction, Random* rng);

}  // namespace crowd::sim

#endif  // CROWD_SIM_SIMULATOR_H_
