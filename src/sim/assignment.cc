#include "sim/assignment.h"

#include "util/logging.h"

namespace crowd::sim {

AssignmentConfig AssignmentConfig::PaperHeterogeneous(size_t num_workers) {
  std::vector<double> densities(num_workers);
  const double m = static_cast<double>(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    const double rank = static_cast<double>(i + 1);  // 1-based in paper.
    densities[i] = (0.5 * rank + (m - rank)) / m;
  }
  return PerWorker(std::move(densities));
}

std::vector<std::vector<bool>> DrawAssignment(const AssignmentConfig& config,
                                              size_t num_workers,
                                              size_t num_tasks,
                                              Random* rng) {
  CROWD_CHECK(rng != nullptr);
  std::vector<std::vector<bool>> mask(num_workers,
                                      std::vector<bool>(num_tasks, false));
  switch (config.kind) {
    case AssignmentConfig::Kind::kRegular:
      for (auto& row : mask) row.assign(num_tasks, true);
      break;
    case AssignmentConfig::Kind::kIidDensity:
      for (auto& row : mask) {
        for (size_t t = 0; t < num_tasks; ++t) {
          row[t] = rng->Bernoulli(config.density);
        }
      }
      break;
    case AssignmentConfig::Kind::kPerWorkerDensity:
      CROWD_CHECK_EQ(config.per_worker_density.size(), num_workers);
      for (size_t w = 0; w < num_workers; ++w) {
        for (size_t t = 0; t < num_tasks; ++t) {
          mask[w][t] = rng->Bernoulli(config.per_worker_density[w]);
        }
      }
      break;
  }
  return mask;
}

}  // namespace crowd::sim
