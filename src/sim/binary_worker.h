// Binary worker models for the synthetic experiments of Section III:
// each worker has an inherent error rate p_i drawn from a pool
// ({0.1, 0.2, 0.3} in the paper), optionally with a spammer admixture
// and per-task difficulty noise that breaks the independence assumption
// the way real data does (Section III-E).

#ifndef CROWD_SIM_BINARY_WORKER_H_
#define CROWD_SIM_BINARY_WORKER_H_

#include <vector>

#include "rng/random.h"

namespace crowd::sim {

/// \brief Worker-pool configuration for binary tasks.
struct BinaryPoolConfig {
  /// Error rates sampled uniformly per worker (the paper's
  /// {0.1, 0.2, 0.3}).
  std::vector<double> error_rates = {0.1, 0.2, 0.3};
  /// Fraction of workers replaced by spammers with error rates drawn
  /// uniformly from [spammer_lo, spammer_hi].
  double spammer_fraction = 0.0;
  double spammer_lo = 0.42;
  double spammer_hi = 0.55;
};

/// \brief Draws one error rate per worker.
std::vector<double> DrawErrorRates(const BinaryPoolConfig& config,
                                   size_t num_workers, Random* rng);

/// \brief Per-task difficulty offsets: delta_t ~ N(0, sd), so the
/// effective error rate of every worker on task t becomes
/// clamp(p_i + delta_t, floor, ceiling). A common offset across
/// workers induces exactly the kind of error correlation real task
/// pools exhibit.
std::vector<double> DrawTaskDifficulty(size_t num_tasks, double sd,
                                       Random* rng);

/// \brief The probability worker with base rate `p` errs on a task
/// with difficulty offset `delta` (clamped into [0.001, 0.6]).
double EffectiveErrorRate(double p, double delta);

}  // namespace crowd::sim

#endif  // CROWD_SIM_BINARY_WORKER_H_
