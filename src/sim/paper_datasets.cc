#include "sim/paper_datasets.h"

#include <algorithm>
#include <cmath>

#include "rng/random.h"
#include "sim/binary_worker.h"
#include "sim/kary_worker.h"
#include "util/logging.h"

namespace crowd::sim {

namespace {

// A worker-quality mixture: (fraction good, fraction weak, rest
// spammers), with error ranges per class.
struct QualityMix {
  double good_fraction = 0.75;
  double weak_fraction = 0.15;
  double good_lo = 0.05, good_hi = 0.30;
  double weak_lo = 0.30, weak_hi = 0.42;
  double spam_lo = 0.45, spam_hi = 0.55;
};

std::vector<double> DrawMixedRates(const QualityMix& mix, size_t m,
                                   Random* rng) {
  std::vector<double> rates(m);
  for (size_t w = 0; w < m; ++w) {
    double u = rng->NextDouble();
    if (u < mix.good_fraction) {
      rates[w] = rng->Uniform(mix.good_lo, mix.good_hi);
    } else if (u < mix.good_fraction + mix.weak_fraction) {
      rates[w] = rng->Uniform(mix.weak_lo, mix.weak_hi);
    } else {
      rates[w] = rng->Uniform(mix.spam_lo, mix.spam_hi);
    }
  }
  return rates;
}

// Builds a binary dataset from an explicit attempt mask and per-worker
// error rates, with per-task difficulty offsets.
data::Dataset BuildBinary(const std::string& name, size_t m, size_t n,
                          const std::vector<std::vector<bool>>& mask,
                          const std::vector<double>& rates,
                          double difficulty_sd, double positive_prior,
                          Random* rng) {
  std::vector<double> difficulty = DrawTaskDifficulty(n, difficulty_sd, rng);
  data::Dataset dataset(name, data::ResponseMatrix(m, n, 2));
  for (data::TaskId t = 0; t < n; ++t) {
    int truth = rng->Bernoulli(positive_prior) ? 1 : 0;
    dataset.SetGold(t, truth).AbortIfNotOk();
    for (data::WorkerId w = 0; w < m; ++w) {
      if (!mask[w][t]) continue;
      double p = EffectiveErrorRate(rates[w], difficulty[t]);
      int response = rng->Bernoulli(p) ? 1 - truth : truth;
      dataset.mutable_responses()->Set(w, t, response).AbortIfNotOk();
    }
  }
  return dataset;
}

// Sparse crowd-market assignment with HIT structure: tasks come in
// contiguous batches ("HITs") of `hit_size`, each HIT is taken by
// `workers_per_hit` distinct workers sampled with long-tailed activity
// weights (a few prolific workers, many occasional ones). This mirrors
// how Mechanical Turk distributed the Snow et al. annotation work: a
// worker labels whole pages of items, so two workers share either
// nothing or whole batches — never a single stray task.
std::vector<std::vector<bool>> LongTailAssignment(size_t m, size_t n,
                                                  size_t hit_size,
                                                  size_t workers_per_hit,
                                                  double tail_sd,
                                                  Random* rng) {
  std::vector<double> activity(m);
  for (double& a : activity) a = std::exp(rng->Gaussian(0.0, tail_sd));
  std::vector<std::vector<bool>> mask(m, std::vector<bool>(n, false));
  std::vector<double> weights(m);
  for (size_t hit_start = 0; hit_start < n; hit_start += hit_size) {
    size_t hit_end = std::min(hit_start + hit_size, n);
    weights = activity;
    for (size_t pick = 0; pick < std::min(workers_per_hit, m); ++pick) {
      size_t w = rng->Categorical(weights);
      weights[w] = 0.0;  // Without replacement within the HIT.
      for (size_t t = hit_start; t < hit_end; ++t) mask[w][t] = true;
    }
  }
  return mask;
}

// Window assignment: worker w attempts `window` consecutive tasks
// starting at an evenly-spaced offset (wrapping), so nearby workers
// share large task blocks — the structure peer-grading pools exhibit.
std::vector<std::vector<bool>> WindowAssignment(size_t m, size_t n,
                                                size_t window) {
  std::vector<std::vector<bool>> mask(m, std::vector<bool>(n, false));
  for (data::WorkerId w = 0; w < m; ++w) {
    size_t start = (w * n) / m;
    for (size_t offset = 0; offset < window; ++offset) {
      mask[w][(start + offset) % n] = true;
    }
  }
  return mask;
}

// Builds a k-ary dataset from per-worker response matrices.
data::Dataset BuildKary(const std::string& name, size_t m, size_t n,
                        int arity,
                        const std::vector<std::vector<bool>>& mask,
                        const std::vector<linalg::Matrix>& matrices,
                        const linalg::Vector& selectivity, Random* rng) {
  data::Dataset dataset(name, data::ResponseMatrix(m, n, arity));
  for (data::TaskId t = 0; t < n; ++t) {
    int truth = static_cast<int>(rng->Categorical(selectivity));
    dataset.SetGold(t, truth).AbortIfNotOk();
    for (data::WorkerId w = 0; w < m; ++w) {
      if (!mask[w][t]) continue;
      int response = SampleResponse(matrices[w], truth, rng);
      dataset.mutable_responses()->Set(w, t, response).AbortIfNotOk();
    }
  }
  return dataset;
}

}  // namespace

data::Dataset SyntheticIc(uint64_t seed) {
  Random rng(seed ^ 0x1c1c1c1cULL);
  const size_t m = 19, n = 48;
  QualityMix mix;  // Defaults: 75% good / 15% weak / 10% spammers.
  std::vector<double> rates = DrawMixedRates(mix, m, &rng);
  std::vector<std::vector<bool>> mask(m, std::vector<bool>(n, true));
  return BuildBinary("IC", m, n, mask, rates, /*difficulty_sd=*/0.08,
                     /*positive_prior=*/0.5, &rng);
}

data::Dataset SyntheticRte(uint64_t seed) {
  Random rng(seed ^ 0x47e47e4ULL);
  const size_t m = 164, n = 800;
  // Open-call MTurk pools (Snow et al. imposed no qualification) carry
  // a sizable pure-spammer contingent — the population whose removal
  // drives the paper's Figure 3 -> Figure 4 repair.
  QualityMix mix;
  mix.good_fraction = 0.72;
  mix.weak_fraction = 0.10;
  std::vector<double> rates = DrawMixedRates(mix, m, &rng);
  auto mask = LongTailAssignment(m, n, /*hit_size=*/20,
                                 /*workers_per_hit=*/10,
                                 /*tail_sd=*/1.1, &rng);
  return BuildBinary("RTE", m, n, mask, rates, /*difficulty_sd=*/0.05,
                     /*positive_prior=*/0.5, &rng);
}

data::Dataset SyntheticTem(uint64_t seed) {
  Random rng(seed ^ 0x7e307e3ULL);
  const size_t m = 76, n = 462;
  QualityMix mix;
  mix.good_fraction = 0.72;
  mix.weak_fraction = 0.10;
  std::vector<double> rates = DrawMixedRates(mix, m, &rng);
  auto mask = LongTailAssignment(m, n, /*hit_size=*/21,
                                 /*workers_per_hit=*/10,
                                 /*tail_sd=*/1.0, &rng);
  return BuildBinary("TEM", m, n, mask, rates, /*difficulty_sd=*/0.05,
                     /*positive_prior=*/0.45, &rng);
}

data::Dataset SyntheticMooc(uint64_t seed) {
  Random rng(seed ^ 0x300cULL);
  const size_t m = 60, n = 300;
  const int arity = 3;
  std::vector<linalg::Matrix> matrices;
  matrices.reserve(m);
  for (size_t w = 0; w < m; ++w) {
    matrices.push_back(
        AdjacentBiasMatrix(arity, rng.Uniform(0.55, 0.85), &rng));
  }
  auto mask = WindowAssignment(m, n, /*window=*/150);
  linalg::Vector selectivity = {0.25, 0.45, 0.30};
  return BuildKary("MOOC", m, n, arity, mask, matrices, selectivity,
                   &rng);
}

data::Dataset SyntheticWsd(uint64_t seed) {
  Random rng(seed ^ 0x55dULL);
  const size_t m = 35, n = 350;
  const int arity = 2;
  std::vector<linalg::Matrix> matrices;
  matrices.reserve(m);
  for (size_t w = 0; w < m; ++w) {
    // Accurate annotators (Snow et al. report high WSD agreement) with
    // mild per-worker bias.
    matrices.push_back(RandomResponseMatrix(arity, 0.80, 0.97, &rng));
  }
  auto mask = WindowAssignment(m, n, /*window=*/175);
  linalg::Vector selectivity = {0.82, 0.18};
  return BuildKary("WSD", m, n, arity, mask, matrices, selectivity, &rng);
}

data::Dataset SyntheticWs(uint64_t seed) {
  Random rng(seed ^ 0x33557799ULL);
  const size_t m = 40, n = 200;
  const int arity = 2;
  std::vector<linalg::Matrix> matrices;
  matrices.reserve(m);
  for (size_t w = 0; w < m; ++w) {
    matrices.push_back(RandomResponseMatrix(arity, 0.65, 0.9, &rng));
  }
  auto mask = WindowAssignment(m, n, /*window=*/60);
  linalg::Vector selectivity = {0.55, 0.45};
  return BuildKary("WS", m, n, arity, mask, matrices, selectivity, &rng);
}

Result<data::Dataset> MakePaperDataset(const std::string& name,
                                       uint64_t seed) {
  if (name == "IC") return SyntheticIc(seed);
  if (name == "RTE") return SyntheticRte(seed);
  if (name == "TEM") return SyntheticTem(seed);
  if (name == "MOOC") return SyntheticMooc(seed);
  if (name == "WSD") return SyntheticWsd(seed);
  if (name == "WS") return SyntheticWs(seed);
  return Status::NotFound("unknown paper dataset: " + name);
}

const std::vector<std::string>& PaperDatasetNames() {
  static const std::vector<std::string> kNames = {"IC",   "RTE", "TEM",
                                                  "MOOC", "WSD", "WS"};
  return kNames;
}

}  // namespace crowd::sim
