// Worker-to-task assignment models used by the synthetic experiments:
// regular (everyone attempts everything), iid density (each worker-
// task pair attempted with probability d — Section III-D1/2) and
// per-worker densities (Section III-D3's d_i = (0.5 i + m - i)/m).

#ifndef CROWD_SIM_ASSIGNMENT_H_
#define CROWD_SIM_ASSIGNMENT_H_

#include <vector>

#include "rng/random.h"

namespace crowd::sim {

/// \brief Assignment model configuration.
struct AssignmentConfig {
  enum class Kind {
    kRegular,
    kIidDensity,
    kPerWorkerDensity,
  };
  Kind kind = Kind::kRegular;
  /// For kIidDensity: the attempt probability for every pair.
  double density = 1.0;
  /// For kPerWorkerDensity: attempt probability per worker (size m).
  std::vector<double> per_worker_density;

  static AssignmentConfig Regular() { return {}; }
  static AssignmentConfig Iid(double density) {
    return {Kind::kIidDensity, density, {}};
  }
  static AssignmentConfig PerWorker(std::vector<double> densities) {
    return {Kind::kPerWorkerDensity, 1.0, std::move(densities)};
  }

  /// The paper's Fig. 2(c) profile: d_i = (0.5 i + (m - i)) / m for
  /// worker i in 1..m, so different workers attempt very different
  /// numbers of tasks.
  static AssignmentConfig PaperHeterogeneous(size_t num_workers);
};

/// \brief Draws the attempt mask: out[w][t] = true when worker w
/// attempts task t.
std::vector<std::vector<bool>> DrawAssignment(const AssignmentConfig& config,
                                              size_t num_workers,
                                              size_t num_tasks,
                                              Random* rng);

}  // namespace crowd::sim

#endif  // CROWD_SIM_ASSIGNMENT_H_
