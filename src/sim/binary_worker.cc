#include "sim/binary_worker.h"

#include <algorithm>

#include "util/logging.h"

namespace crowd::sim {

std::vector<double> DrawErrorRates(const BinaryPoolConfig& config,
                                   size_t num_workers, Random* rng) {
  CROWD_CHECK(rng != nullptr);
  CROWD_CHECK(!config.error_rates.empty());
  std::vector<double> rates(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    if (config.spammer_fraction > 0.0 &&
        rng->Bernoulli(config.spammer_fraction)) {
      rates[w] = rng->Uniform(config.spammer_lo, config.spammer_hi);
    } else {
      rates[w] = config.error_rates[rng->UniformInt(
          config.error_rates.size())];
    }
  }
  return rates;
}

std::vector<double> DrawTaskDifficulty(size_t num_tasks, double sd,
                                       Random* rng) {
  CROWD_CHECK(rng != nullptr);
  std::vector<double> difficulty(num_tasks, 0.0);
  if (sd <= 0.0) return difficulty;
  for (double& d : difficulty) d = rng->Gaussian(0.0, sd);
  return difficulty;
}

double EffectiveErrorRate(double p, double delta) {
  return std::clamp(p + delta, 0.001, 0.6);
}

}  // namespace crowd::sim
