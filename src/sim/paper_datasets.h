// Synthetic analogues of the six real datasets the paper evaluates on.
// We do not have the originals (IC from the authors' SIGKDD'13 study;
// ENT/TEM/WSD/WS from Snow et al., EMNLP'08; MOOC from a Stanford
// course), so each synthesizer reproduces the *published shape* of its
// dataset — worker/task counts, arity (after the paper's arity
// reductions), sparsity pattern and the assumption violations that
// matter (task-difficulty correlation, spammer admixture, response
// bias). See DESIGN.md for the substitution rationale per dataset.
//
// All synthesizers are deterministic in the seed.

#ifndef CROWD_SIM_PAPER_DATASETS_H_
#define CROWD_SIM_PAPER_DATASETS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace crowd::sim {

/// IC (Image Comparison): 48 binary tasks x 19 workers, regular.
/// Mixed-quality pool with a spammer admixture and per-task
/// difficulty; the benches remove 20% of responses before evaluating,
/// exactly as the paper does.
data::Dataset SyntheticIc(uint64_t seed);

/// ENT / RTE (textual entailment): 800 binary tasks x 164 workers,
/// ~10 responses per task, long-tailed worker activity (sparse,
/// non-regular).
data::Dataset SyntheticRte(uint64_t seed);

/// TEM (temporal ordering): 462 binary tasks x 76 workers, ~10
/// responses per task.
data::Dataset SyntheticTem(uint64_t seed);

/// MOOC peer grading, after the paper's 6-ary -> 3-ary grade merge:
/// 3-ary, 60 graders x 300 submissions, graders share large task
/// windows (>= 60 common tasks for many triples), adjacent-grade bias.
data::Dataset SyntheticMooc(uint64_t seed);

/// WSD (word sense), after the paper's 3-ary -> binary merge: binary,
/// 35 workers x 350 tasks, skewed selectivity, accurate workers.
data::Dataset SyntheticWsd(uint64_t seed);

/// WS (word similarity), after the paper's 11-ary -> binary merge:
/// binary, 40 workers x 200 tasks, workers attempt ~60-task windows so
/// triples share about 30 tasks.
data::Dataset SyntheticWs(uint64_t seed);

/// \brief Synthesizes a dataset by name ("IC", "RTE", "TEM", "MOOC",
/// "WSD", "WS"); NotFound otherwise.
Result<data::Dataset> MakePaperDataset(const std::string& name,
                                       uint64_t seed);

/// \brief Names accepted by MakePaperDataset.
const std::vector<std::string>& PaperDatasetNames();

}  // namespace crowd::sim

#endif  // CROWD_SIM_PAPER_DATASETS_H_
