// Majority-vote aggregation: consensus labels per task and the
// disagreement-with-majority proxy error rate per worker. The paper
// uses this proxy to pre-filter "pure spammers" (proxy error > 0.4)
// before running the confidence-interval machinery (Section III-E2),
// and it doubles as a simple point-estimate baseline.

#ifndef CROWD_BASELINES_MAJORITY_VOTE_H_
#define CROWD_BASELINES_MAJORITY_VOTE_H_

#include <optional>
#include <vector>

#include "data/response_matrix.h"
#include "util/result.h"

namespace crowd::baselines {

/// \brief Consensus labels: per task, the plurality response among the
/// workers who attempted it (nullopt when nobody did). Ties break
/// toward the smallest response value, deterministically.
std::vector<std::optional<data::Response>> MajorityLabels(
    const data::ResponseMatrix& responses);

/// \brief Per-worker proxy error rates: the fraction of a worker's
/// responses that disagree with the majority label of the task.
///
/// When `exclude_self` is true the worker's own response is removed
/// from the vote before comparing (avoids self-agreement bias on thin
/// tasks). Workers with no usable task get nullopt.
std::vector<std::optional<double>> MajorityProxyErrorRates(
    const data::ResponseMatrix& responses, bool exclude_self = true);

}  // namespace crowd::baselines

#endif  // CROWD_BASELINES_MAJORITY_VOTE_H_
