// The "old technique" the paper compares against (reference [2],
// Joglekar et al., "Evaluating the crowd with confidence", KDD 2013),
// reconstructed for the Figure 1 comparison:
//
//  * 3 workers, binary, regular data, equal false-positive/negative
//    rates;
//  * each pairwise agreement rate gets its own c-confidence interval;
//  * the intervals are pushed through the triangulation function f by
//    monotone interval arithmetic (endpoints), so widths add up
//    linearly instead of combining in quadrature — which is exactly why
//    the old intervals are systematically wider than the new ones;
//  * for m > 3 workers the remaining workers are split into two
//    "super-workers" whose response is the majority of their group —
//    valid only on regular data (the paper explains why this breaks on
//    non-regular data, which is the gap the new technique fills).

#ifndef CROWD_BASELINES_OLD_TECHNIQUE_H_
#define CROWD_BASELINES_OLD_TECHNIQUE_H_

#include <vector>

#include "data/response_matrix.h"
#include "stats/intervals.h"
#include "util/result.h"

namespace crowd::baselines {

/// \brief One worker's assessment under the old technique.
struct OldAssessment {
  data::WorkerId worker = 0;
  /// Point estimate of the error rate (triangulation at the observed
  /// agreement rates).
  double error_rate = 0.0;
  stats::ConfidenceInterval interval;
};

/// Options for the old technique.
struct OldTechniqueOptions {
  double confidence = 0.95;
  /// Agreement rates (and interval endpoints) are clamped to at least
  /// 0.5 + this margin before entering the triangulation formula.
  double min_agreement_margin = 1e-6;
};

/// \brief Old-technique evaluation of worker `i` against two peers
/// `j` and `k` (binary tasks). Fails when a pair has no common tasks.
Result<OldAssessment> OldThreeWorkerEvaluate(
    const data::ResponseMatrix& responses, data::WorkerId i,
    data::WorkerId j, data::WorkerId k, const OldTechniqueOptions& options);

/// \brief Old-technique evaluation of every worker using the
/// super-worker construction. Requires binary, regular data (every
/// worker attempted every task); otherwise fails with InvalidArgument.
Result<std::vector<OldAssessment>> OldMWorkerEvaluate(
    const data::ResponseMatrix& responses,
    const OldTechniqueOptions& options);

}  // namespace crowd::baselines

#endif  // CROWD_BASELINES_OLD_TECHNIQUE_H_
