// The classical gold-standard worker evaluation the paper's intro
// describes: score each worker against known-correct tasks and report
// a standard binomial confidence interval. Serves as the "if you had
// ground truth" reference point in examples and ablations.

#ifndef CROWD_BASELINES_GOLD_STANDARD_H_
#define CROWD_BASELINES_GOLD_STANDARD_H_

#include <vector>

#include "data/dataset.h"
#include "stats/intervals.h"
#include "util/result.h"

namespace crowd::baselines {

/// \brief One worker's gold-standard scorecard.
struct GoldAssessment {
  data::WorkerId worker = 0;
  int attempted = 0;
  int wrong = 0;
  /// wrong / attempted.
  double error_rate = 0.0;
  stats::ConfidenceInterval wald;
  stats::ConfidenceInterval wilson;
};

/// \brief Evaluates one worker against the dataset's gold labels.
/// Fails with InsufficientData when the worker answered no gold task.
Result<GoldAssessment> EvaluateWorkerAgainstGold(
    const data::Dataset& dataset, data::WorkerId worker,
    double confidence);

/// \brief Evaluates all workers; workers without gold-labeled
/// responses are skipped (absent from the output).
std::vector<GoldAssessment> EvaluateAllAgainstGold(
    const data::Dataset& dataset, double confidence);

}  // namespace crowd::baselines

#endif  // CROWD_BASELINES_GOLD_STANDARD_H_
