#include "baselines/gold_standard.h"

#include "util/string_util.h"

namespace crowd::baselines {

Result<GoldAssessment> EvaluateWorkerAgainstGold(
    const data::Dataset& dataset, data::WorkerId worker,
    double confidence) {
  const auto& responses = dataset.responses();
  if (worker >= responses.num_workers()) {
    return Status::Invalid(StrFormat("worker id %zu out of range", worker));
  }
  GoldAssessment out;
  out.worker = worker;
  for (data::TaskId t = 0; t < responses.num_tasks(); ++t) {
    auto gold = dataset.Gold(t);
    if (!gold.has_value()) continue;
    auto r = responses.Get(worker, t);
    if (!r.has_value()) continue;
    ++out.attempted;
    if (*r != *gold) ++out.wrong;
  }
  if (out.attempted == 0) {
    return Status::InsufficientData(
        StrFormat("worker %zu answered no gold-labeled task", worker));
  }
  out.error_rate = static_cast<double>(out.wrong) / out.attempted;
  CROWD_ASSIGN_OR_RETURN(
      out.wald, stats::WaldInterval(out.wrong, out.attempted, confidence));
  CROWD_ASSIGN_OR_RETURN(
      out.wilson,
      stats::WilsonInterval(out.wrong, out.attempted, confidence));
  return out;
}

std::vector<GoldAssessment> EvaluateAllAgainstGold(
    const data::Dataset& dataset, double confidence) {
  std::vector<GoldAssessment> out;
  for (data::WorkerId w = 0; w < dataset.responses().num_workers(); ++w) {
    auto assessment = EvaluateWorkerAgainstGold(dataset, w, confidence);
    if (assessment.ok()) out.push_back(*assessment);
  }
  return out;
}

}  // namespace crowd::baselines
