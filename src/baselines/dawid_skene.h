// Dawid–Skene expectation-maximization (Applied Statistics, 1979): the
// classical point-estimate approach the paper's related-work section
// contrasts against. Estimates per-worker k x k confusion matrices,
// class priors and per-task label posteriors — but, unlike the paper's
// methods, provides no confidence intervals. Used here as an ablation
// baseline and in the examples.

#ifndef CROWD_BASELINES_DAWID_SKENE_H_
#define CROWD_BASELINES_DAWID_SKENE_H_

#include <vector>

#include "data/response_matrix.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::baselines {

/// Options for the EM iteration.
struct DawidSkeneOptions {
  int max_iterations = 100;
  /// Stop when the largest posterior change falls below this.
  double tolerance = 1e-6;
  /// Laplace smoothing added to confusion-matrix counts, keeping
  /// estimated probabilities strictly positive.
  double smoothing = 0.01;
};

/// \brief The fitted model.
struct DawidSkeneModel {
  /// Per-worker confusion matrices; entry (z, r) = P(respond r | truth z).
  std::vector<linalg::Matrix> confusion;
  /// Class priors, length = arity.
  linalg::Vector priors;
  /// Per-task posterior over the true label, tasks x arity.
  linalg::Matrix posteriors;
  /// argmax posterior per task.
  std::vector<data::Response> labels;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;

  /// Prior-weighted error rate of a worker:
  /// sum_z priors[z] * (1 - confusion[w](z, z)).
  double WorkerErrorRate(data::WorkerId w) const;
};

/// \brief Fits Dawid–Skene by EM, initialized from majority vote.
/// Fails when some task has no responses at all.
Result<DawidSkeneModel> FitDawidSkene(
    const data::ResponseMatrix& responses,
    const DawidSkeneOptions& options = {});

}  // namespace crowd::baselines

#endif  // CROWD_BASELINES_DAWID_SKENE_H_
