#include "baselines/old_technique.h"

#include <algorithm>
#include <cmath>

#include "data/overlap_index.h"
#include "stats/normal.h"
#include "util/string_util.h"

namespace crowd::baselines {

namespace {

// The triangulation formula (Equation 1 of the paper). Duplicated here
// deliberately: the old technique is a self-contained baseline and must
// not depend on crowd_core.
double TriangulateP(double q_ij, double q_ik, double q_jk) {
  return 0.5 - 0.5 * std::sqrt((2.0 * q_ij - 1.0) * (2.0 * q_ik - 1.0) /
                               (2.0 * q_jk - 1.0));
}

double ClampAgreement(double q, double margin) {
  return std::clamp(q, 0.5 + margin, 1.0);
}

// Wald interval endpoints for an agreement rate estimated over
// `common` tasks, clamped into the admissible (0.5, 1] domain.
Result<std::pair<double, double>> AgreementBounds(
    double q_hat, size_t common, const OldTechniqueOptions& options) {
  CROWD_ASSIGN_OR_RETURN(double z, stats::TwoSidedZ(options.confidence));
  double dev =
      std::sqrt(q_hat * (1.0 - q_hat) / static_cast<double>(common));
  double lo = ClampAgreement(q_hat - z * dev, options.min_agreement_margin);
  double hi = ClampAgreement(q_hat + z * dev, options.min_agreement_margin);
  return std::make_pair(lo, hi);
}

}  // namespace

Result<OldAssessment> OldThreeWorkerEvaluate(
    const data::ResponseMatrix& responses, data::WorkerId i,
    data::WorkerId j, data::WorkerId k,
    const OldTechniqueOptions& options) {
  if (responses.arity() != 2) {
    return Status::Invalid("old technique supports binary tasks only");
  }
  data::OverlapIndex overlap(responses);
  CROWD_ASSIGN_OR_RETURN(double q_ij_hat, overlap.AgreementRate(i, j));
  CROWD_ASSIGN_OR_RETURN(double q_ik_hat, overlap.AgreementRate(i, k));
  CROWD_ASSIGN_OR_RETURN(double q_jk_hat, overlap.AgreementRate(j, k));

  CROWD_ASSIGN_OR_RETURN(
      auto q_ij,
      AgreementBounds(q_ij_hat, overlap.CommonCount(i, j), options));
  CROWD_ASSIGN_OR_RETURN(
      auto q_ik,
      AgreementBounds(q_ik_hat, overlap.CommonCount(i, k), options));
  CROWD_ASSIGN_OR_RETURN(
      auto q_jk,
      AgreementBounds(q_jk_hat, overlap.CommonCount(j, k), options));

  const double margin = options.min_agreement_margin;
  OldAssessment out;
  out.worker = i;
  out.error_rate =
      TriangulateP(ClampAgreement(q_ij_hat, margin),
                   ClampAgreement(q_ik_hat, margin),
                   ClampAgreement(q_jk_hat, margin));
  // f is decreasing in q_ij and q_ik, increasing in q_jk, so the
  // extreme p values sit at opposite corners of the q box.
  double p_lo = TriangulateP(q_ij.second, q_ik.second, q_jk.first);
  double p_hi = TriangulateP(q_ij.first, q_ik.first, q_jk.second);
  out.interval.lo = std::clamp(std::min(p_lo, p_hi), 0.0, 0.5);
  out.interval.hi = std::clamp(std::max(p_lo, p_hi), 0.0, 0.5);
  out.interval.confidence = options.confidence;
  return out;
}

Result<std::vector<OldAssessment>> OldMWorkerEvaluate(
    const data::ResponseMatrix& responses,
    const OldTechniqueOptions& options) {
  if (responses.arity() != 2) {
    return Status::Invalid("old technique supports binary tasks only");
  }
  const size_t m = responses.num_workers();
  const size_t n = responses.num_tasks();
  if (m < 3) {
    return Status::InsufficientData(
        "old technique needs at least 3 workers");
  }
  if (responses.TotalResponses() != m * n) {
    return Status::Invalid(
        "old technique's super-worker construction requires regular "
        "data (every worker attempts every task)");
  }

  std::vector<OldAssessment> out;
  out.reserve(m);
  for (data::WorkerId i = 0; i < m; ++i) {
    if (m == 3) {
      data::WorkerId j = (i + 1) % 3;
      data::WorkerId k = (i + 2) % 3;
      CROWD_ASSIGN_OR_RETURN(
          auto assessment,
          OldThreeWorkerEvaluate(responses, i, j, k, options));
      out.push_back(assessment);
      continue;
    }
    // Split the other workers into two alternating groups.
    std::vector<data::WorkerId> group_a;
    std::vector<data::WorkerId> group_b;
    for (data::WorkerId w = 0; w < m; ++w) {
      if (w == i) continue;
      ((group_a.size() <= group_b.size()) ? group_a : group_b).push_back(w);
    }
    // Build the 3-worker matrix: worker 0 = wi, 1/2 = super-workers.
    data::ResponseMatrix triple(3, n, 2);
    for (data::TaskId t = 0; t < n; ++t) {
      CROWD_RETURN_NOT_OK(triple.Set(0, t, *responses.Get(i, t)));
      for (int g = 0; g < 2; ++g) {
        const auto& group = (g == 0) ? group_a : group_b;
        int ones = 0;
        for (data::WorkerId w : group) {
          ones += *responses.Get(w, t);
        }
        int zeros = static_cast<int>(group.size()) - ones;
        int majority;
        if (ones > zeros) {
          majority = 1;
        } else if (zeros > ones) {
          majority = 0;
        } else {
          majority = *responses.Get(group.front(), t);  // Tie-break.
        }
        CROWD_RETURN_NOT_OK(triple.Set(1 + g, t, majority));
      }
    }
    CROWD_ASSIGN_OR_RETURN(
        auto assessment, OldThreeWorkerEvaluate(triple, 0, 1, 2, options));
    assessment.worker = i;
    out.push_back(assessment);
  }
  return out;
}

}  // namespace crowd::baselines
