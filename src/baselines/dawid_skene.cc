#include "baselines/dawid_skene.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace crowd::baselines {

double DawidSkeneModel::WorkerErrorRate(data::WorkerId w) const {
  CROWD_CHECK_LT(w, confusion.size());
  double error = 0.0;
  for (size_t z = 0; z < priors.size(); ++z) {
    error += priors[z] * (1.0 - confusion[w](z, z));
  }
  return error;
}

Result<DawidSkeneModel> FitDawidSkene(
    const data::ResponseMatrix& responses,
    const DawidSkeneOptions& options) {
  const size_t m = responses.num_workers();
  const size_t n = responses.num_tasks();
  const int k = responses.arity();
  if (m == 0 || n == 0) {
    return Status::InsufficientData("Dawid-Skene: empty response matrix");
  }
  for (data::TaskId t = 0; t < n; ++t) {
    if (responses.TaskResponseCount(t) == 0) {
      return Status::InsufficientData(
          StrFormat("Dawid-Skene: task %zu has no responses", t));
    }
  }

  DawidSkeneModel model;
  model.posteriors = linalg::Matrix(n, k);
  model.priors = linalg::Vector(k, 1.0 / k);
  model.confusion.assign(m, linalg::Matrix(k, k));

  // Initialization: posterior = response frequencies per task (soft
  // majority vote).
  for (data::TaskId t = 0; t < n; ++t) {
    double total = 0.0;
    for (data::WorkerId w = 0; w < m; ++w) {
      auto r = responses.Get(w, t);
      if (!r.has_value()) continue;
      model.posteriors(t, *r) += 1.0;
      total += 1.0;
    }
    for (int z = 0; z < k; ++z) model.posteriors(t, z) /= total;
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations = iter + 1;

    // M step: priors and confusion matrices from soft counts.
    for (int z = 0; z < k; ++z) {
      double sum = 0.0;
      for (data::TaskId t = 0; t < n; ++t) sum += model.posteriors(t, z);
      model.priors[z] = sum / static_cast<double>(n);
    }
    for (data::WorkerId w = 0; w < m; ++w) {
      linalg::Matrix counts(k, k, options.smoothing);
      for (data::TaskId t = 0; t < n; ++t) {
        auto r = responses.Get(w, t);
        if (!r.has_value()) continue;
        for (int z = 0; z < k; ++z) {
          counts(z, *r) += model.posteriors(t, z);
        }
      }
      for (int z = 0; z < k; ++z) {
        double row_sum = 0.0;
        for (int r = 0; r < k; ++r) row_sum += counts(z, r);
        for (int r = 0; r < k; ++r) {
          model.confusion[w](z, r) = counts(z, r) / row_sum;
        }
      }
    }

    // E step: recompute posteriors; track the largest change and the
    // log-likelihood.
    double max_change = 0.0;
    double log_likelihood = 0.0;
    for (data::TaskId t = 0; t < n; ++t) {
      // Work in log space for numerical stability.
      linalg::Vector log_post(k);
      for (int z = 0; z < k; ++z) {
        log_post[z] = std::log(std::max(model.priors[z], 1e-300));
      }
      for (data::WorkerId w = 0; w < m; ++w) {
        auto r = responses.Get(w, t);
        if (!r.has_value()) continue;
        for (int z = 0; z < k; ++z) {
          log_post[z] +=
              std::log(std::max(model.confusion[w](z, *r), 1e-300));
        }
      }
      double max_log = *std::max_element(log_post.begin(), log_post.end());
      double norm = 0.0;
      for (int z = 0; z < k; ++z) {
        log_post[z] = std::exp(log_post[z] - max_log);
        norm += log_post[z];
      }
      log_likelihood += max_log + std::log(norm);
      for (int z = 0; z < k; ++z) {
        double updated = log_post[z] / norm;
        max_change =
            std::max(max_change, std::fabs(updated - model.posteriors(t, z)));
        model.posteriors(t, z) = updated;
      }
    }
    model.log_likelihood = log_likelihood;
    if (max_change < options.tolerance) {
      model.converged = true;
      break;
    }
  }

  model.labels.resize(n);
  for (data::TaskId t = 0; t < n; ++t) {
    int best = 0;
    for (int z = 1; z < k; ++z) {
      if (model.posteriors(t, z) > model.posteriors(t, best)) best = z;
    }
    model.labels[t] = best;
  }
  return model;
}

}  // namespace crowd::baselines
