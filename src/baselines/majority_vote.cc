#include "baselines/majority_vote.h"

#include <algorithm>

namespace crowd::baselines {

namespace {

// Plurality winner of `counts`, smallest index on ties; nullopt when
// all counts are zero.
std::optional<data::Response> Winner(const std::vector<int>& counts) {
  int best_count = 0;
  int best_response = -1;
  for (size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > best_count) {
      best_count = counts[r];
      best_response = static_cast<int>(r);
    }
  }
  if (best_response < 0) return std::nullopt;
  return best_response;
}

}  // namespace

std::vector<std::optional<data::Response>> MajorityLabels(
    const data::ResponseMatrix& responses) {
  std::vector<std::optional<data::Response>> labels(responses.num_tasks());
  std::vector<int> counts(responses.arity());
  for (data::TaskId t = 0; t < responses.num_tasks(); ++t) {
    std::fill(counts.begin(), counts.end(), 0);
    for (data::WorkerId w = 0; w < responses.num_workers(); ++w) {
      auto r = responses.Get(w, t);
      if (r.has_value()) ++counts[*r];
    }
    labels[t] = Winner(counts);
  }
  return labels;
}

std::vector<std::optional<double>> MajorityProxyErrorRates(
    const data::ResponseMatrix& responses, bool exclude_self) {
  const size_t m = responses.num_workers();
  const size_t n = responses.num_tasks();

  // Per-task response histograms, built once.
  std::vector<std::vector<int>> histograms(
      n, std::vector<int>(responses.arity(), 0));
  for (data::TaskId t = 0; t < n; ++t) {
    for (data::WorkerId w = 0; w < m; ++w) {
      auto r = responses.Get(w, t);
      if (r.has_value()) ++histograms[t][*r];
    }
  }

  std::vector<std::optional<double>> rates(m);
  for (data::WorkerId w = 0; w < m; ++w) {
    int used = 0;
    int disagreements = 0;
    for (data::TaskId t = 0; t < n; ++t) {
      auto r = responses.Get(w, t);
      if (!r.has_value()) continue;
      std::vector<int> counts = histograms[t];
      if (exclude_self) {
        --counts[*r];
      }
      auto majority = Winner(counts);
      if (!majority.has_value()) continue;  // Worker was alone on task.
      ++used;
      if (*majority != *r) ++disagreements;
    }
    if (used > 0) {
      rates[w] = static_cast<double>(disagreements) / used;
    }
  }
  return rates;
}

}  // namespace crowd::baselines
