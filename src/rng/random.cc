#include "rng/random.h"

#include <cmath>

namespace crowd {

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Random::Random(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.Next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot emit four
  // consecutive zeros, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::Uniform(double lo, double hi) {
  CROWD_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Random::UniformInt(uint64_t bound) {
  CROWD_CHECK_GT(bound, 0u);
  // Lemire-style rejection using the high bits.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

size_t Random::Categorical(const std::vector<double>& weights) {
  CROWD_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CROWD_DCHECK(w >= 0.0);
    total += w;
  }
  CROWD_CHECK_GT(total, 0.0);
  double u = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (u < cumulative) return i;
  }
  // Floating-point slack: fall through to the last non-zero weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

double Random::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

int Random::Binomial(int n, double p) {
  CROWD_CHECK_GE(n, 0);
  int successes = 0;
  for (int i = 0; i < n; ++i) {
    if (Bernoulli(p)) ++successes;
  }
  return successes;
}

Random Random::Fork() {
  // Derive the child seed from two raw outputs mixed once more.
  SplitMix64 sm(NextUint64() ^ Rotl(NextUint64(), 32));
  return Random(sm.Next());
}

}  // namespace crowd
