// Deterministic, reproducible random number generation.
//
// The experiments in this project must be exactly reproducible across
// platforms and standard library versions, so we implement the PRNG
// (xoshiro256**) and all variate transforms ourselves instead of
// relying on std::<distribution> (whose outputs are not specified).

#ifndef CROWD_RNG_RANDOM_H_
#define CROWD_RNG_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace crowd {

/// \brief SplitMix64: used to expand a single seed into PRNG state and
/// to derive independent sub-stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// \brief xoshiro256** 1.0 (Blackman & Vigna), a fast all-purpose
/// generator with 256 bits of state, plus variate transforms.
class Random {
 public:
  /// Seeds the full state via SplitMix64, per the xoshiro authors'
  /// recommendation.
  explicit Random(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform in [0, 1) with 53-bit resolution.
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound), bound > 0; unbiased (rejection).
  uint64_t UniformInt(uint64_t bound);

  /// Bernoulli draw: true with probability p (p clamped to [0,1]).
  bool Bernoulli(double p);

  /// Index draw from unnormalized non-negative weights.
  /// Weights must not be all-zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Standard normal via the polar (Marsaglia) method.
  double NextGaussian();

  /// Normal with given mean and standard deviation (sd >= 0).
  double Gaussian(double mean, double sd) {
    return mean + sd * NextGaussian();
  }

  /// Number of successes in n Bernoulli(p) trials (direct simulation;
  /// n in this project is at most a few thousand).
  int Binomial(int n, double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    CROWD_CHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// An independently-seeded generator derived from this one. Streams
  /// produced by successive calls are decorrelated (seeds from the raw
  /// output run through SplitMix64).
  Random Fork();

 private:
  uint64_t state_[4];
  // Cached second variate from the polar method.
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace crowd

#endif  // CROWD_RNG_RANDOM_H_
