#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

// util/mutex.h + util/thread_annotations.h are header-only and free of
// crowd_* link dependencies, so including them here keeps crowd_obs
// below crowd_util in the library order.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace crowd::obs {

namespace {

/// printf into std::string without pulling in crowd_util.
template <typename... Args>
std::string Format(const char* fmt, Args... args) {
  char buffer[256];
  int n = std::snprintf(buffer, sizeof(buffer), fmt, args...);
  if (n < 0) return "";
  if (static_cast<size_t>(n) < sizeof(buffer)) return std::string(buffer, n);
  std::string out(static_cast<size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

std::string FormatDouble(double v) {
  if (v != v) return "NaN";
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  if (v == -std::numeric_limits<double>::infinity()) return "-Inf";
  return Format("%.17g", v);
}

/// Shortest %g rendering for bucket bounds (Prometheus "le" values).
std::string FormatBound(double v) { return Format("%g", v); }

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "[FATAL obs/metrics] %s\n", message.c_str());
  std::abort();
}

}  // namespace

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

namespace internal {

void AtomicDoubleAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  shards_.reserve(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void HistogramMetric::Record(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = *shards_[ThisThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  internal::AtomicDoubleAdd(&shard.sum, value);
  internal::AtomicDoubleMin(&min_, value);
  internal::AtomicDoubleMax(&max_, value);
}

Histogram HistogramMetric::Snapshot() const {
  Histogram out(bounds_);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < shard->buckets.size(); ++b) {
      out.MergeBucket(b,
                      shard->buckets[b].load(std::memory_order_relaxed));
    }
    out.MergeSum(shard->sum.load(std::memory_order_relaxed));
  }
  if (out.count() > 0) {
    out.MergeMinMax(min_.load(std::memory_order_relaxed),
                    max_.load(std::memory_order_relaxed));
  }
  return out;
}

// ---------------------------------------------------------------------
// Registry

namespace {

enum class MetricKind { kCounter, kGauge, kHistogram };

struct Series {
  std::string labels;  // rendered: `key="value"` or empty
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<HistogramMetric> histogram;
};

struct Family {
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  // label-rendering -> series; std::map keeps the export ordering
  // deterministic.
  std::map<std::string, Series> series;
};

std::string RenderLabels(const std::string& key, const std::string& value) {
  if (key.empty()) return "";
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') escaped.push_back('\\');
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped.push_back(c);
  }
  return key + "=\"" + escaped + "\"";
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

struct Registry::Impl {
  mutable util::Mutex mu;
  std::map<std::string, Family> families CROWD_GUARDED_BY(mu);

  Series* GetSeries(const std::string& name, MetricKind kind,
                    const std::string& help, const std::string& label_key,
                    const std::string& label_value) CROWD_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    Family& family = families[name];
    if (family.series.empty()) {
      family.kind = kind;
      family.help = help;
    } else if (family.kind != kind) {
      Die("metric '" + name + "' registered as " +
          KindName(family.kind) + " and requested as " + KindName(kind));
    }
    return &family.series[RenderLabels(label_key, label_value)];
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help,
                              const std::string& label_key,
                              const std::string& label_value) {
  Series* series = impl_->GetSeries(name, MetricKind::kCounter, help,
                                    label_key, label_value);
  util::MutexLock lock(impl_->mu);
  if (!series->counter) series->counter = std::make_unique<Counter>();
  return series->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const std::string& label_key,
                          const std::string& label_value) {
  Series* series = impl_->GetSeries(name, MetricKind::kGauge, help,
                                    label_key, label_value);
  util::MutexLock lock(impl_->mu);
  if (!series->gauge) series->gauge = std::make_unique<Gauge>();
  return series->gauge.get();
}

HistogramMetric* Registry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<double> bounds,
                                        const std::string& label_key,
                                        const std::string& label_value) {
  Series* series = impl_->GetSeries(name, MetricKind::kHistogram, help,
                                    label_key, label_value);
  util::MutexLock lock(impl_->mu);
  if (!series->histogram) {
    series->histogram = std::make_unique<HistogramMetric>(std::move(bounds));
  }
  return series->histogram.get();
}

std::string Registry::ExportPrometheus() const {
  util::MutexLock lock(impl_->mu);
  std::string out;
  for (const auto& [name, family] : impl_->families) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " + std::string(KindName(family.kind)) +
           "\n";
    for (const auto& [labels, series] : family.series) {
      const std::string suffix =
          labels.empty() ? "" : "{" + labels + "}";
      switch (family.kind) {
        case MetricKind::kCounter:
          out += name + suffix +
                 Format(" %llu\n",
                        static_cast<unsigned long long>(
                            series.counter->Value()));
          break;
        case MetricKind::kGauge:
          out += name + suffix +
                 Format(" %lld\n",
                        static_cast<long long>(series.gauge->Value()));
          break;
        case MetricKind::kHistogram: {
          Histogram h = series.histogram->Snapshot();
          uint64_t cumulative = 0;
          for (size_t b = 0; b < h.num_buckets(); ++b) {
            cumulative += h.bucket_count(b);
            const std::string le =
                b < h.bounds().size() ? FormatBound(h.bounds()[b])
                                      : std::string("+Inf");
            const std::string bucket_labels =
                labels.empty() ? "le=\"" + le + "\""
                               : labels + ",le=\"" + le + "\"";
            out += name + "_bucket{" + bucket_labels +
                   Format("} %llu\n",
                          static_cast<unsigned long long>(cumulative));
          }
          out += name + "_sum" + suffix + " " + FormatDouble(h.sum()) +
                 "\n";
          out += name + "_count" + suffix +
                 Format(" %llu\n",
                        static_cast<unsigned long long>(h.count()));
          break;
        }
      }
    }
  }
  return out;
}

std::string Registry::SummaryTable() const {
  util::MutexLock lock(impl_->mu);
  std::string out;
  for (const auto& [name, family] : impl_->families) {
    for (const auto& [labels, series] : family.series) {
      const std::string id =
          labels.empty() ? name : name + "{" + labels + "}";
      switch (family.kind) {
        case MetricKind::kCounter:
          out += Format("%-64s %llu\n", id.c_str(),
                        static_cast<unsigned long long>(
                            series.counter->Value()));
          break;
        case MetricKind::kGauge:
          out += Format("%-64s %lld\n", id.c_str(),
                        static_cast<long long>(series.gauge->Value()));
          break;
        case MetricKind::kHistogram: {
          Histogram h = series.histogram->Snapshot();
          out += Format(
              "%-64s count %llu  mean %.6g  p50 %.6g  p90 %.6g  "
              "p99 %.6g  max %.6g\n",
              id.c_str(), static_cast<unsigned long long>(h.count()),
              h.mean(), h.Quantile(0.5), h.Quantile(0.9),
              h.Quantile(0.99), h.max());
          break;
        }
      }
    }
  }
  return out;
}

size_t Registry::NumFamilies() const {
  util::MutexLock lock(impl_->mu);
  return impl_->families.size();
}

// ---------------------------------------------------------------------
// Process-global default registry and the library-instrumentation gate.

namespace {

std::atomic<Registry*>& EnabledStore() {
  static std::atomic<Registry*> enabled{nullptr};
  return enabled;
}

}  // namespace

Registry& DefaultRegistry() {
  // Leaked on purpose: instrumented code caches metric pointers in
  // function-local statics and may run during late shutdown.
  static Registry* const registry = new Registry();
  return *registry;
}

Registry* MetricsRegistry() {
  return EnabledStore().load(std::memory_order_acquire);
}

void EnableMetrics() {
  EnabledStore().store(&DefaultRegistry(), std::memory_order_release);
}

void DisableMetrics() {
  EnabledStore().store(nullptr, std::memory_order_release);
}

bool MetricsEnabled() { return MetricsRegistry() != nullptr; }

}  // namespace crowd::obs
