// Fixed-bucket histogram value type — the single quantile
// implementation shared by the metrics registry (src/obs/metrics.h),
// the daemon's METRICS export, and the benchmarks, so every layer
// reports identical p50/p90/p99 math.
//
// Buckets are defined by an ascending vector of upper bounds; a value
// lands in the first bucket whose bound is >= value, with one implicit
// overflow bucket (+Inf) at the end. Quantiles are extracted by linear
// interpolation inside the covering bucket, clamped to the observed
// [min, max] so single-sample and narrow distributions do not report
// values outside what was recorded.
//
// This type is NOT thread-safe; the registry's HistogramMetric layers
// sharded atomics on top and aggregates into a plain Histogram on
// scrape. crowd_obs sits below crowd_util in the dependency order and
// must stay free of any crowd_* include.

#ifndef CROWD_OBS_HISTOGRAM_H_
#define CROWD_OBS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crowd::obs {

/// \brief A fixed-bucket histogram with quantile extraction.
class Histogram {
 public:
  /// `bounds` must be strictly ascending bucket upper bounds; an
  /// implicit +Inf bucket is appended. An empty vector yields a
  /// single-bucket (+Inf only) histogram.
  explicit Histogram(std::vector<double> bounds);

  /// Default buckets for latencies in seconds: 1-2.5-5 decades from
  /// 1us to 10s (22 finite bounds).
  static std::vector<double> LatencyBounds();
  /// Default buckets for sizes in bytes: powers of 4 from 64B to 1GB.
  static std::vector<double> ByteBounds();
  /// `count` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);

  void Record(double value);
  /// Shard-aggregation primitives (used by the registry's
  /// HistogramMetric::Snapshot): bulk-merge `count` observations into
  /// `bucket`; their sum and observed range are merged separately.
  void MergeBucket(size_t bucket, uint64_t count);
  void MergeSum(double sum);
  void MergeMinMax(double min_seen, double max_seen);

  /// Index of the bucket covering `value`.
  size_t BucketFor(double value) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket count including the +Inf overflow bucket.
  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t bucket) const { return counts_[bucket]; }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;  ///< Smallest recorded value (0 when empty).
  double max() const;  ///< Largest recorded value (0 when empty).
  double mean() const;

  /// The q-quantile (q in [0, 1]) by linear interpolation within the
  /// covering bucket, clamped to the observed [min, max]. Returns 0
  /// for an empty histogram. Quantiles of data in the overflow bucket
  /// saturate at max().
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;   // finite upper bounds, ascending
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 buckets
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace crowd::obs

#endif  // CROWD_OBS_HISTOGRAM_H_
