// Lock-cheap metrics registry: monotonic counters, gauges, and
// fixed-bucket latency histograms with Prometheus text-format export
// and a human-readable summary table.
//
// Hot-path cost model:
//   - Counter::Increment / Gauge::Add / HistogramMetric::Record are a
//     relaxed atomic add on a per-thread *shard* (threads are spread
//     round-robin over kShards cache-line-padded slots), so concurrent
//     writers do not bounce a shared cache line. Aggregation across
//     shards happens only on scrape.
//   - Library instrumentation is gated by MetricsRegistry(), which
//     returns nullptr until EnableMetrics() — the disabled cost of an
//     instrumented site is one relaxed atomic load and a branch.
//     Instrumentation must never branch on *measured values*, so
//     enabling metrics cannot change any computed result (the tier-1
//     determinism guarantee).
//
// Usage pattern for instrumented library code:
//
//   if (obs::Registry* r = obs::MetricsRegistry()) {
//     static obs::Counter* const dropped =
//         r->GetCounter("crowdeval_core_triples_dropped_total",
//                       "triples dropped during worker evaluation");
//     dropped->Increment();
//   }
//
// The function-local static is first initialized on the first pass
// with metrics enabled; metric objects live in the registry and are
// never destroyed before process exit, so the cached pointer stays
// valid even if metrics are later disabled (the site simply stops
// executing the body).
//
// Components that must count regardless of the global switch (the
// crowdevald Service's STATS counters) construct their own Registry
// instance and talk to it directly.
//
// crowd_obs sits below crowd_util in the library order (crowd_util's
// ThreadPool is itself instrumented), so this header must not include
// any crowd_* header.

#ifndef CROWD_OBS_METRICS_H_
#define CROWD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace crowd::obs {

/// Number of per-thread shards per metric. Threads are assigned
/// round-robin; 16 slots of one cache line each keep concurrent
/// increments from contending at daemon-scale thread counts.
inline constexpr size_t kShards = 16;

/// This thread's shard index (assigned once, round-robin).
size_t ThisThreadShard();

namespace internal {
struct alignas(64) PaddedCounter {
  std::atomic<uint64_t> value{0};
};
/// Relaxed-CAS add for doubles (std::atomic<double>::fetch_add is
/// C++20); contention is already absorbed by the sharding.
void AtomicDoubleAdd(std::atomic<double>* target, double delta);
void AtomicDoubleMin(std::atomic<double>* target, double value);
void AtomicDoubleMax(std::atomic<double>* target, double value);
}  // namespace internal

/// \brief A monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  /// Sum over all shards (scrape-time aggregation).
  uint64_t Value() const;

 private:
  internal::PaddedCounter shards_[kShards];
};

/// \brief A gauge: an int64 value that can move both ways. Set wins
/// over concurrent Add only by timing — use one style per gauge.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Subtract(int64_t delta) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A sharded fixed-bucket histogram metric. Snapshot() folds
/// the shards into a plain obs::Histogram, which owns the shared
/// quantile math.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void Record(double value);
  /// Aggregated view; consistent enough for monitoring (individual
  /// bucket/sum reads are relaxed).
  Histogram Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    explicit Shard(size_t num_buckets)
        : buckets(num_buckets) {}
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// \brief Metric registry: owns metrics, hands out stable pointers,
/// exports Prometheus text format. Registration takes a mutex; the
/// returned objects are lock-free to update and valid for the
/// registry's lifetime.
class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. `name` must follow the naming scheme
  /// `crowdeval_<module>_<what>[_<unit>][_total]`; `label_key`/
  /// `label_value`, when non-empty, attach one label pair to the
  /// series (e.g. command="RESP"). `help` is kept from the first
  /// registration.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& label_key = "",
                      const std::string& label_value = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& label_key = "",
                  const std::string& label_value = "");
  /// `bounds` applies on creation only (all series of one family must
  /// share buckets); pass Histogram::LatencyBounds() for latencies.
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::string& help,
                                std::vector<double> bounds,
                                const std::string& label_key = "",
                                const std::string& label_value = "");

  /// Prometheus text exposition (families sorted by name, HELP/TYPE
  /// emitted once per family).
  std::string ExportPrometheus() const;

  /// Human-readable table: counters/gauges with values, histograms
  /// with count/mean/p50/p90/p99. Empty string when nothing was
  /// recorded.
  std::string SummaryTable() const;

  /// Distinct metric family names currently registered.
  size_t NumFamilies() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief The process-wide registry singleton (always constructible;
/// never destroyed). Service-level code that must always count talks
/// to this (or to its own Registry instance) directly.
Registry& DefaultRegistry();

/// \brief Gate for library instrumentation: nullptr until
/// EnableMetrics(), then &DefaultRegistry(). One relaxed load.
Registry* MetricsRegistry();

/// Turns library instrumentation on/off (process-global, idempotent).
void EnableMetrics();
void DisableMetrics();
bool MetricsEnabled();

}  // namespace crowd::obs

#endif  // CROWD_OBS_METRICS_H_
