// Scoped-span tracer: CROWD_SPAN("stage") records the enclosing
// scope's wall time into a bounded per-thread ring buffer, exportable
// as chrome://tracing / Perfetto JSON ("trace event format", complete
// "X" events).
//
// Cost model: when tracing is disabled (the default) a span is one
// relaxed atomic load and a branch. When enabled, entry reads the
// steady clock and exit appends one 32-byte event to a thread-local
// ring under that ring's (uncontended) mutex — the mutex exists only
// so an exporter can snapshot rings of live threads safely. The ring
// overwrites its oldest events, so memory stays bounded at
// `events_per_thread` regardless of run length.
//
// Span names must be string literals (the ring stores the pointer).
// Tracing never branches on measured values, so enabling it cannot
// change any computed result.

#ifndef CROWD_OBS_TRACE_H_
#define CROWD_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace crowd::obs {

/// \brief One completed span (chrome "X" event).
struct TraceEvent {
  const char* name = nullptr;  ///< string literal
  uint64_t start_ns = 0;       ///< since StartTracing()
  uint64_t duration_ns = 0;
  uint32_t tid = 0;  ///< small per-thread ordinal
};

/// Nanoseconds on the tracing clock (steady, zero at StartTracing).
uint64_t TraceNowNanos();

/// \brief Starts recording spans. Rings of previously-traced threads
/// are cleared; `events_per_thread` bounds each ring (later threads
/// inherit the same capacity).
void StartTracing(size_t events_per_thread = 8192);
/// Stops recording (already-captured events stay exportable).
void StopTracing();
bool TracingEnabled();

/// \brief All captured events as a chrome://tracing JSON document
/// ({"traceEvents":[...]}). Safe to call while tracing.
std::string ChromeTraceJson();

/// \brief Writes ChromeTraceJson() to `path`; returns false (and
/// keeps quiet) on I/O failure — the caller decides whether to log.
bool WriteChromeTrace(const std::string& path);

namespace internal {

extern std::atomic<bool> g_tracing_enabled;

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

}  // namespace internal

/// \brief RAII span; use via CROWD_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (internal::g_tracing_enabled.load(std::memory_order_relaxed)) {
      name_ = name;
      start_ns_ = TraceNowNanos();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, TraceNowNanos());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace crowd::obs

#define CROWD_SPAN_CONCAT_INNER(a, b) a##b
#define CROWD_SPAN_CONCAT(a, b) CROWD_SPAN_CONCAT_INNER(a, b)
/// Records the enclosing scope as a span named `name` (string literal).
#define CROWD_SPAN(name) \
  ::crowd::obs::ScopedSpan CROWD_SPAN_CONCAT(crowd_span_, __LINE__)(name)

#endif  // CROWD_OBS_TRACE_H_
