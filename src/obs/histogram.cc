#include "obs/histogram.h"

#include <algorithm>
#include <limits>

namespace crowd::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::vector<double> Histogram::LatencyBounds() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
          5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
          0.25, 0.5,    1.0,  2.5,  5.0,  10.0};
}

std::vector<double> Histogram::ByteBounds() {
  return ExponentialBounds(64.0, 4.0, 13);  // 64B .. 1GB
}

std::vector<double> Histogram::ExponentialBounds(double start,
                                                 double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

size_t Histogram::BucketFor(double value) const {
  // First bound >= value: bucket upper bounds are inclusive, matching
  // Prometheus `le` semantics.
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::Record(double value) {
  ++counts_[BucketFor(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::MergeBucket(size_t bucket, uint64_t count) {
  if (bucket >= counts_.size()) return;
  counts_[bucket] += count;
  count_ += count;
}

void Histogram::MergeSum(double sum) { sum_ += sum; }

void Histogram::MergeMinMax(double min_seen, double max_seen) {
  min_ = std::min(min_, min_seen);
  max_ = std::max(max_, max_seen);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, count]; the bucket holding it gets interpolated.
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Bucket edges: lower edge of bucket 0 is min(); the overflow
    // bucket's upper edge is max().
    double lo = b == 0 ? min() : bounds_[b - 1];
    double hi = b < bounds_.size() ? bounds_[b] : max();
    lo = std::clamp(lo, min(), max());
    hi = std::clamp(hi, min(), max());
    const double fraction =
        (rank - before) / static_cast<double>(counts_[b]);
    return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
  }
  return max();
}

}  // namespace crowd::obs
