#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

// Header-only, no crowd_* link dependency — safe below crowd_util.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace crowd::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// \brief A bounded per-thread span ring. Owned by a thread_local
/// handle; ownership moves to the global retired list when the thread
/// exits, so its spans survive for export.
struct SpanRing {
  explicit SpanRing(size_t capacity, uint32_t thread_ordinal)
      : events(capacity), tid(thread_ordinal) {}

  util::Mutex mu;
  std::vector<TraceEvent> events CROWD_GUARDED_BY(mu);
  size_t next CROWD_GUARDED_BY(mu) = 0;
  size_t size CROWD_GUARDED_BY(mu) = 0;
  uint32_t tid = 0;

  void Append(const TraceEvent& event) CROWD_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    if (events.empty()) return;
    events[next] = event;
    next = (next + 1) % events.size();
    if (size < events.size()) ++size;
  }

  void SnapshotInto(std::vector<TraceEvent>* out) CROWD_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    // Oldest-first: the ring wraps at `next` when full.
    const size_t start = size == events.size() ? next : 0;
    for (size_t i = 0; i < size; ++i) {
      out->push_back(events[(start + i) % events.size()]);
    }
  }

  void Clear() CROWD_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    next = 0;
    size = 0;
  }
};

struct TraceState {
  util::Mutex mu;
  std::vector<SpanRing*> live CROWD_GUARDED_BY(mu);
  std::vector<std::unique_ptr<SpanRing>> retired CROWD_GUARDED_BY(mu);
  size_t capacity CROWD_GUARDED_BY(mu) = 8192;
  uint32_t next_tid CROWD_GUARDED_BY(mu) = 0;
  // Written only by StartTracing and read lock-free on the span hot
  // path; a torn read is impossible in practice (monotonic clock
  // rebase) and annotating it would put a lock on every TraceNowNanos.
  Clock::time_point epoch = Clock::now();
};

TraceState& State() {
  static TraceState* const state = new TraceState();
  return *state;
}

/// Thread-exit hook: moves this thread's ring to the retired list.
struct RingHandle {
  std::unique_ptr<SpanRing> ring;

  ~RingHandle() {
    if (!ring) return;
    TraceState& state = State();
    util::MutexLock lock(state.mu);
    for (size_t i = 0; i < state.live.size(); ++i) {
      if (state.live[i] == ring.get()) {
        state.live.erase(state.live.begin() + static_cast<long>(i));
        break;
      }
    }
    state.retired.push_back(std::move(ring));
  }
};

SpanRing& ThisThreadRing() {
  thread_local RingHandle handle;
  if (!handle.ring) {
    TraceState& state = State();
    util::MutexLock lock(state.mu);
    handle.ring = std::make_unique<SpanRing>(state.capacity,
                                             state.next_tid++);
    state.live.push_back(handle.ring.get());
  }
  return *handle.ring;
}

}  // namespace

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  // A span that straddles StopTracing still records — the ring exists
  // and the event is complete; exports are snapshots anyway.
  SpanRing& ring = ThisThreadRing();
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.tid = ring.tid;
  ring.Append(event);
}

}  // namespace internal

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           State().epoch)
          .count());
}

void StartTracing(size_t events_per_thread) {
  TraceState& state = State();
  {
    util::MutexLock lock(state.mu);
    state.capacity = events_per_thread == 0 ? 1 : events_per_thread;
    state.retired.clear();
    state.epoch = Clock::now();
    // Live rings keep their original capacity (resizing under a
    // recording thread would race); they are cleared so the dump
    // holds only post-StartTracing spans.
    for (SpanRing* ring : state.live) ring->Clear();
  }
  internal::g_tracing_enabled.store(true, std::memory_order_release);
}

void StopTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_release);
}

bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events;
  TraceState& state = State();
  {
    util::MutexLock lock(state.mu);
    for (SpanRing* ring : state.live) ring->SnapshotInto(&events);
    for (const auto& ring : state.retired) ring->SnapshotInto(&events);
  }
  std::string out = "{\"traceEvents\":[";
  char buffer[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                  i == 0 ? "" : ",", e.name, e.tid,
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3);
    out += buffer;
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace crowd::obs
