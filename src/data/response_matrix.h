// The central data container: which worker gave which response to
// which task. Tasks are k-ary with responses 0..k-1; a missing entry
// means the worker did not attempt the task (the paper's "non-regular"
// data). Dimensions in this problem domain are small (at most a few
// hundred workers and a few thousand tasks), so storage is a dense
// worker x task array of int16 with a missing sentinel.

#ifndef CROWD_DATA_RESPONSE_MATRIX_H_
#define CROWD_DATA_RESPONSE_MATRIX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/logging.h"
#include "util/result.h"

namespace crowd::data {

using WorkerId = size_t;
using TaskId = size_t;
/// A response value in [0, arity).
using Response = int;

/// \brief Worker responses over a task set; entries may be missing.
class ResponseMatrix {
 public:
  /// An empty matrix with the given shape and response arity (>= 2).
  ResponseMatrix(size_t num_workers, size_t num_tasks, int arity);

  size_t num_workers() const { return num_workers_; }
  size_t num_tasks() const { return num_tasks_; }
  int arity() const { return arity_; }

  /// Records (or overwrites) worker `w`'s response to task `t`.
  /// Fails when indices are out of range or `r` is outside [0, arity).
  Status Set(WorkerId w, TaskId t, Response r);

  /// Removes worker `w`'s response to task `t` (no-op when absent).
  void Clear(WorkerId w, TaskId t);

  bool Has(WorkerId w, TaskId t) const {
    return At(w, t) != kMissing;
  }

  /// The response, or nullopt when the worker did not attempt the task.
  std::optional<Response> Get(WorkerId w, TaskId t) const {
    int16_t v = At(w, t);
    if (v == kMissing) return std::nullopt;
    return static_cast<Response>(v);
  }

  /// Number of tasks worker `w` attempted.
  size_t WorkerResponseCount(WorkerId w) const;

  /// Number of workers that attempted task `t`.
  size_t TaskResponseCount(TaskId t) const;

  /// Total recorded responses.
  size_t TotalResponses() const { return total_responses_; }

  /// TotalResponses / (workers * tasks).
  double Density() const;

  /// Task ids attempted by worker `w`, ascending.
  std::vector<TaskId> TasksOf(WorkerId w) const;

  /// Task ids attempted by both workers, ascending.
  std::vector<TaskId> CommonTasks(WorkerId a, WorkerId b) const;

  /// A copy restricted to the given workers (re-indexed 0..k-1 in the
  /// order given). Task set and indices are unchanged.
  Result<ResponseMatrix> SelectWorkers(
      const std::vector<WorkerId>& workers) const;

  /// A copy with `fraction` of the present responses removed uniformly
  /// at random, using the caller's `pick` function: pick() must return
  /// a uniform double in [0,1). (Kept free of the RNG type to avoid a
  /// dependency cycle; see sim::RemoveResponses for the ergonomic
  /// wrapper.)
  template <typename PickFn>
  ResponseMatrix Thinned(double fraction, PickFn&& pick) const {
    ResponseMatrix out = *this;
    for (WorkerId w = 0; w < num_workers_; ++w) {
      for (TaskId t = 0; t < num_tasks_; ++t) {
        if (out.Has(w, t) && pick() < fraction) out.Clear(w, t);
      }
    }
    return out;
  }

 private:
  static constexpr int16_t kMissing = -1;

  int16_t At(WorkerId w, TaskId t) const {
    CROWD_DCHECK(w < num_workers_ && t < num_tasks_);
    return cells_[w * num_tasks_ + t];
  }
  int16_t& At(WorkerId w, TaskId t) {
    CROWD_DCHECK(w < num_workers_ && t < num_tasks_);
    return cells_[w * num_tasks_ + t];
  }

  size_t num_workers_;
  size_t num_tasks_;
  int arity_;
  size_t total_responses_ = 0;
  std::vector<int16_t> cells_;
};

}  // namespace crowd::data

#endif  // CROWD_DATA_RESPONSE_MATRIX_H_
