// Dataset serialization. The on-disk format is two CSV files:
//
//   responses: header "worker,task,response", one row per response;
//   gold:      header "task,truth", one row per gold-labeled task.
//
// Worker/task ids are dense 0-based integers. The same format is used
// by the bundled synthetic paper-analogue datasets in data/.

#ifndef CROWD_DATA_DATASET_IO_H_
#define CROWD_DATA_DATASET_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"

namespace crowd::data {

/// \brief Writes `dataset` to `responses_path` (+ `gold_path` when
/// non-empty; gold rows are emitted only for labeled tasks).
Status SaveDatasetCsv(const Dataset& dataset,
                      const std::string& responses_path,
                      const std::string& gold_path = "");

/// Options for LoadDatasetCsv.
struct LoadOptions {
  /// Response arity. 0 means "infer as max(response)+1 (at least 2)".
  int arity = 0;
  /// Number of workers/tasks; 0 means "infer as max(id)+1".
  size_t num_workers = 0;
  size_t num_tasks = 0;
};

/// \brief Loads a dataset; `gold_path` may be empty (no gold labels).
/// Malformed rows, out-of-range labels and duplicate (worker, task)
/// pairs with conflicting responses produce IoError.
Result<Dataset> LoadDatasetCsv(const std::string& name,
                               const std::string& responses_path,
                               const std::string& gold_path = "",
                               const LoadOptions& options = {});

}  // namespace crowd::data

#endif  // CROWD_DATA_DATASET_IO_H_
