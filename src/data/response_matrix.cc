#include "data/response_matrix.h"

#include "util/string_util.h"

namespace crowd::data {

ResponseMatrix::ResponseMatrix(size_t num_workers, size_t num_tasks,
                               int arity)
    : num_workers_(num_workers),
      num_tasks_(num_tasks),
      arity_(arity),
      cells_(num_workers * num_tasks, kMissing) {
  CROWD_CHECK_GE(arity, 2);
  CROWD_CHECK_LE(arity, 32767);
}

Status ResponseMatrix::Set(WorkerId w, TaskId t, Response r) {
  if (w >= num_workers_ || t >= num_tasks_) {
    return Status::Invalid(StrFormat(
        "response index (%zu, %zu) out of range (%zu workers, %zu tasks)",
        w, t, num_workers_, num_tasks_));
  }
  if (r < 0 || r >= arity_) {
    return Status::Invalid(
        StrFormat("response %d outside [0, %d)", r, arity_));
  }
  int16_t& cell = At(w, t);
  if (cell == kMissing) ++total_responses_;
  cell = static_cast<int16_t>(r);
  return Status::OK();
}

void ResponseMatrix::Clear(WorkerId w, TaskId t) {
  int16_t& cell = At(w, t);
  if (cell != kMissing) {
    --total_responses_;
    cell = kMissing;
  }
}

size_t ResponseMatrix::WorkerResponseCount(WorkerId w) const {
  size_t count = 0;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    if (Has(w, t)) ++count;
  }
  return count;
}

size_t ResponseMatrix::TaskResponseCount(TaskId t) const {
  size_t count = 0;
  for (WorkerId w = 0; w < num_workers_; ++w) {
    if (Has(w, t)) ++count;
  }
  return count;
}

double ResponseMatrix::Density() const {
  if (num_workers_ == 0 || num_tasks_ == 0) return 0.0;
  return static_cast<double>(total_responses_) /
         (static_cast<double>(num_workers_) *
          static_cast<double>(num_tasks_));
}

std::vector<TaskId> ResponseMatrix::TasksOf(WorkerId w) const {
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    if (Has(w, t)) tasks.push_back(t);
  }
  return tasks;
}

std::vector<TaskId> ResponseMatrix::CommonTasks(WorkerId a,
                                                WorkerId b) const {
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < num_tasks_; ++t) {
    if (Has(a, t) && Has(b, t)) tasks.push_back(t);
  }
  return tasks;
}

Result<ResponseMatrix> ResponseMatrix::SelectWorkers(
    const std::vector<WorkerId>& workers) const {
  ResponseMatrix out(workers.size(), num_tasks_, arity_);
  for (size_t i = 0; i < workers.size(); ++i) {
    if (workers[i] >= num_workers_) {
      return Status::Invalid(
          StrFormat("worker id %zu out of range", workers[i]));
    }
    for (TaskId t = 0; t < num_tasks_; ++t) {
      auto r = Get(workers[i], t);
      if (r.has_value()) {
        CROWD_RETURN_NOT_OK(out.Set(i, t, *r));
      }
    }
  }
  return out;
}

}  // namespace crowd::data
