#include "data/dataset_io.h"

#include <algorithm>

#include "util/csv.h"
#include "util/string_util.h"

namespace crowd::data {

namespace {

struct ResponseRow {
  size_t worker;
  size_t task;
  int response;
};

Result<std::vector<ResponseRow>> ParseResponseRows(const CsvTable& table) {
  CROWD_ASSIGN_OR_RETURN(size_t wcol, table.ColumnIndex("worker"));
  CROWD_ASSIGN_OR_RETURN(size_t tcol, table.ColumnIndex("task"));
  CROWD_ASSIGN_OR_RETURN(size_t rcol, table.ColumnIndex("response"));
  std::vector<ResponseRow> rows;
  rows.reserve(table.rows.size());
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const auto& row = table.rows[i];
    CROWD_ASSIGN_OR_RETURN(long long w, ParseInt(row[wcol]));
    CROWD_ASSIGN_OR_RETURN(long long t, ParseInt(row[tcol]));
    CROWD_ASSIGN_OR_RETURN(long long r, ParseInt(row[rcol]));
    if (w < 0 || t < 0 || r < 0) {
      return Status::IoError(
          StrFormat("negative id in responses row %zu", i + 1));
    }
    rows.push_back({static_cast<size_t>(w), static_cast<size_t>(t),
                    static_cast<int>(r)});
  }
  return rows;
}

}  // namespace

Status SaveDatasetCsv(const Dataset& dataset,
                      const std::string& responses_path,
                      const std::string& gold_path) {
  const ResponseMatrix& r = dataset.responses();
  CsvTable responses;
  responses.header = {"worker", "task", "response"};
  for (WorkerId w = 0; w < r.num_workers(); ++w) {
    for (TaskId t = 0; t < r.num_tasks(); ++t) {
      auto resp = r.Get(w, t);
      if (!resp.has_value()) continue;
      responses.rows.push_back({StrFormat("%zu", w), StrFormat("%zu", t),
                                StrFormat("%d", *resp)});
    }
  }
  CROWD_RETURN_NOT_OK(WriteCsvFile(responses, responses_path));

  if (!gold_path.empty()) {
    CsvTable gold;
    gold.header = {"task", "truth"};
    for (TaskId t = 0; t < r.num_tasks(); ++t) {
      auto truth = dataset.Gold(t);
      if (!truth.has_value()) continue;
      gold.rows.push_back({StrFormat("%zu", t), StrFormat("%d", *truth)});
    }
    CROWD_RETURN_NOT_OK(WriteCsvFile(gold, gold_path));
  }
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& name,
                               const std::string& responses_path,
                               const std::string& gold_path,
                               const LoadOptions& options) {
  CROWD_ASSIGN_OR_RETURN(auto table, ReadCsvFile(responses_path));
  CROWD_ASSIGN_OR_RETURN(auto rows, ParseResponseRows(table));
  if (rows.empty()) {
    return Status::IoError("responses file has no data rows: " +
                           responses_path);
  }

  size_t num_workers = options.num_workers;
  size_t num_tasks = options.num_tasks;
  int arity = options.arity;
  for (const auto& row : rows) {
    num_workers = std::max(num_workers, row.worker + 1);
    num_tasks = std::max(num_tasks, row.task + 1);
    if (arity == 0 || options.arity == 0) {
      arity = std::max(arity, row.response + 1);
    }
  }
  arity = std::max(arity, 2);

  ResponseMatrix matrix(num_workers, num_tasks, arity);
  for (const auto& row : rows) {
    auto existing = matrix.Get(row.worker, row.task);
    if (existing.has_value() && *existing != row.response) {
      return Status::IoError(StrFormat(
          "conflicting duplicate response for worker %zu task %zu",
          row.worker, row.task));
    }
    CROWD_RETURN_NOT_OK(
        matrix.Set(row.worker, row.task, row.response));
  }

  Dataset dataset(name, std::move(matrix));

  if (!gold_path.empty()) {
    CROWD_ASSIGN_OR_RETURN(auto gold_table, ReadCsvFile(gold_path));
    CROWD_ASSIGN_OR_RETURN(size_t tcol, gold_table.ColumnIndex("task"));
    CROWD_ASSIGN_OR_RETURN(size_t gcol, gold_table.ColumnIndex("truth"));
    for (const auto& row : gold_table.rows) {
      CROWD_ASSIGN_OR_RETURN(long long t, ParseInt(row[tcol]));
      CROWD_ASSIGN_OR_RETURN(long long g, ParseInt(row[gcol]));
      if (t < 0 || g < 0) {
        return Status::IoError("negative id in gold file");
      }
      CROWD_RETURN_NOT_OK(dataset.SetGold(static_cast<size_t>(t),
                                          static_cast<int>(g)));
    }
  }
  return dataset;
}

}  // namespace crowd::data
