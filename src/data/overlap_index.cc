#include "data/overlap_index.h"

#include <bit>

#include "util/string_util.h"

namespace crowd::data {

OverlapIndex::OverlapIndex(const ResponseMatrix& responses)
    : responses_(responses),
      num_workers_(responses.num_workers()),
      words_per_worker_((responses.num_tasks() + 63) / 64),
      attempt_bits_(num_workers_ * words_per_worker_, 0),
      pair_common_(num_workers_ * num_workers_, 0),
      pair_agree_(num_workers_ * num_workers_, 0) {
  const size_t n = responses.num_tasks();
  for (WorkerId w = 0; w < num_workers_; ++w) {
    uint64_t* bits = attempt_bits_.data() + w * words_per_worker_;
    for (TaskId t = 0; t < n; ++t) {
      if (responses.Has(w, t)) bits[t / 64] |= uint64_t{1} << (t % 64);
    }
  }
  for (WorkerId i = 0; i < num_workers_; ++i) {
    for (WorkerId j = i; j < num_workers_; ++j) {
      size_t common = 0;
      size_t agree = 0;
      for (TaskId t = 0; t < n; ++t) {
        auto ri = responses.Get(i, t);
        if (!ri.has_value()) continue;
        auto rj = responses.Get(j, t);
        if (!rj.has_value()) continue;
        ++common;
        if (*ri == *rj) ++agree;
      }
      pair_common_[Index(i, j)] = pair_common_[Index(j, i)] = common;
      pair_agree_[Index(i, j)] = pair_agree_[Index(j, i)] = agree;
    }
  }
}

Result<double> OverlapIndex::AgreementRate(WorkerId i, WorkerId j) const {
  size_t common = CommonCount(i, j);
  if (common == 0) {
    return Status::InsufficientData(StrFormat(
        "workers %zu and %zu have no tasks in common", i, j));
  }
  return static_cast<double>(AgreementCount(i, j)) /
         static_cast<double>(common);
}

Status OverlapIndex::ApplyResponse(WorkerId w, TaskId t,
                                   std::optional<Response> previous) {
  if (w >= num_workers_ || t >= responses_.num_tasks()) {
    return Status::Invalid("ApplyResponse: index out of range");
  }
  auto current = responses_.Get(w, t);
  if (!current.has_value()) {
    return Status::Invalid(
        "ApplyResponse must be called after the response was set");
  }
  const bool newly_attempted = !previous.has_value();
  if (!newly_attempted && *previous == *current) return Status::OK();

  for (WorkerId v = 0; v < num_workers_; ++v) {
    if (v == w) continue;
    auto rv = responses_.Get(v, t);
    if (!rv.has_value()) continue;
    size_t idx = Index(w, v);
    size_t idx_t = Index(v, w);
    if (newly_attempted) {
      ++pair_common_[idx];
      ++pair_common_[idx_t];
      if (*rv == *current) {
        ++pair_agree_[idx];
        ++pair_agree_[idx_t];
      }
    } else {
      // Overwrite: common count unchanged, agreement may flip.
      if (*rv == *previous && *rv != *current) {
        --pair_agree_[idx];
        --pair_agree_[idx_t];
      } else if (*rv != *previous && *rv == *current) {
        ++pair_agree_[idx];
        ++pair_agree_[idx_t];
      }
    }
  }
  if (newly_attempted) {
    // Self counts track the worker's attempted-task total.
    ++pair_common_[Index(w, w)];
    ++pair_agree_[Index(w, w)];
    attempt_bits_[w * words_per_worker_ + t / 64] |= uint64_t{1}
                                                     << (t % 64);
  }
  return Status::OK();
}

size_t OverlapIndex::TripleCommonCount(WorkerId i, WorkerId j,
                                       WorkerId k) const {
  CROWD_DCHECK(i < num_workers_ && j < num_workers_ && k < num_workers_);
  const uint64_t* a = attempt_bits_.data() + i * words_per_worker_;
  const uint64_t* b = attempt_bits_.data() + j * words_per_worker_;
  const uint64_t* c = attempt_bits_.data() + k * words_per_worker_;
  size_t count = 0;
  for (size_t word = 0; word < words_per_worker_; ++word) {
    count += std::popcount(a[word] & b[word] & c[word]);
  }
  return count;
}

}  // namespace crowd::data
