#include "data/overlap_index.h"

#include <bit>

#include "util/string_util.h"

namespace crowd::data {

OverlapIndex::OverlapIndex(const ResponseMatrix& responses)
    : responses_(responses),
      num_workers_(responses.num_workers()),
      arity_(static_cast<size_t>(responses.arity())),
      words_per_worker_((responses.num_tasks() + 63) / 64),
      attempt_bits_(num_workers_ * words_per_worker_, 0),
      value_bits_(num_workers_ * arity_ * words_per_worker_, 0),
      pair_common_(num_workers_ * num_workers_, 0),
      pair_agree_(num_workers_ * num_workers_, 0) {
  const size_t n = responses.num_tasks();
  for (WorkerId w = 0; w < num_workers_; ++w) {
    for (TaskId t = 0; t < n; ++t) {
      auto r = responses.Get(w, t);
      if (!r.has_value()) continue;
      const uint64_t mask = uint64_t{1} << (t % 64);
      AttemptBits(w)[t / 64] |= mask;
      ValueBits(w, static_cast<size_t>(*r))[t / 64] |= mask;
    }
  }
  for (WorkerId i = 0; i < num_workers_; ++i) {
    const uint64_t* ai = AttemptBits(i);
    for (WorkerId j = i; j < num_workers_; ++j) {
      const uint64_t* aj = AttemptBits(j);
      size_t common = 0;
      for (size_t word = 0; word < words_per_worker_; ++word) {
        common += static_cast<size_t>(std::popcount(ai[word] & aj[word]));
      }
      size_t agree = 0;
      for (size_t r = 0; r < arity_; ++r) {
        const uint64_t* vi = ValueBits(i, r);
        const uint64_t* vj = ValueBits(j, r);
        for (size_t word = 0; word < words_per_worker_; ++word) {
          agree += static_cast<size_t>(std::popcount(vi[word] & vj[word]));
        }
      }
      pair_common_[Index(i, j)] = pair_common_[Index(j, i)] = common;
      pair_agree_[Index(i, j)] = pair_agree_[Index(j, i)] = agree;
    }
  }
}

Result<double> OverlapIndex::AgreementRate(WorkerId i, WorkerId j) const {
  size_t common = CommonCount(i, j);
  if (common == 0) {
    return Status::InsufficientData(StrFormat(
        "workers %zu and %zu have no tasks in common", i, j));
  }
  return static_cast<double>(AgreementCount(i, j)) /
         static_cast<double>(common);
}

Status OverlapIndex::ApplyResponse(WorkerId w, TaskId t,
                                   std::optional<Response> previous) {
  if (w >= num_workers_ || t >= responses_.num_tasks()) {
    return Status::Invalid("ApplyResponse: index out of range");
  }
  auto current = responses_.Get(w, t);
  if (!current.has_value()) {
    return Status::Invalid(
        "ApplyResponse must be called after the response was set");
  }
  const bool newly_attempted = !previous.has_value();
  if (!newly_attempted && *previous == *current) return Status::OK();

  for (WorkerId v = 0; v < num_workers_; ++v) {
    if (v == w) continue;
    auto rv = responses_.Get(v, t);
    if (!rv.has_value()) continue;
    size_t idx = Index(w, v);
    size_t idx_t = Index(v, w);
    if (newly_attempted) {
      ++pair_common_[idx];
      ++pair_common_[idx_t];
      if (*rv == *current) {
        ++pair_agree_[idx];
        ++pair_agree_[idx_t];
      }
    } else {
      // Overwrite: common count unchanged, agreement may flip.
      if (*rv == *previous && *rv != *current) {
        --pair_agree_[idx];
        --pair_agree_[idx_t];
      } else if (*rv != *previous && *rv == *current) {
        ++pair_agree_[idx];
        ++pair_agree_[idx_t];
      }
    }
  }
  const size_t word = t / 64;
  const uint64_t mask = uint64_t{1} << (t % 64);
  if (newly_attempted) {
    // Self counts track the worker's attempted-task total.
    ++pair_common_[Index(w, w)];
    ++pair_agree_[Index(w, w)];
    AttemptBits(w)[word] |= mask;
  } else {
    ValueBits(w, static_cast<size_t>(*previous))[word] &= ~mask;
  }
  ValueBits(w, static_cast<size_t>(*current))[word] |= mask;
  return Status::OK();
}

size_t OverlapIndex::TripleCommonCount(WorkerId i, WorkerId j,
                                       WorkerId k) const {
  CROWD_DCHECK(i < num_workers_ && j < num_workers_ && k < num_workers_);
  const uint64_t* a = AttemptBits(i);
  const uint64_t* b = AttemptBits(j);
  const uint64_t* c = AttemptBits(k);
  size_t count = 0;
  for (size_t word = 0; word < words_per_worker_; ++word) {
    count += static_cast<size_t>(std::popcount(a[word] & b[word] & c[word]));
  }
  return count;
}

}  // namespace crowd::data
