// Precomputed co-attempt statistics over a ResponseMatrix:
//   c_ij   — tasks attempted by both workers i and j,
//   a_ij   — of those, tasks where their responses agree,
//   c_ijk  — tasks attempted by all of i, j, k (bitset popcount).
// These are the raw ingredients of the agreement rates q_ij and of the
// Lemma 3 / Lemma 4 covariance formulas.
//
// All counts are computed from per-worker bitsets: one attempt mask
// per worker, plus one mask per (worker, response value) pair. Then
//   c_ij  = popcount(A_i & A_j)
//   a_ij  = sum_r popcount(V_i^r & V_j^r)
//   c_ijk = popcount(A_i & A_j & A_k)
// process 64 tasks per instruction, replacing the per-cell
// std::optional scan the construction used to run (O(m^2 n) cell
// probes -> O(m^2 (k+1) n/64) word ANDs).
//
// Once built, the index is immutable under evaluation: the estimators
// only call the const accessors, which is what makes the worker-level
// ParallelFor in the evaluation engines safe. ApplyResponse (the
// incremental mode) is the only mutator and must not run concurrently
// with evaluation.

#ifndef CROWD_DATA_OVERLAP_INDEX_H_
#define CROWD_DATA_OVERLAP_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "data/response_matrix.h"
#include "util/logging.h"
#include "util/result.h"

namespace crowd::data {

/// \brief Pairwise co-attempt and agreement counts via bitset kernels.
class OverlapIndex {
 public:
  explicit OverlapIndex(const ResponseMatrix& responses);

  size_t num_workers() const { return num_workers_; }

  /// c_ij: number of tasks attempted by both i and j.
  size_t CommonCount(WorkerId i, WorkerId j) const {
    return pair_common_[Index(i, j)];
  }

  /// Number of common tasks with equal responses.
  size_t AgreementCount(WorkerId i, WorkerId j) const {
    return pair_agree_[Index(i, j)];
  }

  /// q_ij estimate = agreements / common tasks; fails when c_ij == 0.
  Result<double> AgreementRate(WorkerId i, WorkerId j) const;

  /// c_ijk: number of tasks attempted by all three workers. O(n/64).
  size_t TripleCommonCount(WorkerId i, WorkerId j, WorkerId k) const;

  /// Whether worker `w` attempted task `t` (O(1) bit probe).
  bool Attempted(WorkerId w, TaskId t) const {
    CROWD_DCHECK(w < num_workers_ && t < responses_.num_tasks());
    return (attempt_bits_[w * words_per_worker_ + t / 64] >> (t % 64)) &
           uint64_t{1};
  }

  /// \brief Incrementally accounts for worker `w`'s response to task
  /// `t` having just been set in the underlying matrix (call *after*
  /// ResponseMatrix::Set). `previous` is the response the cell held
  /// before, or nullopt when it was missing. O(m) per update — the
  /// incremental-evaluation mode of the paper's conclusion.
  Status ApplyResponse(WorkerId w, TaskId t,
                       std::optional<Response> previous);

 private:
  size_t Index(WorkerId i, WorkerId j) const {
    CROWD_DCHECK(i < num_workers_ && j < num_workers_);
    return i * num_workers_ + j;
  }

  uint64_t* AttemptBits(WorkerId w) {
    return attempt_bits_.data() + w * words_per_worker_;
  }
  const uint64_t* AttemptBits(WorkerId w) const {
    return attempt_bits_.data() + w * words_per_worker_;
  }
  /// The bitset of tasks worker `w` answered with value `r`.
  uint64_t* ValueBits(WorkerId w, size_t r) {
    return value_bits_.data() + (w * arity_ + r) * words_per_worker_;
  }
  const uint64_t* ValueBits(WorkerId w, size_t r) const {
    return value_bits_.data() + (w * arity_ + r) * words_per_worker_;
  }

  const ResponseMatrix& responses_;
  size_t num_workers_;
  size_t arity_;
  size_t words_per_worker_;
  /// Per-worker attempt bitmask, concatenated.
  std::vector<uint64_t> attempt_bits_;
  /// Per-(worker, response value) bitmask, concatenated; each attempt
  /// bit is set in exactly one value plane.
  std::vector<uint64_t> value_bits_;
  std::vector<size_t> pair_common_;
  std::vector<size_t> pair_agree_;
};

}  // namespace crowd::data

#endif  // CROWD_DATA_OVERLAP_INDEX_H_
