// Precomputed co-attempt statistics over a ResponseMatrix:
//   c_ij   — tasks attempted by both workers i and j,
//   a_ij   — of those, tasks where their responses agree,
//   c_ijk  — tasks attempted by all of i, j, k (bitset popcount).
// These are the raw ingredients of the agreement rates q_ij and of the
// Lemma 3 / Lemma 4 covariance formulas. Triple counts are needed for
// every pair of triples in Algorithm A2's combination step, so they
// are computed from per-worker attempt bitmasks (O(n/64) each) rather
// than by scanning tasks.

#ifndef CROWD_DATA_OVERLAP_INDEX_H_
#define CROWD_DATA_OVERLAP_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "data/response_matrix.h"
#include "util/logging.h"
#include "util/result.h"

namespace crowd::data {

/// \brief Pairwise co-attempt and agreement counts, O(m^2 n) to build.
class OverlapIndex {
 public:
  explicit OverlapIndex(const ResponseMatrix& responses);

  size_t num_workers() const { return num_workers_; }

  /// c_ij: number of tasks attempted by both i and j.
  size_t CommonCount(WorkerId i, WorkerId j) const {
    return pair_common_[Index(i, j)];
  }

  /// Number of common tasks with equal responses.
  size_t AgreementCount(WorkerId i, WorkerId j) const {
    return pair_agree_[Index(i, j)];
  }

  /// q_ij estimate = agreements / common tasks; fails when c_ij == 0.
  Result<double> AgreementRate(WorkerId i, WorkerId j) const;

  /// c_ijk: number of tasks attempted by all three workers. O(n/64).
  size_t TripleCommonCount(WorkerId i, WorkerId j, WorkerId k) const;

  /// \brief Incrementally accounts for worker `w`'s response to task
  /// `t` having just been set in the underlying matrix (call *after*
  /// ResponseMatrix::Set). `previous` is the response the cell held
  /// before, or nullopt when it was missing. O(m) per update — the
  /// incremental-evaluation mode of the paper's conclusion.
  Status ApplyResponse(WorkerId w, TaskId t,
                       std::optional<Response> previous);

 private:
  size_t Index(WorkerId i, WorkerId j) const {
    CROWD_DCHECK(i < num_workers_ && j < num_workers_);
    return i * num_workers_ + j;
  }

  const ResponseMatrix& responses_;
  size_t num_workers_;
  size_t words_per_worker_;
  /// Per-worker attempt bitmask, concatenated.
  std::vector<uint64_t> attempt_bits_;
  std::vector<size_t> pair_common_;
  std::vector<size_t> pair_agree_;
};

}  // namespace crowd::data

#endif  // CROWD_DATA_OVERLAP_INDEX_H_
