// A Dataset bundles a ResponseMatrix with (optional) gold-standard
// labels and per-worker proxy truths. The evaluation protocol of the
// paper uses gold labels only to *score* the confidence intervals — the
// estimators themselves never see them.

#ifndef CROWD_DATA_DATASET_H_
#define CROWD_DATA_DATASET_H_

#include <optional>
#include <string>
#include <vector>

#include "data/response_matrix.h"
#include "util/result.h"

namespace crowd::data {

/// \brief Responses plus optional ground truth.
class Dataset {
 public:
  Dataset(std::string name, ResponseMatrix responses)
      : name_(std::move(name)),
        responses_(std::move(responses)),
        gold_(responses_.num_tasks(), kNoGold) {}

  const std::string& name() const { return name_; }
  const ResponseMatrix& responses() const { return responses_; }
  ResponseMatrix* mutable_responses() { return &responses_; }

  /// Records the gold label of task `t`.
  Status SetGold(TaskId t, Response truth);

  bool HasGold(TaskId t) const {
    return t < gold_.size() && gold_[t] != kNoGold;
  }

  std::optional<Response> Gold(TaskId t) const {
    if (!HasGold(t)) return std::nullopt;
    return gold_[t];
  }

  /// Number of tasks with a gold label.
  size_t GoldCount() const;

  /// \brief The paper's proxy for a binary worker's true error rate:
  /// the fraction of the worker's gold-labeled responses that are
  /// wrong. Fails when the worker answered no gold-labeled task.
  Result<double> ProxyErrorRate(WorkerId w) const;

  /// \brief The k-ary analogue: proxy response-probability matrix,
  /// entry (j1, j2) = fraction of tasks with gold j1 that the worker
  /// answered j2. Rows with zero gold-labeled responses are flagged in
  /// `row_counts` (entry 0) and left as all-zero.
  struct ProxyMatrix {
    /// arity x arity row-stochastic (where counts allow).
    std::vector<std::vector<double>> probabilities;
    /// Number of gold-labeled responses backing each row.
    std::vector<int> row_counts;
  };
  Result<ProxyMatrix> ProxyResponseMatrix(WorkerId w) const;

  /// \brief Human-readable shape/density summary.
  std::string Summary() const;

 private:
  static constexpr Response kNoGold = -1;

  std::string name_;
  ResponseMatrix responses_;
  std::vector<Response> gold_;
};

}  // namespace crowd::data

#endif  // CROWD_DATA_DATASET_H_
