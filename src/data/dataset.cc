#include "data/dataset.h"

#include "util/string_util.h"

namespace crowd::data {

Status Dataset::SetGold(TaskId t, Response truth) {
  if (t >= responses_.num_tasks()) {
    return Status::Invalid(StrFormat("gold task id %zu out of range", t));
  }
  if (truth < 0 || truth >= responses_.arity()) {
    return Status::Invalid(
        StrFormat("gold label %d outside [0, %d)", truth,
                  responses_.arity()));
  }
  gold_[t] = truth;
  return Status::OK();
}

size_t Dataset::GoldCount() const {
  size_t count = 0;
  for (Response g : gold_) {
    if (g != kNoGold) ++count;
  }
  return count;
}

Result<double> Dataset::ProxyErrorRate(WorkerId w) const {
  if (w >= responses_.num_workers()) {
    return Status::Invalid(StrFormat("worker id %zu out of range", w));
  }
  int attempted = 0;
  int wrong = 0;
  for (TaskId t = 0; t < responses_.num_tasks(); ++t) {
    if (!HasGold(t)) continue;
    auto r = responses_.Get(w, t);
    if (!r.has_value()) continue;
    ++attempted;
    if (*r != gold_[t]) ++wrong;
  }
  if (attempted == 0) {
    return Status::InsufficientData(StrFormat(
        "worker %zu answered no gold-labeled tasks", w));
  }
  return static_cast<double>(wrong) / attempted;
}

Result<Dataset::ProxyMatrix> Dataset::ProxyResponseMatrix(WorkerId w) const {
  if (w >= responses_.num_workers()) {
    return Status::Invalid(StrFormat("worker id %zu out of range", w));
  }
  const int k = responses_.arity();
  ProxyMatrix out;
  out.probabilities.assign(k, std::vector<double>(k, 0.0));
  out.row_counts.assign(k, 0);
  for (TaskId t = 0; t < responses_.num_tasks(); ++t) {
    if (!HasGold(t)) continue;
    auto r = responses_.Get(w, t);
    if (!r.has_value()) continue;
    int truth = gold_[t];
    ++out.row_counts[truth];
    out.probabilities[truth][*r] += 1.0;
  }
  bool any = false;
  for (int j1 = 0; j1 < k; ++j1) {
    if (out.row_counts[j1] == 0) continue;
    any = true;
    for (int j2 = 0; j2 < k; ++j2) {
      out.probabilities[j1][j2] /= out.row_counts[j1];
    }
  }
  if (!any) {
    return Status::InsufficientData(StrFormat(
        "worker %zu answered no gold-labeled tasks", w));
  }
  return out;
}

std::string Dataset::Summary() const {
  return StrFormat(
      "%s: %zu workers x %zu tasks, arity %d, %zu responses "
      "(density %.3f), %zu gold labels",
      name_.c_str(), responses_.num_workers(), responses_.num_tasks(),
      responses_.arity(), responses_.TotalResponses(),
      responses_.Density(), GoldCount());
}

}  // namespace crowd::data
