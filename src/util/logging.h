// Minimal leveled logging and check macros, in the spirit of
// RocksDB/Arrow internal logging. Logging goes to stderr; the level is
// process-global and settable programmatically or via the
// CROWDEVAL_LOG_LEVEL environment variable (DEBUG/INFO/WARNING/ERROR).
//
// Output format is either human-readable text (the default) or
// structured JSON — one object per line with ts/level/src/msg fields —
// selected programmatically or via CROWDEVAL_LOG_FORMAT=json. Each log
// line is assembled in full and emitted with a single write(2), so
// concurrent threads never interleave within a line in either format.

#ifndef CROWD_UTIL_LOGGING_H_
#define CROWD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace crowd {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

enum class LogFormat : int {
  kText = 0,
  kJson = 1,
};

/// \brief Process-global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Process-global output format (text or one-JSON-object-per-
/// line). Initialized from CROWDEVAL_LOG_FORMAT ("json"/"text").
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

namespace internal {

/// \brief Renders one complete log line (including the trailing
/// newline) for the given format. Exposed for testing; `ts_seconds`
/// is Unix wall-clock time.
std::string FormatLogLine(LogFormat format, LogLevel level,
                          const char* file, int line,
                          const std::string& message, double ts_seconds);

/// Stream-style log sink; emits on destruction. Fatal logs abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crowd

#define CROWD_LOG_INTERNAL(level) \
  ::crowd::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define CROWD_LOG_DEBUG CROWD_LOG_INTERNAL(::crowd::LogLevel::kDebug)
#define CROWD_LOG_INFO CROWD_LOG_INTERNAL(::crowd::LogLevel::kInfo)
#define CROWD_LOG_WARNING CROWD_LOG_INTERNAL(::crowd::LogLevel::kWarning)
#define CROWD_LOG_ERROR CROWD_LOG_INTERNAL(::crowd::LogLevel::kError)

/// Internal invariant check; aborts with a message when violated.
/// Active in all build types (cheap conditions only).
#define CROWD_CHECK(condition)                                      \
  if (!(condition))                                                 \
  CROWD_LOG_INTERNAL(::crowd::LogLevel::kFatal)                     \
      << "Check failed: " #condition " "

#define CROWD_CHECK_OP(op, a, b)                                  \
  if (!((a)op(b)))                                                \
  CROWD_LOG_INTERNAL(::crowd::LogLevel::kFatal)                   \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " \
      << (b) << ") "

#define CROWD_CHECK_EQ(a, b) CROWD_CHECK_OP(==, a, b)
#define CROWD_CHECK_NE(a, b) CROWD_CHECK_OP(!=, a, b)
#define CROWD_CHECK_LT(a, b) CROWD_CHECK_OP(<, a, b)
#define CROWD_CHECK_LE(a, b) CROWD_CHECK_OP(<=, a, b)
#define CROWD_CHECK_GT(a, b) CROWD_CHECK_OP(>, a, b)
#define CROWD_CHECK_GE(a, b) CROWD_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define CROWD_DCHECK(condition) \
  while (false) CROWD_CHECK(condition)
#else
#define CROWD_DCHECK(condition) CROWD_CHECK(condition)
#endif

#endif  // CROWD_UTIL_LOGGING_H_
