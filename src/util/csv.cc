#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace crowd {

namespace {

// Splits one CSV record, honoring double-quoted fields with "" escapes.
Result<std::vector<std::string>> SplitRecord(const std::string& line,
                                             char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::IoError("unterminated quote in CSV record: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

bool NeedsQuoting(const std::string& field, char sep) {
  return field.find(sep) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& field, char sep) {
  if (!NeedsQuoting(field, sep)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return Status::NotFound("CSV column not found: " + name);
}

Result<CsvTable> ParseCsv(const std::string& text, char sep) {
  CsvTable table;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    CROWD_ASSIGN_OR_RETURN(auto fields, SplitRecord(line, sep));
    if (table.header.empty()) {
      table.header = std::move(fields);
    } else {
      if (fields.size() != table.header.size()) {
        return Status::IoError(StrFormat(
            "CSV row %zu has %zu fields, header has %zu", line_no,
            fields.size(), table.header.size()));
      }
      table.rows.push_back(std::move(fields));
    }
  }
  if (table.header.empty()) {
    return Status::IoError("CSV input has no header row");
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, char sep) {
  CROWD_ASSIGN_OR_RETURN(auto text, ReadFileToString(path));
  auto result = ParseCsv(text, sep);
  if (!result.ok()) {
    return result.status().WithContext("while reading " + path);
  }
  return result;
}

std::string WriteCsv(const CsvTable& table, char sep) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(sep);
      out += QuoteField(row[i], sep);
    }
    out.push_back('\n');
  };
  append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path,
                    char sep) {
  return WriteStringToFile(WriteCsv(table, sep), path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on file: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& contents,
                         const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open file for write: " + path);
  file << contents;
  if (!file) return Status::IoError("write failure on file: " + path);
  return Status::OK();
}

}  // namespace crowd
