// Small string helpers shared across the library: formatting, splitting,
// trimming and number parsing (locale-independent).

#ifndef CROWD_UTIL_STRING_UTIL_H_
#define CROWD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace crowd {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Whether `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Locale-independent strict parsers: the whole (trimmed) token must be
/// consumed, otherwise an Invalid status is returned.
Result<double> ParseDouble(std::string_view token);
Result<long long> ParseInt(std::string_view token);

/// Joins the elements with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

}  // namespace crowd

#endif  // CROWD_UTIL_STRING_UTIL_H_
