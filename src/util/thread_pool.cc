#include "util/thread_pool.h"

#include <exception>
#include <string>

namespace crowd {

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t total = ResolveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t i = 1; i < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Status ThreadPool::RunOne(const std::function<Status(size_t)>& fn,
                          size_t i) {
  try {
    return fn(i);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [&] {
        return shutting_down_ || job_generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = job_generation_;
    }
    RunCurrentJob();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_remaining_ == 0) job_done_.notify_all();
    }
  }
}

void ThreadPool::RunCurrentJob() {
  const std::function<Status(size_t)>& fn = *job_fn_;
  const size_t end = job_end_;
  for (;;) {
    size_t i = job_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end) break;
    Status st = RunOne(fn, i);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok() || i < first_error_index_) {
        first_error_index_ = i;
        first_error_ = std::move(st);
      }
    }
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end,
                               const std::function<Status(size_t)>& fn) {
  if (end <= begin) return Status::OK();
  if (workers_.empty()) {
    // Serial path: same contract (all indices run, lowest-index error
    // wins) without any synchronization.
    Status first_error;
    for (size_t i = begin; i < end; ++i) {
      Status st = RunOne(fn, i);
      if (!st.ok() && first_error.ok()) first_error = std::move(st);
    }
    return first_error;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_next_.store(begin, std::memory_order_relaxed);
    first_error_ = Status::OK();
    first_error_index_ = end;
    workers_remaining_ = workers_.size();
    ++job_generation_;
  }
  job_ready_.notify_all();
  RunCurrentJob();
  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [&] { return workers_remaining_ == 0; });
  job_fn_ = nullptr;
  return first_error_;
}

}  // namespace crowd
