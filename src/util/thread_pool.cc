#include "util/thread_pool.h"

#include <chrono>
#include <exception>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace crowd {

namespace {

/// Pool instrumentation handles, resolved once on the first pass with
/// metrics enabled. Returns nullptr (one relaxed load) when disabled.
struct PoolMetrics {
  obs::Counter* jobs;
  obs::Counter* tasks;
  obs::Gauge* pending;
  obs::HistogramMetric* job_seconds;
  obs::HistogramMetric* task_seconds;
};

const PoolMetrics* GetPoolMetrics() {
  obs::Registry* r = obs::MetricsRegistry();
  if (r == nullptr) return nullptr;
  static const PoolMetrics metrics = {
      r->GetCounter("crowdeval_util_threadpool_jobs_total",
                    "ParallelFor jobs submitted"),
      r->GetCounter("crowdeval_util_threadpool_tasks_total",
                    "ParallelFor indices executed"),
      r->GetGauge("crowdeval_util_threadpool_queue_depth",
                  "indices published but not yet executed"),
      r->GetHistogram("crowdeval_util_threadpool_job_seconds",
                      "wall time of one ParallelFor job",
                      obs::Histogram::LatencyBounds()),
      r->GetHistogram("crowdeval_util_threadpool_task_seconds",
                      "wall time of one ParallelFor index",
                      obs::Histogram::LatencyBounds()),
  };
  return &metrics;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t total = ResolveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t i = 1; i < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    shutting_down_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Status ThreadPool::RunOne(const std::function<Status(size_t)>& fn,
                          size_t i) {
  try {
    return fn(i);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      // Guarded fields are tested directly under the held lock (not
      // via a wait predicate lambda) so the thread-safety analysis
      // sees every access.
      util::MutexLock lock(mu_);
      while (!shutting_down_ && job_generation_ == seen_generation) {
        lock.Wait(job_ready_);
      }
      if (shutting_down_) return;
      seen_generation = job_generation_;
    }
    RunCurrentJob();
    {
      util::MutexLock lock(mu_);
      if (--workers_remaining_ == 0) job_done_.notify_all();
    }
  }
}

void ThreadPool::RunCurrentJob() {
  const PoolMetrics* metrics = GetPoolMetrics();
  const std::function<Status(size_t)>& fn = *job_fn_;
  const size_t end = job_end_;
  for (;;) {
    size_t i = job_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end) break;
    const double task_start =
        metrics != nullptr ? MonotonicSeconds() : 0.0;
    Status st = RunOne(fn, i);
    if (metrics != nullptr) {
      metrics->tasks->Increment();
      metrics->pending->Subtract(1);
      metrics->task_seconds->Record(MonotonicSeconds() - task_start);
    }
    if (!st.ok()) {
      util::MutexLock lock(mu_);
      if (first_error_.ok() || i < first_error_index_) {
        first_error_index_ = i;
        first_error_ = std::move(st);
      }
    }
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end,
                               const std::function<Status(size_t)>& fn) {
  if (end <= begin) return Status::OK();
  CROWD_SPAN("util.parallel_for");
  const PoolMetrics* metrics = GetPoolMetrics();
  const double job_start = metrics != nullptr ? MonotonicSeconds() : 0.0;
  if (metrics != nullptr) {
    metrics->jobs->Increment();
    metrics->pending->Add(static_cast<int64_t>(end - begin));
  }
  if (workers_.empty()) {
    // Serial path: same contract (all indices run, lowest-index error
    // wins) without any synchronization.
    Status first_error;
    for (size_t i = begin; i < end; ++i) {
      const double task_start =
          metrics != nullptr ? MonotonicSeconds() : 0.0;
      Status st = RunOne(fn, i);
      if (metrics != nullptr) {
        metrics->tasks->Increment();
        metrics->pending->Subtract(1);
        metrics->task_seconds->Record(MonotonicSeconds() - task_start);
      }
      if (!st.ok() && first_error.ok()) first_error = std::move(st);
    }
    if (metrics != nullptr) {
      metrics->job_seconds->Record(MonotonicSeconds() - job_start);
    }
    return first_error;
  }
  {
    util::MutexLock lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_next_.store(begin, std::memory_order_relaxed);
    first_error_ = Status::OK();
    first_error_index_ = end;
    workers_remaining_ = workers_.size();
    ++job_generation_;
  }
  job_ready_.notify_all();
  RunCurrentJob();
  util::MutexLock lock(mu_);
  while (workers_remaining_ != 0) lock.Wait(job_done_);
  job_fn_ = nullptr;
  if (metrics != nullptr) {
    metrics->job_seconds->Record(MonotonicSeconds() - job_start);
  }
  return first_error_;
}

}  // namespace crowd
