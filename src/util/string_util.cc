#include "util/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace crowd {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // vsnprintf writes the terminating NUL into needed+1 bytes; C++11
    // strings guarantee data()[size()] is writable as '\0'.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  const char* ws = " \t\r\n\v\f";
  size_t begin = text.find_first_not_of(ws);
  if (begin == std::string_view::npos) return std::string_view();
  size_t end = text.find_last_not_of(ws);
  return text.substr(begin, end - begin + 1);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

Result<double> ParseDouble(std::string_view token) {
  std::string buf(Trim(token));
  if (buf.empty()) return Status::Invalid("empty numeric token");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::Invalid("numeric token out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::Invalid("malformed numeric token: '" + buf + "'");
  }
  return value;
}

Result<long long> ParseInt(std::string_view token) {
  std::string buf(Trim(token));
  if (buf.empty()) return Status::Invalid("empty integer token");
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::Invalid("integer token out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::Invalid("malformed integer token: '" + buf + "'");
  }
  return value;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace crowd
