// A small strict CSV reader/writer used for dataset I/O. Supports
// comment lines (leading '#'), a required header row, and quoted fields
// containing separators. This is deliberately minimal: datasets in this
// project are rectangular tables of short tokens.

#ifndef CROWD_UTIL_CSV_H_
#define CROWD_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace crowd {

/// \brief An in-memory CSV table: one header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;
};

/// \brief Parses CSV text. Every row must have the same number of
/// fields as the header; violations produce an IoError.
Result<CsvTable> ParseCsv(const std::string& text, char sep = ',');

/// \brief Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path, char sep = ',');

/// \brief Serializes a table; fields containing the separator, quotes
/// or newlines are quoted.
std::string WriteCsv(const CsvTable& table, char sep = ',');

/// \brief Writes a table to a file.
Status WriteCsvFile(const CsvTable& table, const std::string& path,
                    char sep = ',');

/// \brief Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes a string to a file, truncating.
Status WriteStringToFile(const std::string& contents,
                         const std::string& path);

}  // namespace crowd

#endif  // CROWD_UTIL_CSV_H_
