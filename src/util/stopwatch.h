// Wall-clock stopwatch for experiment timing (header-only).

#ifndef CROWD_UTIL_STOPWATCH_H_
#define CROWD_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace crowd {

/// \brief A restartable wall-clock timer.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Integer nanoseconds elapsed; preferred for histogram feeding and
  /// bench inner loops (no double rounding at the ns scale).
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crowd

#endif  // CROWD_UTIL_STOPWATCH_H_
