// The annotatable mutex shim: util::Mutex wraps std::mutex as a Clang
// thread-safety `capability`, and util::MutexLock is the RAII guard
// the analysis understands (`scoped_lockable`). All library code locks
// through these types — never raw std::mutex / std::lock_guard /
// std::unique_lock (crowd-lint rule `raw-mutex`) — so that every
// CROWD_GUARDED_BY field access is checked at compile time under
// `-Wthread-safety -Werror` (see util/thread_annotations.h).
//
// Condition variables: keep a plain std::condition_variable next to
// the Mutex and wait through MutexLock::Wait, which exposes the
// underlying std::unique_lock. The analysis treats the capability as
// held across the wait (the lock is reacquired before Wait returns,
// so guarded accesses after a wait are in fact protected).
//
// Header-only and free of crowd_* dependencies, so crowd_obs (which
// sits below crowd_util in the link order) may use it too.

#ifndef CROWD_UTIL_MUTEX_H_
#define CROWD_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace crowd::util {

/// \brief std::mutex as an annotatable capability.
class CROWD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CROWD_ACQUIRE() { mu_.lock(); }
  void Unlock() CROWD_RELEASE() { mu_.unlock(); }
  bool TryLock() CROWD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for interop that the analysis cannot model.
  /// Locking through it bypasses the analysis — MutexLock only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over util::Mutex (the std::lock_guard /
/// std::unique_lock replacement). Holds the capability for its whole
/// scope; supports condition-variable waits.
class CROWD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CROWD_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~MutexLock() CROWD_RELEASE() {}  // unique_lock member unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Blocks until `cv` is notified. The mutex is released while
  /// waiting and reacquired before returning, exactly like
  /// std::condition_variable::wait on the underlying lock.
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// Waits until `pred()` holds; `pred` runs with the mutex held.
  template <typename Predicate>
  void Wait(std::condition_variable& cv, Predicate pred) {
    cv.wait(lock_, std::move(pred));
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace crowd::util

#endif  // CROWD_UTIL_MUTEX_H_
