#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace crowd {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("CROWDEVAL_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

LogFormat InitialFormat() {
  const char* env = std::getenv("CROWDEVAL_LOG_FORMAT");
  if (env != nullptr && std::strcmp(env, "json") == 0) {
    return LogFormat::kJson;
  }
  return LogFormat::kText;
}

std::atomic<int>& FormatStore() {
  static std::atomic<int> format{static_cast<int>(InitialFormat())};
  return format;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
}

const char* Basename(const char* file) {
  const char* base = std::strrchr(file, '/');
  return base ? base + 1 : file;
}

double WallNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// One write(2) per line so concurrent loggers never interleave
/// mid-line (stderr is unbuffered but fprintf may split long lines).
void EmitLine(const std::string& line) {
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::write(STDERR_FILENO, line.data() + off, line.size() - off);
    if (n <= 0) return;  // logging must never fail the process
    off += static_cast<size_t>(n);
  }
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStore().load());
}

void SetLogFormat(LogFormat format) {
  FormatStore().store(static_cast<int>(format));
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(FormatStore().load());
}

namespace internal {

std::string FormatLogLine(LogFormat format, LogLevel level,
                          const char* file, int line,
                          const std::string& message, double ts_seconds) {
  std::string out;
  char buffer[64];
  if (format == LogFormat::kJson) {
    out += "{\"ts\":";
    std::snprintf(buffer, sizeof(buffer), "%.6f", ts_seconds);
    out += buffer;
    out += ",\"level\":\"";
    out += LevelName(level);
    out += "\",\"src\":\"";
    std::snprintf(buffer, sizeof(buffer), "%s:%d", Basename(file), line);
    AppendJsonEscaped(buffer, &out);
    out += "\",\"msg\":\"";
    AppendJsonEscaped(message, &out);
    out += "\"}\n";
  } else {
    out += "[";
    out += LevelName(level);
    out += " ";
    std::snprintf(buffer, sizeof(buffer), "%s:%d", Basename(file), line);
    out += buffer;
    out += "] ";
    out += message;
    out += "\n";
  }
  return out;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    EmitLine(FormatLogLine(GetLogFormat(), level_, file_, line_,
                           stream_.str(), WallNowSeconds()));
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace crowd
