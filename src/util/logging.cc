#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace crowd {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("CROWDEVAL_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStore().load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for compact output.
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file)
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace crowd
