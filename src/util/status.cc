#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace crowd {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kInsufficientData:
      return "Insufficient data";
    case StatusCode::kNumericalError:
      return "Numerical error";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kFilteredOut:
      return "Filtered out";
  }
  return "Unknown code";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<State>(State{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(code()) + ": " + message();
}

void Status::Abort() const {
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace crowd
