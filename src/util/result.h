// Result<T>: the value-or-error companion of Status, modeled on
// arrow::Result. A Result is either a T or a non-OK Status; accessing
// the value of an errored Result aborts (library bug).

#ifndef CROWD_UTIL_RESULT_H_
#define CROWD_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/status.h"

namespace crowd {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status. Constructing from an OK status is a
  /// programming error and becomes an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from an OK Status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors; abort if the Result holds an error.
  const T& ValueOrDie() const& {
    EnsureOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    EnsureOk();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    EnsureOk();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `alternative` when errored.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  void EnsureOk() const {
    if (!ok()) std::get<Status>(repr_).Abort();
  }
  std::variant<Status, T> repr_;
};

}  // namespace crowd

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error to the caller. `lhs` may include a declaration:
///   CROWD_ASSIGN_OR_RETURN(auto x, ComputeX());
#define CROWD_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()

#define CROWD_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  CROWD_ASSIGN_OR_RETURN_IMPL(CROWD_CONCAT(_crowd_result_, __COUNTER__), \
                              lhs, rexpr)

#endif  // CROWD_UTIL_RESULT_H_
