// Status: lightweight error propagation in the style of Apache Arrow /
// Abseil. Functions that can fail return `Status` (no payload) or
// `Result<T>` (payload or error). Exceptions are not used anywhere in
// the library.

#ifndef CROWD_UTIL_STATUS_H_
#define CROWD_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace crowd {

/// \brief Machine-readable category for a failure.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument violates the function contract.
  kInvalidArgument = 1,
  /// The input data cannot support the requested computation (e.g. a
  /// worker pair with zero common tasks, an empty dataset).
  kInsufficientData = 2,
  /// A numerical step failed (singular matrix, negative value under a
  /// square root, eigensolver non-convergence).
  kNumericalError = 3,
  /// An I/O operation failed (missing file, malformed CSV).
  kIoError = 4,
  /// Internal invariant broken; indicates a library bug.
  kInternal = 5,
  /// Requested entity (worker id, task id, column) does not exist.
  kNotFound = 6,
  /// The entity was deliberately excluded by a configured filter (e.g.
  /// a worker removed by the spammer pre-filter) — not an error of the
  /// computation itself, but reported so per-entity coverage is total.
  kFilteredOut = 7,
};

/// \brief Human-readable name of a status code ("Invalid argument", ...).
std::string StatusCodeToString(StatusCode code);

/// \brief The outcome of an operation: OK, or a code plus message.
///
/// Status is cheap to copy when OK (single pointer, no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message);

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status Invalid(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status InsufficientData(std::string message) {
    return Status(StatusCode::kInsufficientData, std::move(message));
  }
  static Status NumericalError(std::string message) {
    return Status(StatusCode::kNumericalError, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FilteredOut(std::string message) {
    return Status(StatusCode::kFilteredOut, std::move(message));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty when OK.
  const std::string& message() const;

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsInsufficientData() const {
    return code() == StatusCode::kInsufficientData;
  }
  bool IsNumericalError() const {
    return code() == StatusCode::kNumericalError;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFilteredOut() const { return code() == StatusCode::kFilteredOut; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use only in
  /// tests, examples and main() functions.
  void Abort() const;
  void AbortIfNotOk() const {
    if (!ok()) Abort();
  }

  /// Prepends context to the message of a non-OK status; no-op when OK.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; shared so that copies are cheap.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace crowd

/// Propagates a non-OK Status to the caller.
#define CROWD_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::crowd::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define CROWD_CONCAT_IMPL(x, y) x##y
#define CROWD_CONCAT(x, y) CROWD_CONCAT_IMPL(x, y)

#endif  // CROWD_UTIL_STATUS_H_
