// A fixed-size worker pool for index-space parallelism. The evaluators
// are embarrassingly parallel across workers (each worker's evaluation
// reads only the immutable OverlapIndex), so the only primitive needed
// is ParallelFor: run fn(i) over [begin, end) on up to `num_threads`
// threads, with the calling thread participating as one of them.
//
// Determinism contract: ParallelFor makes no ordering promise about
// *when* indices run, so callers that need output identical to the
// serial path must write each index's result into its own slot and
// merge in index order afterwards — that is how MWorkerEvaluate,
// KaryEvaluateAllWorkers and IncrementalEvaluator::EvaluateAll keep
// their output bit-identical for every thread count.

#ifndef CROWD_UTIL_THREAD_POOL_H_
#define CROWD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace crowd {

/// \brief Fixed pool of worker threads executing index ranges.
class ThreadPool {
 public:
  /// `num_threads` is the *total* concurrency, including the thread
  /// that calls ParallelFor: 1 (or ResolveThreadCount(0) == 1) spawns
  /// no workers and ParallelFor degenerates to a serial loop; 0 means
  /// one thread per hardware core.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (spawned workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Maps the options-level knob to a thread count: 0 -> one per
  /// hardware core (at least 1), anything else unchanged.
  static size_t ResolveThreadCount(size_t requested);

  /// \brief Runs fn(i) for every i in [begin, end), distributing
  /// indices over the pool, and blocks until all of them finished.
  ///
  /// `fn` must be safe to call concurrently on distinct indices. Every
  /// index runs exactly once even when some fail; the returned Status
  /// is OK, or the error of the *lowest* failing index (so the result
  /// does not depend on thread scheduling). Exceptions escaping `fn`
  /// are captured and reported as Status::Internal — no exception
  /// crosses the pool boundary. Not reentrant: one ParallelFor at a
  /// time per pool.
  Status ParallelFor(size_t begin, size_t end,
                     const std::function<Status(size_t)>& fn)
      CROWD_EXCLUDES(mu_);

 private:
  void WorkerLoop() CROWD_EXCLUDES(mu_);
  /// Claims and runs indices of the current job until none are left.
  void RunCurrentJob() CROWD_EXCLUDES(mu_);
  /// fn(i) with exceptions converted to Status::Internal.
  static Status RunOne(const std::function<Status(size_t)>& fn, size_t i);

  std::vector<std::thread> workers_;

  util::Mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  uint64_t job_generation_ CROWD_GUARDED_BY(mu_) = 0;
  size_t workers_remaining_ CROWD_GUARDED_BY(mu_) = 0;
  bool shutting_down_ CROWD_GUARDED_BY(mu_) = false;

  // Current-job state. fn/end are written under mu_ before the
  // generation bump that publishes them to the workers; workers read
  // them only after observing the bump under mu_, so the handshake —
  // not a held lock — orders the accesses (hence no CROWD_GUARDED_BY).
  const std::function<Status(size_t)>* job_fn_ = nullptr;
  size_t job_end_ = 0;
  std::atomic<size_t> job_next_{0};
  size_t first_error_index_ CROWD_GUARDED_BY(mu_) = 0;
  Status first_error_ CROWD_GUARDED_BY(mu_);
};

}  // namespace crowd

#endif  // CROWD_UTIL_THREAD_POOL_H_
