// Portable wrappers for Clang's Thread Safety Analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang
// the macros expand to __attribute__((...)) and `-Wthread-safety`
// turns lock-discipline violations into compile errors; under every
// other compiler they expand to nothing, so annotated code stays
// portable.
//
// Annotate with the CROWD_* names, never the raw attributes:
//   - fields:      `int x CROWD_GUARDED_BY(mu_);`
//   - functions:   `void F() CROWD_REQUIRES(mu_);`
//   - lock types:  `class CROWD_CAPABILITY("mutex") Mutex { ... };`
//
// The annotatable mutex itself lives in util/mutex.h; library code
// must use that shim (crowd-lint rule `raw-mutex`) so every lock in
// the tree is visible to the analysis.
//
// This header is macros only — no includes, no link dependency — so
// it is layering-safe for crowd_obs (which sits below crowd_util).

#ifndef CROWD_UTIL_THREAD_ANNOTATIONS_H_
#define CROWD_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define CROWD_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define CROWD_THREAD_ANNOTATION_IMPL(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define CROWD_CAPABILITY(name) \
  CROWD_THREAD_ANNOTATION_IMPL(capability(name))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define CROWD_SCOPED_CAPABILITY \
  CROWD_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define CROWD_GUARDED_BY(x) CROWD_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding
/// `x` (the pointer itself is unguarded).
#define CROWD_PT_GUARDED_BY(x) \
  CROWD_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Caller must hold the capabilities when calling this function.
#define CROWD_REQUIRES(...) \
  CROWD_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities and does not release them.
#define CROWD_ACQUIRE(...) \
  CROWD_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// Function releases capabilities the caller holds.
#define CROWD_RELEASE(...) \
  CROWD_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define CROWD_TRY_ACQUIRE(ret, ...) \
  CROWD_THREAD_ANNOTATION_IMPL(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold the capabilities (deadlock prevention for
/// functions that acquire them internally).
#define CROWD_EXCLUDES(...) \
  CROWD_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the
/// analysis about invariants it cannot derive).
#define CROWD_ASSERT_CAPABILITY(x) \
  CROWD_THREAD_ANNOTATION_IMPL(assert_capability(x))

/// Function returns a reference to the given capability.
#define CROWD_RETURN_CAPABILITY(x) \
  CROWD_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch for code whose synchronization the analysis cannot
/// model (e.g. init-before-publication). Always pair with a comment
/// explaining the actual protocol.
#define CROWD_NO_THREAD_SAFETY_ANALYSIS \
  CROWD_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // CROWD_UTIL_THREAD_ANNOTATIONS_H_
