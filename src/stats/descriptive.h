// Descriptive statistics over samples: means, variances, quantiles and
// a streaming accumulator. Used by the experiment harness to aggregate
// repeated trials.

#ifndef CROWD_STATS_DESCRIPTIVE_H_
#define CROWD_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace crowd::stats {

/// Arithmetic mean; requires a non-empty sample.
Result<double> Mean(const std::vector<double>& sample);

/// Unbiased sample variance (n-1 denominator); requires n >= 2.
Result<double> Variance(const std::vector<double>& sample);

/// sqrt(Variance).
Result<double> StdDev(const std::vector<double>& sample);

/// Linear-interpolation quantile, q in [0, 1]; requires non-empty.
Result<double> Quantile(std::vector<double> sample, double q);

/// Median (Quantile 0.5).
Result<double> Median(std::vector<double> sample);

/// \brief Welford streaming accumulator for mean/variance without
/// storing samples.
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  /// 0.0 when empty.
  double mean() const { return mean_; }
  /// Unbiased variance; 0.0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Pools another accumulator into this one.
  void Merge(const RunningStat& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace crowd::stats

#endif  // CROWD_STATS_DESCRIPTIVE_H_
