// The delta-method engine implementing Theorem 1 of the paper:
//
//   Y = f(X_1, ..., X_k),  E[X_i] = e_i,  Cov(X_i, X_j) = c_ij,
//   f locally linear with gradient d at e
//     =>  E[Y] ~= f(e),  Dev(Y) = sqrt(d^T C d),
//         CI(Y, c) = [E[Y] - z Dev, E[Y] + z Dev],  z = Phi^{-1}((1+c)/2).
//
// Every confidence interval in the library (binary A1/A2 and k-ary A3)
// flows through this one implementation.

#ifndef CROWD_STATS_DELTA_METHOD_H_
#define CROWD_STATS_DELTA_METHOD_H_

#include "linalg/matrix.h"
#include "stats/intervals.h"
#include "util/result.h"

namespace crowd::stats {

/// \brief A linearized random variable: its mean f(e) and the gradient
/// of f at e. Combined with a covariance matrix it yields a deviation
/// and confidence intervals.
struct LinearizedEstimate {
  /// f(e_1, ..., e_k).
  double value = 0.0;
  /// d_i = partial f / partial e_i.
  linalg::Vector gradient;
};

/// \brief Dev(Y) = sqrt(d^T C d).
///
/// `covariance` must be k x k with k = gradient size. Small negative
/// quadratic forms (from estimated, not exactly PSD covariances) are
/// clamped to zero; strongly negative ones fail with NumericalError.
Result<double> DeltaDeviation(const linalg::Vector& gradient,
                              const linalg::Matrix& covariance,
                              double negative_tol = 1e-6);

/// \brief The full Theorem-1 interval for Y = f(X).
Result<ConfidenceInterval> DeltaInterval(const LinearizedEstimate& estimate,
                                         const linalg::Matrix& covariance,
                                         double confidence);

/// \brief Variance of a weighted sum  sum_i a_i Y_i  with covariance C:
/// a^T C a. Used when combining per-triple estimates (Step 3 of
/// Algorithm A2).
Result<double> WeightedSumVariance(const linalg::Vector& weights,
                                   const linalg::Matrix& covariance,
                                   double negative_tol = 1e-6);

}  // namespace crowd::stats

#endif  // CROWD_STATS_DELTA_METHOD_H_
