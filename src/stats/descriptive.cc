#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace crowd::stats {

Result<double> Mean(const std::vector<double>& sample) {
  if (sample.empty()) return Status::Invalid("Mean of empty sample");
  double sum = 0.0;
  for (double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

Result<double> Variance(const std::vector<double>& sample) {
  if (sample.size() < 2) {
    return Status::Invalid("Variance requires at least two samples");
  }
  CROWD_ASSIGN_OR_RETURN(double mean, Mean(sample));
  double sum_sq = 0.0;
  for (double x : sample) sum_sq += (x - mean) * (x - mean);
  return sum_sq / static_cast<double>(sample.size() - 1);
}

Result<double> StdDev(const std::vector<double>& sample) {
  CROWD_ASSIGN_OR_RETURN(double var, Variance(sample));
  return std::sqrt(var);
}

Result<double> Quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return Status::Invalid("Quantile of empty sample");
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::Invalid("Quantile requires q in [0, 1]");
  }
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  double position = q * static_cast<double>(sample.size() - 1);
  size_t lo = static_cast<size_t>(position);
  size_t hi = std::min(lo + 1, sample.size() - 1);
  double frac = position - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

Result<double> Median(std::vector<double> sample) {
  return Quantile(std::move(sample), 0.5);
}

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace crowd::stats
