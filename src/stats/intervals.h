// Confidence-interval types and classical binomial intervals (Wald,
// Wilson). The classical intervals serve two purposes: they are the
// gold-standard evaluator (what you could do if you *had* ground
// truth), and a correctness reference in tests.

#ifndef CROWD_STATS_INTERVALS_H_
#define CROWD_STATS_INTERVALS_H_

#include <string>

#include "util/result.h"

namespace crowd::stats {

/// \brief A two-sided confidence interval [lo, hi] at a stated
/// confidence level.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  /// The nominal coverage (e.g. 0.95), not a posterior probability.
  double confidence = 0.0;

  double center() const { return 0.5 * (lo + hi); }
  double size() const { return hi - lo; }
  bool Contains(double x) const { return lo <= x && x <= hi; }

  /// The interval intersected with [bound_lo, bound_hi]; useful when
  /// the estimand is a probability. Degenerate results collapse to the
  /// nearest bound.
  ConfidenceInterval ClampTo(double bound_lo, double bound_hi) const;

  std::string ToString() const;
};

/// \brief Interval centered on `mean` with half-width z(c) * deviation,
/// the form produced by Theorem 1 (Equation 2 of the paper).
Result<ConfidenceInterval> NormalInterval(double mean, double deviation,
                                          double confidence);

/// \brief Wald binomial interval for a success probability given
/// `successes` out of `trials`.
Result<ConfidenceInterval> WaldInterval(int successes, int trials,
                                        double confidence);

/// \brief Wilson score interval; strictly inside (0, 1) and accurate
/// for small samples and extreme rates.
Result<ConfidenceInterval> WilsonInterval(int successes, int trials,
                                          double confidence);

}  // namespace crowd::stats

#endif  // CROWD_STATS_INTERVALS_H_
