#include "stats/delta_method.h"

#include <cmath>

#include "util/string_util.h"

namespace crowd::stats {

namespace {

Result<double> QuadraticForm(const linalg::Vector& v,
                             const linalg::Matrix& c,
                             double negative_tol) {
  if (c.rows() != v.size() || c.cols() != v.size()) {
    return Status::Invalid(StrFormat(
        "covariance shape (%zu x %zu) does not match gradient size %zu",
        c.rows(), c.cols(), v.size()));
  }
  double sum = 0.0;
  double abs_sum = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = 0; j < v.size(); ++j) {
      double term = v[i] * v[j] * c(i, j);
      sum += term;
      abs_sum += std::fabs(term);
    }
  }
  if (!std::isfinite(sum)) {
    return Status::NumericalError("quadratic form is not finite");
  }
  if (sum < 0.0) {
    if (sum < -negative_tol * std::max(abs_sum, 1e-300)) {
      return Status::NumericalError(StrFormat(
          "variance estimate is negative (%.6g); covariance estimates "
          "are inconsistent",
          sum));
    }
    sum = 0.0;  // Harmless round-off from an estimated covariance.
  }
  return sum;
}

}  // namespace

Result<double> DeltaDeviation(const linalg::Vector& gradient,
                              const linalg::Matrix& covariance,
                              double negative_tol) {
  CROWD_ASSIGN_OR_RETURN(
      double variance, QuadraticForm(gradient, covariance, negative_tol));
  return std::sqrt(variance);
}

Result<ConfidenceInterval> DeltaInterval(const LinearizedEstimate& estimate,
                                         const linalg::Matrix& covariance,
                                         double confidence) {
  CROWD_ASSIGN_OR_RETURN(double deviation,
                         DeltaDeviation(estimate.gradient, covariance));
  return NormalInterval(estimate.value, deviation, confidence);
}

Result<double> WeightedSumVariance(const linalg::Vector& weights,
                                   const linalg::Matrix& covariance,
                                   double negative_tol) {
  return QuadraticForm(weights, covariance, negative_tol);
}

}  // namespace crowd::stats
