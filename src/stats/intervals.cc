#include "stats/intervals.h"

#include <algorithm>
#include <cmath>

#include "stats/normal.h"
#include "util/string_util.h"

namespace crowd::stats {

ConfidenceInterval ConfidenceInterval::ClampTo(double bound_lo,
                                               double bound_hi) const {
  ConfidenceInterval out = *this;
  out.lo = std::clamp(lo, bound_lo, bound_hi);
  out.hi = std::clamp(hi, bound_lo, bound_hi);
  return out;
}

std::string ConfidenceInterval::ToString() const {
  return StrFormat("[%.4f, %.4f] @%.0f%%", lo, hi, confidence * 100.0);
}

Result<ConfidenceInterval> NormalInterval(double mean, double deviation,
                                          double confidence) {
  if (deviation < 0.0 || !std::isfinite(deviation)) {
    return Status::Invalid(
        StrFormat("deviation must be finite and >= 0, got %g", deviation));
  }
  CROWD_ASSIGN_OR_RETURN(double z, TwoSidedZ(confidence));
  ConfidenceInterval ci;
  ci.lo = mean - z * deviation;
  ci.hi = mean + z * deviation;
  ci.confidence = confidence;
  return ci;
}

Result<ConfidenceInterval> WaldInterval(int successes, int trials,
                                        double confidence) {
  if (trials <= 0 || successes < 0 || successes > trials) {
    return Status::Invalid("WaldInterval: invalid counts");
  }
  double p = static_cast<double>(successes) / trials;
  double deviation = std::sqrt(p * (1.0 - p) / trials);
  return NormalInterval(p, deviation, confidence);
}

Result<ConfidenceInterval> WilsonInterval(int successes, int trials,
                                          double confidence) {
  if (trials <= 0 || successes < 0 || successes > trials) {
    return Status::Invalid("WilsonInterval: invalid counts");
  }
  CROWD_ASSIGN_OR_RETURN(double z, TwoSidedZ(confidence));
  double n = trials;
  double p = static_cast<double>(successes) / n;
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double center = (p + z2 / (2.0 * n)) / denom;
  double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ConfidenceInterval ci;
  ci.lo = center - half;
  ci.hi = center + half;
  ci.confidence = confidence;
  return ci;
}

}  // namespace crowd::stats
