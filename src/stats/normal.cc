#include "stats/normal.h"

#include <cmath>

#include "util/string_util.h"

namespace crowd::stats {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014326779399461;
constexpr double kSqrt2 = 1.4142135623730950488016887;

// Acklam's rational approximation to the inverse normal CDF
// (relative error < 1.15e-9 before refinement).
double AcklamQuantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double NormalPdf(double x) {
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

Result<double> NormalQuantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    return Status::Invalid(
        StrFormat("NormalQuantile requires 0 < p < 1, got %g", p));
  }
  double x = AcklamQuantile(p);
  // One Halley refinement: solves Phi(x) - p = 0.
  double e = NormalCdf(x) - p;
  double u = e / NormalPdf(x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

Result<double> TwoSidedZ(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::Invalid(StrFormat(
        "confidence level must be in (0, 1), got %g", confidence));
  }
  return NormalQuantile(0.5 * (1.0 + confidence));
}

}  // namespace crowd::stats
