// The standard normal distribution: density, CDF and quantile
// (inverse CDF). The quantile is Acklam's rational approximation
// polished with one Halley step against the erfc-based CDF, giving
// ~1e-15 relative accuracy — the z_t of Theorem 1 is the multiplier on
// every confidence interval the library emits, so it must be accurate.

#ifndef CROWD_STATS_NORMAL_H_
#define CROWD_STATS_NORMAL_H_

#include "util/result.h"

namespace crowd::stats {

/// Standard normal density at x.
double NormalPdf(double x);

/// Standard normal CDF at x.
double NormalCdf(double x);

/// Inverse standard normal CDF; requires 0 < p < 1.
Result<double> NormalQuantile(double p);

/// The z multiplier for a two-sided c-confidence interval:
/// z = Phi^{-1}((1 + c) / 2). Requires 0 < c < 1.
Result<double> TwoSidedZ(double confidence);

}  // namespace crowd::stats

#endif  // CROWD_STATS_NORMAL_H_
