// Algorithm A3: confidence intervals for k-ary response probabilities.
//
// ProbEstimate (core/prob_estimate.h) is treated as the function f of
// Theorem 1, mapping the counts tensor to the S^{1/2} P_i estimates.
// Its Jacobian is computed by central finite differences against each
// counts cell; the covariance of the cells comes from Lemma 9; the
// delta method then yields a deviation and interval per matrix entry.
// Row-normalizing the V_i = S^{1/2} P_i intervals gives intervals on
// the response probabilities P_i themselves, and the squared row sums
// estimate the selectivity S.

#ifndef CROWD_CORE_KARY_ESTIMATOR_H_
#define CROWD_CORE_KARY_ESTIMATOR_H_

#include <array>
#include <vector>

#include "core/counts_tensor.h"
#include "core/prob_estimate.h"
#include "stats/intervals.h"
#include "util/result.h"

namespace crowd::core {

/// Options for the k-ary estimator.
struct KaryOptions {
  double confidence = 0.95;
  /// Finite-difference step on counts cells (the paper's epsilon).
  double epsilon = 0.01;
  /// When true, only cells where all three workers responded are
  /// perturbed, exactly as written in the paper's Step 6. When false
  /// (default), cells with two responding workers are included as
  /// well — on non-regular data those cells feed the response-
  /// frequency matrices too, and skipping them understates variance.
  bool paper_strict_jacobian = false;
  ProbEstimateOptions prob_estimate;
};

/// \brief Interval matrix for one worker.
struct KaryWorkerEstimate {
  /// Point estimate of S^{1/2} P_i.
  linalg::Matrix v;
  /// Point estimate of P_i (rows of `v` normalized to sum 1).
  linalg::Matrix p;
  /// Per-entry deviations of the V estimate (Theorem 1).
  linalg::Matrix v_deviation;
  /// intervals[j1][j2]: confidence interval for P_i(j1, j2).
  std::vector<std::vector<stats::ConfidenceInterval>> intervals;
};

/// \brief Full Algorithm A3 output for a worker triple.
struct KaryResult {
  std::array<KaryWorkerEstimate, 3> workers;
  /// Estimated selectivity (prior over true responses), length k.
  linalg::Vector selectivity;
  /// Rotation slices used by the underlying ProbEstimate.
  int rotations_used = 0;
};

/// \brief Runs Algorithm A3 on three workers of a k-ary dataset.
Result<KaryResult> KaryEvaluate(const data::ResponseMatrix& responses,
                                data::WorkerId w1, data::WorkerId w2,
                                data::WorkerId w3,
                                const KaryOptions& options = {});

/// \brief Same, from a prebuilt counts tensor.
Result<KaryResult> KaryEvaluateCounts(const CountsTensor& counts,
                                      const KaryOptions& options = {});

}  // namespace crowd::core

#endif  // CROWD_CORE_KARY_ESTIMATOR_H_
