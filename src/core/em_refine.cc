#include "core/em_refine.h"

#include <algorithm>
#include <cmath>

#include "linalg/matrix_functions.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace crowd::core {

namespace {

// Clamps a response matrix into the (floored) simplex row by row.
Status SanitizeMatrix(linalg::Matrix* m, double floor) {
  linalg::ClampEntries(m, floor, 1.0);
  return linalg::NormalizeRowsToSumOne(m);
}

Status SanitizeSelectivity(linalg::Vector* s, double floor) {
  double total = 0.0;
  for (double& v : *s) {
    v = std::max(v, floor);
    total += v;
  }
  if (!(total > 0.0)) {
    return Status::NumericalError("selectivity collapsed to zero");
  }
  for (double& v : *s) v /= total;
  return Status::OK();
}

}  // namespace

Result<EmRefineResult> EmRefineFromCounts(
    const CountsTensor& counts, const std::array<linalg::Matrix, 3>& init_p,
    const linalg::Vector& init_selectivity,
    const EmRefineOptions& options) {
  CROWD_SPAN("core.em_refine");
  const int k = counts.arity();
  for (const auto& m : init_p) {
    if (m.rows() != static_cast<size_t>(k) ||
        m.cols() != static_cast<size_t>(k)) {
      return Status::Invalid("EM init matrix does not match arity");
    }
  }
  if (init_selectivity.size() != static_cast<size_t>(k)) {
    return Status::Invalid("EM init selectivity does not match arity");
  }

  EmRefineResult model;
  model.p = init_p;
  model.selectivity = init_selectivity;
  for (auto& m : model.p) {
    CROWD_RETURN_NOT_OK(SanitizeMatrix(&m, options.probability_floor));
  }
  CROWD_RETURN_NOT_OK(
      SanitizeSelectivity(&model.selectivity, options.probability_floor));

  // Cells carrying likelihood information (>= 1 responding worker).
  const std::vector<CountsCell> cells = counts.CellsWithMinWorkers(1);

  linalg::Vector posterior(k);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations = iter + 1;

    // Accumulators for the M step.
    linalg::Vector prior_acc(k, 0.0);
    std::array<linalg::Matrix, 3> resp_acc = {
        linalg::Matrix(k, k), linalg::Matrix(k, k), linalg::Matrix(k, k)};
    std::array<linalg::Vector, 3> resp_norm = {
        linalg::Vector(k, 0.0), linalg::Vector(k, 0.0),
        linalg::Vector(k, 0.0)};
    double total_weight = 0.0;
    double log_likelihood = 0.0;

    // E step over cells.
    for (const CountsCell& cell : cells) {
      double weight = counts.at(cell);
      if (weight <= 0.0) continue;
      const int resp[3] = {cell.a, cell.b, cell.c};
      double norm = 0.0;
      for (int z = 0; z < k; ++z) {
        double likelihood = model.selectivity[z];
        for (int worker = 0; worker < 3; ++worker) {
          if (resp[worker] != 0) {
            likelihood *= model.p[worker](z, resp[worker] - 1);
          }
        }
        posterior[z] = likelihood;
        norm += likelihood;
      }
      if (!(norm > 0.0)) continue;  // Floored probabilities prevent this.
      log_likelihood += weight * std::log(norm);
      for (int z = 0; z < k; ++z) {
        double soft = weight * posterior[z] / norm;
        prior_acc[z] += soft;
        for (int worker = 0; worker < 3; ++worker) {
          if (resp[worker] != 0) {
            resp_acc[worker](z, resp[worker] - 1) += soft;
            resp_norm[worker][z] += soft;
          }
        }
      }
      total_weight += weight;
    }
    if (total_weight <= 0.0) {
      return Status::InsufficientData("EM refinement: no responses");
    }
    model.log_likelihood = log_likelihood;

    // M step with change tracking.
    double max_change = 0.0;
    for (int z = 0; z < k; ++z) {
      double updated = prior_acc[z] / total_weight;
      max_change =
          std::max(max_change, std::fabs(updated - model.selectivity[z]));
      model.selectivity[z] = updated;
    }
    CROWD_RETURN_NOT_OK(
        SanitizeSelectivity(&model.selectivity, options.probability_floor));
    for (int worker = 0; worker < 3; ++worker) {
      for (int z = 0; z < k; ++z) {
        if (resp_norm[worker][z] <= 0.0) continue;  // Keep previous row.
        for (int r = 0; r < k; ++r) {
          double updated =
              resp_acc[worker](z, r) / resp_norm[worker][z];
          max_change = std::max(
              max_change, std::fabs(updated - model.p[worker](z, r)));
          model.p[worker](z, r) = updated;
        }
      }
      CROWD_RETURN_NOT_OK(
          SanitizeMatrix(&model.p[worker], options.probability_floor));
    }
    if (max_change < options.tolerance) {
      model.converged = true;
      break;
    }
  }
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const runs = r->GetCounter(
        "crowdeval_core_em_runs_total", "EM refinement invocations");
    static obs::Counter* const iterations = r->GetCounter(
        "crowdeval_core_em_iterations_total", "EM iterations executed");
    static obs::Counter* const unconverged = r->GetCounter(
        "crowdeval_core_em_unconverged_total",
        "EM runs that hit max_iterations without converging");
    runs->Increment();
    iterations->Increment(static_cast<uint64_t>(model.iterations));
    if (!model.converged) unconverged->Increment();
  }
  return model;
}

Result<EmRefineResult> SpectralThenEm(
    const CountsTensor& counts,
    const ProbEstimateOptions& spectral_options,
    const EmRefineOptions& em_options) {
  CROWD_ASSIGN_OR_RETURN(ProbEstimateResult spectral,
                         ProbEstimate(counts, spectral_options));
  std::array<linalg::Matrix, 3> init;
  linalg::Vector selectivity(counts.arity(), 0.0);
  for (int worker = 0; worker < 3; ++worker) {
    linalg::Matrix p = spectral.v(worker);
    linalg::Vector sums = linalg::RowSums(p);
    for (int z = 0; z < counts.arity(); ++z) {
      selectivity[z] += sums[z] * sums[z] / 3.0;
    }
    auto normalized = linalg::NormalizeRowsToSumOne(&p);
    if (!normalized.ok()) {
      return normalized.WithContext("normalizing spectral init");
    }
    init[worker] = std::move(p);
  }
  return EmRefineFromCounts(counts, init, selectivity, em_options);
}

}  // namespace crowd::core
