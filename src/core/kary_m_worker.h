// m-worker k-ary evaluation (extension): Algorithm A3 is defined for
// one worker triple; real pools have many workers. Mirroring what
// Algorithm A2 does for the binary case, a worker is evaluated in
// several triples (peers paired greedily by overlap) and the per-triple
// response-probability estimates are fused per entry by inverse-
// variance weighting.
//
// Approximation, stated up front: estimates from different triples of
// the same worker are treated as independent. The peer pairs are
// disjoint across triples, but the evaluated worker's responses are
// shared, so the true cross-triple covariance is positive and the
// fused deviation is somewhat optimistic — the binary case resolves
// this exactly via Lemma 4; deriving its k-ary analogue through the
// spectral estimator is open. The property tests bound the effect:
// coverage stays near nominal on simulated pools.

#ifndef CROWD_CORE_KARY_M_WORKER_H_
#define CROWD_CORE_KARY_M_WORKER_H_

#include <vector>

#include "core/kary_estimator.h"
#include "data/overlap_index.h"
#include "data/response_matrix.h"
#include "util/result.h"

namespace crowd::core {

/// Options for the m-worker k-ary evaluation.
struct KaryMWorkerOptions {
  KaryOptions kary;
  /// Peers sharing fewer tasks than this with the evaluated worker are
  /// not considered (the spectral method needs populated response-
  /// frequency matrices; the paper's own real-data protocol thresholds
  /// triple overlap).
  size_t min_pair_overlap = 20;
  /// Cap on the number of triples per worker (0 = no cap).
  size_t max_triples = 0;
  /// Worker-level parallelism of KaryEvaluateAllWorkers: 1 = serial
  /// (default), 0 = one thread per hardware core, n = n threads. The
  /// output is bit-identical for every value.
  size_t num_threads = 1;
};

/// \brief Fused k-ary assessment of one worker.
struct KaryWorkerAssessment {
  data::WorkerId worker = 0;
  /// Fused response-probability point estimate (row-stochastic).
  linalg::Matrix p;
  /// intervals[r][c]: interval for P(r, c) at the configured
  /// confidence.
  std::vector<std::vector<stats::ConfidenceInterval>> intervals;
  /// Number of triples fused.
  size_t num_triples = 0;
};

/// \brief Evaluates worker `w` of a k-ary dataset against greedily
/// paired peers. Fails with InsufficientData when no valid triple
/// meets the overlap threshold (or all triples degenerate).
Result<KaryWorkerAssessment> KaryEvaluateWorker(
    const data::ResponseMatrix& responses, data::WorkerId worker,
    const KaryMWorkerOptions& options = {});

/// \brief Same, against a prebuilt overlap index of `responses` (used
/// by KaryEvaluateAllWorkers to share one O(m^2 n) build across all
/// workers instead of rebuilding it per worker).
Result<KaryWorkerAssessment> KaryEvaluateWorker(
    const data::ResponseMatrix& responses,
    const data::OverlapIndex& overlap, data::WorkerId worker,
    const KaryMWorkerOptions& options = {});

/// \brief Evaluates every worker; unevaluable workers are reported
/// with their reason.
struct KaryMWorkerResult {
  std::vector<KaryWorkerAssessment> assessments;
  std::vector<std::pair<data::WorkerId, Status>> failures;
};
KaryMWorkerResult KaryEvaluateAllWorkers(
    const data::ResponseMatrix& responses,
    const KaryMWorkerOptions& options = {});

}  // namespace crowd::core

#endif  // CROWD_CORE_KARY_M_WORKER_H_
