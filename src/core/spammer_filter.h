// The pre-filtering pass of Section III-E2: workers whose majority-
// vote proxy error rate exceeds a threshold (0.4 in the paper) are
// almost surely spammers with error rates near 1/2, where the
// triangulation formula is singular; removing them markedly improves
// interval accuracy (Figure 3 vs Figure 4).

#ifndef CROWD_CORE_SPAMMER_FILTER_H_
#define CROWD_CORE_SPAMMER_FILTER_H_

#include <vector>

#include "data/response_matrix.h"
#include "util/result.h"

namespace crowd::core {

/// Options for the spammer filter.
struct SpammerFilterOptions {
  /// Workers with proxy error above this are removed (paper: 0.4).
  double threshold = 0.4;
  /// Exclude a worker's own vote when computing the task majority.
  bool exclude_self = true;
  /// Workers whose proxy error cannot be computed (no overlapping
  /// tasks) are removed when true.
  bool drop_unscorable = true;
};

/// \brief The filter decision.
struct SpammerFilterResult {
  /// Ids (into the original matrix) of the retained workers.
  std::vector<data::WorkerId> kept;
  /// Ids of the removed workers.
  std::vector<data::WorkerId> removed;
  /// Proxy error rate per original worker (NaN when unscorable).
  std::vector<double> proxy_error;
  /// The response matrix restricted to `kept` (workers re-indexed in
  /// `kept` order).
  data::ResponseMatrix filtered;
};

/// \brief Applies the majority-vote spammer filter.
Result<SpammerFilterResult> FilterSpammers(
    const data::ResponseMatrix& responses,
    const SpammerFilterOptions& options = {});

}  // namespace crowd::core

#endif  // CROWD_CORE_SPAMMER_FILTER_H_
