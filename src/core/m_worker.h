// Algorithm A2: the m-worker binary non-regular estimator. For each
// worker, peers are paired greedily (Section III-C1), each pair forms
// a triple evaluated by the 3-worker kernel, and the per-triple
// estimates are combined with Lemma 4/5 into one confidence interval.

#ifndef CROWD_CORE_M_WORKER_H_
#define CROWD_CORE_M_WORKER_H_

#include <utility>
#include <vector>

#include "core/types.h"
#include "data/overlap_index.h"
#include "util/result.h"

namespace crowd::core {

/// \brief Evaluation of one worker from shared overlap statistics.
/// Fails with InsufficientData when no valid triple can be formed for
/// the worker.
Result<WorkerAssessment> EvaluateWorker(const data::OverlapIndex& overlap,
                                        data::WorkerId worker,
                                        const BinaryOptions& options);

/// \brief Result of evaluating a whole worker pool.
struct MWorkerResult {
  /// Successful assessments, one per evaluable worker.
  std::vector<WorkerAssessment> assessments;
  /// Workers that could not be evaluated, with the reason.
  std::vector<std::pair<data::WorkerId, Status>> failures;
};

/// \brief Evaluates every worker of a binary (possibly non-regular)
/// dataset. Requires at least 3 workers.
Result<MWorkerResult> MWorkerEvaluate(const data::ResponseMatrix& responses,
                                      const BinaryOptions& options);

}  // namespace crowd::core

#endif  // CROWD_CORE_M_WORKER_H_
