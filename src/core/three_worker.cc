#include "core/three_worker.h"

#include "core/triangulation.h"
#include "obs/metrics.h"
#include "stats/delta_method.h"
#include "util/string_util.h"

namespace crowd::core {

namespace {

// Lemma 3 cross-covariance of two agreement rates sharing worker `s`:
//   Cov(Q_{s,a}, Q_{s,b}) =
//     c_sab * p_s (1 - p_s) (2 q_ab - 1) / (c_sa * c_sb).
double SharedWorkerCovariance(double p_shared, double q_other_pair,
                              size_t c_triple, size_t c_pair_1,
                              size_t c_pair_2) {
  return static_cast<double>(c_triple) * p_shared * (1.0 - p_shared) *
         (2.0 * q_other_pair - 1.0) /
         (static_cast<double>(c_pair_1) * static_cast<double>(c_pair_2));
}

// Var(Q_ab) = q (1 - q) / c_ab (Lemma 3), with an Agresti-style
// (add 1/2) correction on the rate used as the variance basis:
//   q~ = (agreements + 1/2) / (common + 1).
// On sparse pairs the raw rate is often exactly 0 or 1, which would
// report zero variance and hand the triple infinite weight in the
// Lemma 5 combiner; the correction keeps the variance strictly
// positive and is negligible (O(1/c)) on well-populated pairs.
double AgreementVariance(const PairAgreement& pair) {
  double c = static_cast<double>(pair.common);
  double corrected = (pair.q_raw * c + 0.5) / (c + 1.0);
  return corrected * (1.0 - corrected) / c;
}

}  // namespace

Result<TripleEstimate> EvaluateTriple(const data::OverlapIndex& overlap,
                                      data::WorkerId i, data::WorkerId j1,
                                      data::WorkerId j2,
                                      const BinaryOptions& options) {
  if (i == j1 || i == j2 || j1 == j2) {
    return Status::Invalid("EvaluateTriple requires three distinct workers");
  }
  TripleEstimate t;
  t.i = i;
  t.j1 = j1;
  t.j2 = j2;
  const double margin = options.min_agreement_margin;
  CROWD_ASSIGN_OR_RETURN(t.q_i_j1,
                         ComputePairAgreement(overlap, i, j1, margin));
  CROWD_ASSIGN_OR_RETURN(t.q_i_j2,
                         ComputePairAgreement(overlap, i, j2, margin));
  CROWD_ASSIGN_OR_RETURN(t.q_j1_j2,
                         ComputePairAgreement(overlap, j1, j2, margin));
  t.any_clamped =
      t.q_i_j1.clamped || t.q_i_j2.clamped || t.q_j1_j2.clamped;
  if (t.any_clamped &&
      options.singularity == SingularityPolicy::kDropTriple) {
    return Status::NumericalError(StrFormat(
        "triple (%zu, %zu, %zu): an agreement rate is at or below 1/2; "
        "the triangulation formula is undefined (the paper's documented "
        "failure mode)",
        i, j1, j2));
  }
  t.c_triple = overlap.TripleCommonCount(i, j1, j2);

  // p_i = f(q_{i,j1}, q_{i,j2}, q_{j1,j2}) with gradient (Lemma 2).
  CROWD_ASSIGN_OR_RETURN(
      auto tri,
      TriangulateWithGradient(t.q_i_j1.q, t.q_i_j2.q, t.q_j1_j2.q));
  t.p = tri.p;
  t.d_i_j1 = tri.d_q_ij;
  t.d_i_j2 = tri.d_q_ik;
  t.d_j1_j2 = tri.d_q_jk;

  // Peer error rates, needed for the Lemma 3 covariances: rotate the
  // argument roles of f.
  CROWD_ASSIGN_OR_RETURN(
      t.p_j1, TriangulateErrorRate(t.q_i_j1.q, t.q_j1_j2.q, t.q_i_j2.q));
  CROWD_ASSIGN_OR_RETURN(
      t.p_j2, TriangulateErrorRate(t.q_i_j2.q, t.q_j1_j2.q, t.q_i_j1.q));

  linalg::Vector gradient = {t.d_i_j1, t.d_i_j2, t.d_j1_j2};
  auto deviation = stats::DeltaDeviation(gradient, TripleCovariance(t));
  if (!deviation.ok() && deviation.status().IsNumericalError()) {
    // The plug-in covariance is estimated, not exactly PSD; on heavily
    // clamped data (spammers near the 1/2 singularity) the cross terms
    // can turn the quadratic form negative. Fall back to the diagonal
    // (variances only), which is non-negative by construction.
    linalg::Matrix diag_only(3, 3);
    linalg::Matrix full = TripleCovariance(t);
    for (size_t d = 0; d < 3; ++d) diag_only(d, d) = full(d, d);
    deviation = stats::DeltaDeviation(gradient, diag_only);
    if (obs::Registry* r = obs::MetricsRegistry()) {
      static obs::Counter* const fallbacks = r->GetCounter(
          "crowdeval_core_triple_cov_diag_fallback_total",
          "triples whose covariance fell back to the diagonal");
      fallbacks->Increment();
    }
  }
  CROWD_ASSIGN_OR_RETURN(t.deviation, std::move(deviation));
  return t;
}

linalg::Matrix TripleCovariance(const TripleEstimate& t) {
  linalg::Matrix cov(3, 3);
  cov(0, 0) = AgreementVariance(t.q_i_j1);
  cov(1, 1) = AgreementVariance(t.q_i_j2);
  cov(2, 2) = AgreementVariance(t.q_j1_j2);
  // (q_{i,j1}, q_{i,j2}) share worker i; the "other" pair is (j1, j2).
  cov(0, 1) = cov(1, 0) = SharedWorkerCovariance(
      t.p, t.q_j1_j2.q, t.c_triple, t.q_i_j1.common, t.q_i_j2.common);
  // (q_{i,j1}, q_{j1,j2}) share worker j1; other pair is (i, j2).
  cov(0, 2) = cov(2, 0) = SharedWorkerCovariance(
      t.p_j1, t.q_i_j2.q, t.c_triple, t.q_i_j1.common, t.q_j1_j2.common);
  // (q_{i,j2}, q_{j1,j2}) share worker j2; other pair is (i, j1).
  cov(1, 2) = cov(2, 1) = SharedWorkerCovariance(
      t.p_j2, t.q_i_j1.q, t.c_triple, t.q_i_j2.common, t.q_j1_j2.common);
  return cov;
}

Result<std::array<WorkerAssessment, 3>> ThreeWorkerEvaluate(
    const data::ResponseMatrix& responses, const BinaryOptions& options) {
  if (responses.arity() != 2) {
    return Status::Invalid(
        "ThreeWorkerEvaluate supports binary tasks only (use the k-ary "
        "estimator for arity > 2)");
  }
  if (responses.num_workers() != 3) {
    return Status::Invalid(StrFormat(
        "ThreeWorkerEvaluate requires exactly 3 workers, got %zu",
        responses.num_workers()));
  }
  data::OverlapIndex overlap(responses);
  std::array<WorkerAssessment, 3> out;
  for (data::WorkerId w = 0; w < 3; ++w) {
    data::WorkerId j1 = (w + 1) % 3;
    data::WorkerId j2 = (w + 2) % 3;
    CROWD_ASSIGN_OR_RETURN(auto triple,
                           EvaluateTriple(overlap, w, j1, j2, options));
    WorkerAssessment& a = out[w];
    a.worker = w;
    a.error_rate = triple.p;
    a.deviation = triple.deviation;
    a.num_triples = 1;
    a.any_clamped = triple.any_clamped;
    CROWD_ASSIGN_OR_RETURN(
        a.interval, stats::NormalInterval(triple.p, triple.deviation,
                                          options.confidence));
  }
  return out;
}

}  // namespace crowd::core
