#include "core/m_worker.h"

#include <optional>
#include <utility>

#include "core/three_worker.h"
#include "core/triple_combiner.h"
#include "core/triple_selection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace crowd::core {

Result<WorkerAssessment> EvaluateWorker(const data::OverlapIndex& overlap,
                                        data::WorkerId worker,
                                        const BinaryOptions& options) {
  CROWD_SPAN("core.evaluate_worker");
  Stopwatch watch;
  std::vector<WorkerPair> pairs =
      options.pairing == PairingStrategy::kGreedy
          ? GreedyPairs(overlap, worker)
          : RandomPairs(overlap, worker,
                        options.pairing_seed + worker * 7919);
  if (pairs.empty()) {
    return Status::InsufficientData(StrFormat(
        "worker %zu: no peer pair with task overlap exists", worker));
  }
  std::vector<TripleEstimate> triples;
  triples.reserve(pairs.size());
  bool any_clamped = false;
  for (const auto& [j1, j2] : pairs) {
    auto triple = EvaluateTriple(overlap, worker, j1, j2, options);
    if (!triple.ok()) {
      // A triple can fail on degenerate covariance estimates; drop it
      // and continue with the rest (the paper notes failure probability
      // decays exponentially with task count).
      CROWD_LOG_DEBUG << "dropping triple (" << worker << ", " << j1
                      << ", " << j2
                      << "): " << triple.status().ToString();
      if (obs::Registry* r = obs::MetricsRegistry()) {
        static obs::Counter* const dropped = r->GetCounter(
            "crowdeval_core_triples_dropped_total",
            "candidate triples dropped during worker evaluation");
        dropped->Increment();
      }
      continue;
    }
    any_clamped = any_clamped || triple->any_clamped;
    triples.push_back(std::move(*triple));
  }
  if (triples.empty()) {
    return Status::InsufficientData(StrFormat(
        "worker %zu: all candidate triples failed to evaluate", worker));
  }
  CROWD_ASSIGN_OR_RETURN(CombinedEstimate combined,
                         CombineTriples(triples, overlap, options));
  WorkerAssessment out;
  out.worker = worker;
  out.error_rate = combined.p;
  out.deviation = combined.deviation;
  out.num_triples = triples.size();
  out.any_clamped = any_clamped;
  CROWD_ASSIGN_OR_RETURN(
      out.interval, stats::NormalInterval(combined.p, combined.deviation,
                                          options.confidence));
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::HistogramMetric* const latency = r->GetHistogram(
        "crowdeval_core_worker_eval_seconds",
        "wall time of one successful EvaluateWorker call",
        obs::Histogram::LatencyBounds());
    latency->Record(watch.ElapsedSeconds());
  }
  return out;
}

Result<MWorkerResult> MWorkerEvaluate(const data::ResponseMatrix& responses,
                                      const BinaryOptions& options) {
  if (responses.arity() != 2) {
    return Status::Invalid(
        "MWorkerEvaluate supports binary tasks only (use the k-ary "
        "estimator for arity > 2)");
  }
  if (responses.num_workers() < 3) {
    return Status::InsufficientData(StrFormat(
        "MWorkerEvaluate requires at least 3 workers, got %zu",
        responses.num_workers()));
  }
  data::OverlapIndex overlap(responses);
  const size_t m = responses.num_workers();
  // Each worker's evaluation reads only the immutable overlap index,
  // so the loop fans out over the pool; results land in per-worker
  // slots and are merged in worker-id order, which keeps the output
  // bit-identical to the serial (num_threads = 1) path.
  std::vector<std::optional<Result<WorkerAssessment>>> slots(m);
  ThreadPool pool(options.num_threads);
  CROWD_RETURN_NOT_OK(pool.ParallelFor(0, m, [&](size_t w) {
    slots[w] = EvaluateWorker(overlap, w, options);
    return Status::OK();
  }));
  MWorkerResult out;
  for (data::WorkerId w = 0; w < m; ++w) {
    Result<WorkerAssessment>& assessment = *slots[w];
    if (assessment.ok()) {
      out.assessments.push_back(std::move(*assessment));
    } else {
      out.failures.emplace_back(w, assessment.status());
    }
  }
  return out;
}

}  // namespace crowd::core
