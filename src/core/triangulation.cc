#include "core/triangulation.h"

#include <cmath>

#include "util/string_util.h"

namespace crowd::core {

namespace {

Status CheckDomain(double q_ij, double q_ik, double q_jk) {
  for (double q : {q_ij, q_ik, q_jk}) {
    if (!(q > 0.5 && q <= 1.0)) {
      return Status::NumericalError(StrFormat(
          "agreement rate %.6f outside the admissible (0.5, 1] domain "
          "of the triangulation formula",
          q));
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> TriangulateErrorRate(double q_ij, double q_ik,
                                    double q_jk) {
  CROWD_RETURN_NOT_OK(CheckDomain(q_ij, q_ik, q_jk));
  double ratio =
      (2.0 * q_ij - 1.0) * (2.0 * q_ik - 1.0) / (2.0 * q_jk - 1.0);
  return 0.5 - 0.5 * std::sqrt(ratio);
}

Result<Triangulation> TriangulateWithGradient(double q_ij, double q_ik,
                                              double q_jk) {
  CROWD_RETURN_NOT_OK(CheckDomain(q_ij, q_ik, q_jk));
  Triangulation out;
  const double a = q_ij - 0.5;
  const double b = q_ik - 0.5;
  const double c = q_jk - 0.5;
  out.p = 0.5 - 0.5 * std::sqrt(4.0 * a * b / (2.0 * c));
  // Lemma 2, rewritten with a = q_ij - 1/2 etc.:
  //   df/dq_ij = -sqrt( b / (8 a c) )
  //   df/dq_ik = -sqrt( a / (8 b c) )
  //   df/dq_jk = +sqrt( a b / (8 c^3) )
  out.d_q_ij = -std::sqrt(b / (8.0 * a * c));
  out.d_q_ik = -std::sqrt(a / (8.0 * b * c));
  out.d_q_jk = std::sqrt(a * b / (8.0 * c * c * c));
  return out;
}

}  // namespace crowd::core
