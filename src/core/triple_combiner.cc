#include "core/triple_combiner.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "obs/metrics.h"
#include "stats/delta_method.h"
#include "util/string_util.h"

namespace crowd::core {

namespace {

// C(i, j, j') of Lemma 4: the covariance of Q_{i,j} and Q_{i,j'}
// through the shared worker i,
//   C = c_{i,j,j'} p_i (1 - p_i) (2 q_{j,j'} - 1) / (c_{i,j} c_{i,j'}).
// Returns 0 when no task was attempted by all of i, j, j' (then the
// two agreement rates are computed over response sets with no shared
// (worker, task) cell).
Result<double> LemmaFourC(const data::OverlapIndex& overlap,
                          data::WorkerId i, data::WorkerId j,
                          data::WorkerId j_prime, double p_i,
                          const BinaryOptions& options) {
  size_t c_triple = overlap.TripleCommonCount(i, j, j_prime);
  if (c_triple == 0) return 0.0;
  CROWD_ASSIGN_OR_RETURN(
      auto q, ComputePairAgreement(overlap, j, j_prime,
                                   options.min_agreement_margin));
  size_t c_ij = overlap.CommonCount(i, j);
  size_t c_ij_prime = overlap.CommonCount(i, j_prime);
  return static_cast<double>(c_triple) * p_i * (1.0 - p_i) *
         (2.0 * q.q - 1.0) /
         (static_cast<double>(c_ij) * static_cast<double>(c_ij_prime));
}

}  // namespace

Result<linalg::Matrix> CrossTripleCovariance(
    const std::vector<TripleEstimate>& triples,
    const data::OverlapIndex& overlap, const BinaryOptions& options) {
  const size_t l = triples.size();
  if (l == 0) {
    return Status::Invalid("CrossTripleCovariance: no triples");
  }
  const data::WorkerId i = triples[0].i;
  for (const auto& t : triples) {
    if (t.i != i) {
      return Status::Invalid(
          "CrossTripleCovariance: triples evaluate different workers");
    }
  }
  linalg::Matrix cov(l, l);
  for (size_t k1 = 0; k1 < l; ++k1) {
    cov(k1, k1) = triples[k1].deviation * triples[k1].deviation;
    for (size_t k2 = k1 + 1; k2 < l; ++k2) {
      const TripleEstimate& a = triples[k1];
      const TripleEstimate& b = triples[k2];
      // The shared worker's error rate: use the mean of the two
      // triples' estimates (the true p_i is unknown; any consistent
      // estimate is admissible in the plug-in covariance).
      double p_i = 0.5 * (a.p + b.p);
      double sum = 0.0;
      struct Term {
        double d_a;
        data::WorkerId peer_a;
        double d_b;
        data::WorkerId peer_b;
      };
      const Term terms[] = {
          {a.d_i_j1, a.j1, b.d_i_j1, b.j1},
          {a.d_i_j1, a.j1, b.d_i_j2, b.j2},
          {a.d_i_j2, a.j2, b.d_i_j1, b.j1},
          {a.d_i_j2, a.j2, b.d_i_j2, b.j2},
      };
      for (const Term& term : terms) {
        CROWD_ASSIGN_OR_RETURN(
            double c, LemmaFourC(overlap, i, term.peer_a, term.peer_b,
                                 p_i, options));
        sum += term.d_a * term.d_b * c;
      }
      cov(k1, k2) = cov(k2, k1) = sum;
    }
  }
  return cov;
}

WeightSolution MinimumVarianceWeights(const linalg::Matrix& covariance,
                                      double ridge) {
  const size_t l = covariance.rows();
  WeightSolution out;
  out.weights.assign(l, 1.0 / static_cast<double>(l));
  if (l == 1) return out;

  // Ridge scaled by the mean diagonal keeps the jitter proportionate.
  double mean_diag = 0.0;
  for (size_t i = 0; i < l; ++i) mean_diag += covariance(i, i);
  mean_diag /= static_cast<double>(l);
  linalg::Matrix regularized = covariance;
  for (size_t i = 0; i < l; ++i) {
    regularized(i, i) += ridge * std::max(mean_diag, 1e-300);
  }

  // B = C^{-1} 1 ; A = B / (1^T B)  (Lemma 5). Cholesky first: the
  // regularized covariance should be SPD, and the factorization is the
  // cheapest check of that; LU handles the occasional non-PSD plug-in
  // estimate.
  auto solved = [&]() -> Result<linalg::Vector> {
    linalg::Vector ones(l, 1.0);
    auto chol = linalg::CholeskyDecomposition::Compute(regularized);
    if (chol.ok()) return chol->Solve(ones);
    return linalg::SolveLinearSystem(regularized, ones);
  }();
  if (!solved.ok()) {
    out.used_fallback = true;
    return out;
  }
  double total = 0.0;
  for (double b : *solved) total += b;
  if (!(std::fabs(total) > 1e-300) || !std::isfinite(total)) {
    out.used_fallback = true;
    return out;
  }
  for (size_t i = 0; i < l; ++i) out.weights[i] = (*solved)[i] / total;
  // Project onto the non-negative simplex. The unconstrained optimum
  // can carry negative weights when estimates are strongly correlated,
  // but with *estimated* covariances those solutions are fragile —
  // on sparse data they produce wildly extrapolated combinations — so
  // negative weights are zeroed and the rest renormalized.
  double positive_total = 0.0;
  bool any_negative = false;
  for (double w : out.weights) {
    if (w < 0.0) {
      any_negative = true;
    } else {
      positive_total += w;
    }
  }
  if (any_negative) {
    if (positive_total <= 0.0) {
      out.used_fallback = true;
      out.weights.assign(l, 1.0 / static_cast<double>(l));
      return out;
    }
    for (double& w : out.weights) {
      w = std::max(w, 0.0) / positive_total;
    }
  }
  return out;
}

Result<CombinedEstimate> CombineTriples(
    const std::vector<TripleEstimate>& triples,
    const data::OverlapIndex& overlap, const BinaryOptions& options) {
  if (triples.empty()) {
    return Status::InsufficientData("CombineTriples: no triples");
  }
  CROWD_ASSIGN_OR_RETURN(linalg::Matrix cov,
                         CrossTripleCovariance(triples, overlap, options));
  CombinedEstimate out;
  if (options.weights == WeightScheme::kOptimal) {
    WeightSolution solution =
        MinimumVarianceWeights(cov, options.covariance_ridge);
    out.weights = std::move(solution.weights);
    out.used_fallback_weights = solution.used_fallback;
    if (solution.used_fallback) {
      if (obs::Registry* r = obs::MetricsRegistry()) {
        static obs::Counter* const fallbacks = r->GetCounter(
            "crowdeval_core_weight_fallback_total",
            "combines that fell back to uniform weights");
        fallbacks->Increment();
      }
    }
  } else {
    out.weights.assign(triples.size(),
                       1.0 / static_cast<double>(triples.size()));
  }
  out.p = 0.0;
  for (size_t k = 0; k < triples.size(); ++k) {
    out.p += out.weights[k] * triples[k].p;
  }
  auto variance = stats::WeightedSumVariance(out.weights, cov);
  if (!variance.ok() && variance.status().IsNumericalError()) {
    // Estimated covariances are not exactly PSD; when the cross terms
    // push the quadratic form negative, fall back to the per-triple
    // variances alone (non-negative by construction).
    double diag_variance = 0.0;
    for (size_t k = 0; k < triples.size(); ++k) {
      diag_variance += out.weights[k] * out.weights[k] * cov(k, k);
    }
    variance = diag_variance;
    if (obs::Registry* r = obs::MetricsRegistry()) {
      static obs::Counter* const fallbacks = r->GetCounter(
          "crowdeval_core_combine_diag_fallback_total",
          "combines whose variance fell back to the diagonal");
      fallbacks->Increment();
    }
  }
  CROWD_ASSIGN_OR_RETURN(double var_value, std::move(variance));
  out.deviation = std::sqrt(var_value);
  return out;
}

}  // namespace crowd::core
