// The 3-worker binary estimator (Algorithm A1), valid for regular and
// non-regular data alike — Lemma 3's covariances subsume Lemma 1 as the
// special case c_ij = n.
//
// EvaluateTriple is the reusable inner kernel: it produces worker i's
// error-rate estimate from one triple together with the quantities
// (derivatives, deviation, co-attempt counts) that Algorithm A2 needs
// to combine triples.

#ifndef CROWD_CORE_THREE_WORKER_H_
#define CROWD_CORE_THREE_WORKER_H_

#include <array>

#include "core/agreement.h"
#include "core/types.h"
#include "data/overlap_index.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::core {

/// \brief Worker i's estimate from the triple (i, j1, j2), plus the
/// ingredients for cross-triple covariances (Lemma 4).
struct TripleEstimate {
  data::WorkerId i = 0;
  data::WorkerId j1 = 0;
  data::WorkerId j2 = 0;

  /// Agreement summaries for the three pairs.
  PairAgreement q_i_j1;
  PairAgreement q_i_j2;
  PairAgreement q_j1_j2;

  /// c_{i,j1,j2}: tasks attempted by all three.
  size_t c_triple = 0;

  /// p_{k,i}: estimated error rate of worker i from this triple.
  double p = 0.0;
  /// Dev_{k,i} from Theorem 1 with the Lemma 3 covariances.
  double deviation = 0.0;

  /// Partial derivatives of p with respect to (q_{i,j1}, q_{i,j2},
  /// q_{j1,j2}) — Lemma 2.
  double d_i_j1 = 0.0;
  double d_i_j2 = 0.0;
  double d_j1_j2 = 0.0;

  /// Point error-rate estimates for the peer workers (needed by the
  /// Lemma 3 cross covariances and reused by Lemma 4).
  double p_j1 = 0.0;
  double p_j2 = 0.0;

  bool any_clamped = false;
};

/// \brief Evaluates worker `i` against peers `j1`, `j2`.
/// Fails with InsufficientData when some pair shares no task.
Result<TripleEstimate> EvaluateTriple(const data::OverlapIndex& overlap,
                                      data::WorkerId i, data::WorkerId j1,
                                      data::WorkerId j2,
                                      const BinaryOptions& options);

/// \brief The Lemma 3 covariance matrix of the triple's agreement
/// rates, in the order (q_{i,j1}, q_{i,j2}, q_{j1,j2}).
linalg::Matrix TripleCovariance(const TripleEstimate& t);

/// \brief Algorithm A1: confidence intervals for all three workers of
/// a (possibly non-regular) binary dataset with exactly 3 workers.
Result<std::array<WorkerAssessment, 3>> ThreeWorkerEvaluate(
    const data::ResponseMatrix& responses, const BinaryOptions& options);

}  // namespace crowd::core

#endif  // CROWD_CORE_THREE_WORKER_H_
