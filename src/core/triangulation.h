// The triangulation function of Equation 1,
//
//   f(q_ij, q_ik, q_jk) = 1/2 - 1/2 sqrt( (2q_ij-1)(2q_ik-1) /
//                                          (2q_jk-1) ),
//
// which maps the three pairwise agreement rates of a worker triple to
// the error rate of worker i, together with its closed-form partial
// derivatives (Lemma 2) needed by the delta method.

#ifndef CROWD_CORE_TRIANGULATION_H_
#define CROWD_CORE_TRIANGULATION_H_

#include "util/result.h"

namespace crowd::core {

/// \brief f evaluated at a point, with its gradient.
struct Triangulation {
  /// Estimated error rate of worker i.
  double p = 0.0;
  /// Lemma 2 partial derivatives.
  double d_q_ij = 0.0;
  double d_q_ik = 0.0;
  double d_q_jk = 0.0;
};

/// \brief Point evaluation of f. All agreement rates must lie in
/// (0.5, 1]; violations produce NumericalError (callers clamp first,
/// see core/agreement.h).
Result<double> TriangulateErrorRate(double q_ij, double q_ik, double q_jk);

/// \brief f plus its gradient (Lemma 2).
Result<Triangulation> TriangulateWithGradient(double q_ij, double q_ik,
                                              double q_jk);

}  // namespace crowd::core

#endif  // CROWD_CORE_TRIANGULATION_H_
