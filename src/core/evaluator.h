// CrowdEvaluator: the top-level façade tying the pipeline together —
// optional spammer pre-filtering (Section III-E2), the m-worker binary
// estimator (Algorithm A2) and the k-ary estimator (Algorithm A3) —
// plus the hire/fire decision helpers the paper's introduction
// motivates (act only when the whole interval clears a threshold).

#ifndef CROWD_CORE_EVALUATOR_H_
#define CROWD_CORE_EVALUATOR_H_

#include <utility>
#include <vector>

#include "core/kary_estimator.h"
#include "core/kary_m_worker.h"
#include "core/m_worker.h"
#include "core/spammer_filter.h"
#include "core/types.h"
#include "data/dataset.h"
#include "util/result.h"

namespace crowd::core {

/// \brief One-stop evaluation entry point.
class CrowdEvaluator {
 public:
  struct Config {
    BinaryOptions binary;
    KaryOptions kary;
    SpammerFilterOptions spammer;
    /// Run the majority-vote spammer filter before the binary
    /// estimator (recommended on real data; see Figures 3 and 4).
    bool prefilter_spammers = false;
    /// Worker-level parallelism of the m-worker entry points: 1 =
    /// serial (default), 0 = one thread per hardware core, n = n
    /// threads. Applied to the binary and k-ary per-worker loops
    /// whose own num_threads is left at the default; output is
    /// bit-identical for every value.
    size_t num_threads = 1;
  };

  CrowdEvaluator() = default;
  explicit CrowdEvaluator(Config config) : config_(std::move(config)) {}

  const Config& config() const { return config_; }

  /// \brief Binary evaluation report. Worker ids refer to the
  /// *original* matrix even when the spammer filter re-indexed it.
  struct BinaryReport {
    std::vector<WorkerAssessment> assessments;
    /// Workers without an assessment, ascending by id, with the
    /// reason. Workers removed by the spammer pre-filter appear here
    /// too (with a Status::FilteredOut), so `assessments ∪ failures`
    /// covers every worker of the input matrix.
    std::vector<std::pair<data::WorkerId, Status>> failures;
    /// Workers removed by the pre-filter (empty when disabled).
    std::vector<data::WorkerId> removed_spammers;
  };

  /// \brief Evaluates every worker of a binary dataset (Algorithm A2,
  /// optionally preceded by the spammer filter).
  Result<BinaryReport> EvaluateBinary(
      const data::ResponseMatrix& responses) const;

  /// \brief Evaluates a k-ary worker triple (Algorithm A3).
  Result<KaryResult> EvaluateKaryTriple(
      const data::ResponseMatrix& responses, data::WorkerId w1,
      data::WorkerId w2, data::WorkerId w3) const;

  /// \brief Evaluates every worker of a k-ary pool by fusing their
  /// triples (the m-worker k-ary extension; see core/kary_m_worker.h
  /// for its stated independence approximation).
  KaryMWorkerResult EvaluateKaryAll(
      const data::ResponseMatrix& responses,
      const KaryMWorkerOptions& options = {}) const;

  /// \brief Workers whose entire interval lies below `threshold` —
  /// confidently good workers (retain/hire).
  static std::vector<data::WorkerId> WorkersConfidentlyBelow(
      const std::vector<WorkerAssessment>& assessments, double threshold);

  /// \brief Workers whose entire interval lies above `threshold` —
  /// confidently bad workers (retrain/fire).
  static std::vector<data::WorkerId> WorkersConfidentlyAbove(
      const std::vector<WorkerAssessment>& assessments, double threshold);

 private:
  Config config_;
};

}  // namespace crowd::core

#endif  // CROWD_CORE_EVALUATOR_H_
