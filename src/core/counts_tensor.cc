#include "core/counts_tensor.h"

#include <bit>

#include "util/string_util.h"

namespace crowd::core {

CountsTensor::CountsTensor(int arity)
    : arity_(arity),
      cells_(static_cast<size_t>(arity + 1) * (arity + 1) * (arity + 1),
             0.0) {
  CROWD_CHECK_GE(arity, 2);
}

Result<CountsTensor> CountsTensor::FromResponses(
    const data::ResponseMatrix& responses, data::WorkerId w1,
    data::WorkerId w2, data::WorkerId w3) {
  if (w1 == w2 || w1 == w3 || w2 == w3) {
    return Status::Invalid("CountsTensor requires three distinct workers");
  }
  for (data::WorkerId w : {w1, w2, w3}) {
    if (w >= responses.num_workers()) {
      return Status::Invalid(StrFormat("worker id %zu out of range", w));
    }
  }
  CountsTensor tensor(responses.arity());
  for (data::TaskId t = 0; t < responses.num_tasks(); ++t) {
    auto r1 = responses.Get(w1, t);
    auto r2 = responses.Get(w2, t);
    auto r3 = responses.Get(w3, t);
    CountsCell cell{r1.has_value() ? *r1 + 1 : 0,
                    r2.has_value() ? *r2 + 1 : 0,
                    r3.has_value() ? *r3 + 1 : 0};
    tensor.at(cell) += 1.0;
  }
  return tensor;
}

double CountsTensor::PatternTotal(int pattern) const {
  double total = 0.0;
  const int s = side();
  for (int a = 0; a < s; ++a) {
    for (int b = 0; b < s; ++b) {
      for (int c = 0; c < s; ++c) {
        CountsCell cell{a, b, c};
        if (cell.Pattern() == pattern) total += at(cell);
      }
    }
  }
  return total;
}

double CountsTensor::PairAttemptTotal(int wa, int wb) const {
  CROWD_CHECK(wa >= 1 && wa <= 3 && wb >= 1 && wb <= 3 && wa != wb);
  int pair_mask = (1 << (wa - 1)) | (1 << (wb - 1));
  double total = 0.0;
  for (int pattern = 0; pattern < 8; ++pattern) {
    if ((pattern & pair_mask) == pair_mask) total += PatternTotal(pattern);
  }
  return total;
}

double CountsTensor::Covariance(const CountsCell& x,
                                const CountsCell& y) const {
  // Case 1 of Lemma 9: different attempt patterns are counted over
  // disjoint task groups, hence independent.
  if (x.Pattern() != y.Pattern()) return 0.0;
  double n = PatternTotal(x.Pattern());
  if (n <= 0.0) return 0.0;
  double cx = at(x);
  if (x == y) {
    // Case 2: multinomial variance, Count (n - Count) / n.
    return cx * (n - cx) / n;
  }
  // Case 3: multinomial cross term, -Count_x Count_y / n.
  return -cx * at(y) / n;
}

std::vector<CountsCell> CountsTensor::CellsWithMinWorkers(
    int min_workers) const {
  std::vector<CountsCell> cells;
  const int s = side();
  for (int a = 0; a < s; ++a) {
    for (int b = 0; b < s; ++b) {
      for (int c = 0; c < s; ++c) {
        CountsCell cell{a, b, c};
        if (std::popcount(static_cast<unsigned>(cell.Pattern())) >=
            min_workers) {
          cells.push_back(cell);
        }
      }
    }
  }
  return cells;
}

}  // namespace crowd::core
