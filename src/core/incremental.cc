#include "core/incremental.h"

namespace crowd::core {

IncrementalEvaluator::IncrementalEvaluator(size_t num_workers,
                                           size_t num_tasks,
                                           BinaryOptions options)
    : options_(options),
      responses_(num_workers, num_tasks, 2),
      overlap_(responses_),
      dirty_epoch_(num_workers, 1),
      cached_epoch_(num_workers, 0),
      cache_(num_workers) {}

Status IncrementalEvaluator::AddResponse(data::WorkerId w, data::TaskId t,
                                         data::Response response) {
  if (w >= responses_.num_workers() || t >= responses_.num_tasks()) {
    return Status::Invalid("AddResponse: index out of range");
  }
  std::optional<data::Response> previous = responses_.Get(w, t);
  if (previous.has_value() && *previous == response) return Status::OK();
  CROWD_RETURN_NOT_OK(responses_.Set(w, t, response));
  CROWD_RETURN_NOT_OK(overlap_.ApplyResponse(w, t, previous));
  MarkTaskDirty(t, w);
  return Status::OK();
}

void IncrementalEvaluator::MarkTaskDirty(data::TaskId /*t*/,
                                         data::WorkerId responder) {
  ++epoch_counter_;
  for (data::WorkerId v = 0; v < responses_.num_workers(); ++v) {
    if (v == responder || overlap_.CommonCount(v, responder) > 0) {
      dirty_epoch_[v] = epoch_counter_;
    }
  }
}

Result<WorkerAssessment> IncrementalEvaluator::Evaluate(
    data::WorkerId worker) {
  if (worker >= responses_.num_workers()) {
    return Status::Invalid("Evaluate: worker id out of range");
  }
  if (cache_[worker].has_value() &&
      cached_epoch_[worker] == dirty_epoch_[worker]) {
    return *cache_[worker];
  }
  Result<WorkerAssessment> assessment =
      EvaluateWorker(overlap_, worker, options_);
  cache_[worker] = assessment;
  cached_epoch_[worker] = dirty_epoch_[worker];
  return assessment;
}

MWorkerResult IncrementalEvaluator::EvaluateAll() {
  MWorkerResult out;
  for (data::WorkerId w = 0; w < responses_.num_workers(); ++w) {
    auto assessment = Evaluate(w);
    if (assessment.ok()) {
      out.assessments.push_back(*assessment);
    } else {
      out.failures.emplace_back(w, assessment.status());
    }
  }
  return out;
}

size_t IncrementalEvaluator::DirtyWorkerCount() const {
  size_t count = 0;
  for (data::WorkerId w = 0; w < responses_.num_workers(); ++w) {
    if (!cache_[w].has_value() ||
        cached_epoch_[w] != dirty_epoch_[w]) {
      ++count;
    }
  }
  return count;
}

}  // namespace crowd::core
