#include "core/incremental.h"

#include <utility>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace crowd::core {

IncrementalEvaluator::IncrementalEvaluator(size_t num_workers,
                                           size_t num_tasks,
                                           BinaryOptions options)
    : options_(options),
      responses_(num_workers, num_tasks, 2),
      overlap_(responses_),
      dirty_epoch_(num_workers, 1),
      cached_epoch_(num_workers, 0),
      cache_(num_workers) {}

Status IncrementalEvaluator::AddResponse(data::WorkerId w, data::TaskId t,
                                         data::Response response) {
  // The daemon feeds this untrusted input; every argument is checked
  // here (not just in CROWD_DCHECK-guarded accessors) and the message
  // names the offending value so clients can act on the error.
  if (w >= responses_.num_workers()) {
    return Status::Invalid(StrFormat(
        "AddResponse: worker id %zu out of range [0, %zu)", w,
        responses_.num_workers()));
  }
  if (t >= responses_.num_tasks()) {
    return Status::Invalid(
        StrFormat("AddResponse: task id %zu out of range [0, %zu)", t,
                  responses_.num_tasks()));
  }
  if (response < 0 || response >= responses_.arity()) {
    return Status::Invalid(StrFormat(
        "AddResponse: response %d for worker %zu, task %zu outside "
        "[0, %d)",
        response, w, t, responses_.arity()));
  }
  std::optional<data::Response> previous = responses_.Get(w, t);
  if (previous.has_value() && *previous == response) return Status::OK();
  CROWD_RETURN_NOT_OK(responses_.Set(w, t, response));
  CROWD_RETURN_NOT_OK(overlap_.ApplyResponse(w, t, previous));
  MarkTaskDirty(t, w);
  return Status::OK();
}

void IncrementalEvaluator::MarkTaskDirty(data::TaskId t,
                                         data::WorkerId responder) {
  ++epoch_counter_;
  const size_t m = responses_.num_workers();
  // The response only changed statistics joining the responder with
  // co-attempters of task t: the pair counts c/a_{responder,u} for
  // each co-attempter u, and the triple counts c_{responder,u1,u2}.
  // Worker v's evaluation reads pair/triple statistics over
  // {v} ∪ peers(v), where every peer shares at least one task with v.
  // So v must be invalidated iff
  //   (a) v is the responder,
  //   (b) v attempted t itself (its pair with the responder changed),
  //   (c) v can read a changed peer-peer statistic: the responder and
  //       some other co-attempter of t are both potential peers of v.
  // Workers merely sharing some task with the responder but failing
  // all three conditions keep their caches — the over-invalidation
  // this replaced dirtied every one of them.
  std::vector<data::WorkerId> co_attempters;
  for (data::WorkerId v = 0; v < m; ++v) {
    if (v != responder && overlap_.Attempted(v, t)) {
      co_attempters.push_back(v);
    }
  }
  for (data::WorkerId v = 0; v < m; ++v) {
    bool affected = v == responder || overlap_.Attempted(v, t);
    if (!affected && overlap_.CommonCount(v, responder) > 0) {
      for (data::WorkerId u : co_attempters) {
        if (overlap_.CommonCount(v, u) > 0) {
          affected = true;
          break;
        }
      }
    }
    if (affected) dirty_epoch_[v] = epoch_counter_;
  }
}

const Result<WorkerAssessment>& IncrementalEvaluator::EnsureEvaluated(
    data::WorkerId worker) {
  if (IsStale(worker)) {
    cache_[worker] = EvaluateWorker(overlap_, worker, options_);
    cached_epoch_[worker] = dirty_epoch_[worker];
  }
  return *cache_[worker];
}

Result<WorkerAssessment> IncrementalEvaluator::Evaluate(
    data::WorkerId worker) {
  if (worker >= responses_.num_workers()) {
    return Status::Invalid("Evaluate: worker id out of range");
  }
  // A cache hit hands out a copy of the stored Result without
  // re-storing anything; the cached entry stays valid.
  return EnsureEvaluated(worker);
}

MWorkerResult IncrementalEvaluator::EvaluateAll() {
  const size_t m = responses_.num_workers();
  std::vector<data::WorkerId> stale;
  for (data::WorkerId w = 0; w < m; ++w) {
    if (IsStale(w)) stale.push_back(w);
  }
  if (options_.num_threads != 1 && stale.size() > 1) {
    // Refresh the stale entries in parallel: each evaluation reads
    // only the (frozen, for the duration of this call) overlap index
    // and writes its own cache slot.
    ThreadPool pool(options_.num_threads);
    pool.ParallelFor(0, stale.size(), [&](size_t i) {
      data::WorkerId w = stale[i];
      cache_[w] = EvaluateWorker(overlap_, w, options_);
      cached_epoch_[w] = dirty_epoch_[w];
      return Status::OK();
    }).AbortIfNotOk();  // Only an escaped exception lands here.
  } else {
    for (data::WorkerId w : stale) EnsureEvaluated(w);
  }
  MWorkerResult out;
  for (data::WorkerId w = 0; w < m; ++w) {
    // One copy out of the cache, which stays warm for later calls.
    const Result<WorkerAssessment>& assessment = EnsureEvaluated(w);
    if (assessment.ok()) {
      out.assessments.push_back(*assessment);
    } else {
      out.failures.emplace_back(w, assessment.status());
    }
  }
  return out;
}

size_t IncrementalEvaluator::DirtyWorkerCount() const {
  size_t count = 0;
  for (data::WorkerId w = 0; w < responses_.num_workers(); ++w) {
    if (IsStale(w)) ++count;
  }
  return count;
}

}  // namespace crowd::core
