#include "core/triple_selection.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"

namespace crowd::core {

namespace {

// Pairs the ordered candidate list front-to-back: the head is paired
// with the first later candidate sharing >= 1 task with it (all
// candidates already share >= 1 task with the target).
std::vector<WorkerPair> PairInOrder(const data::OverlapIndex& overlap,
                                    std::vector<data::WorkerId> candidates) {
  std::vector<WorkerPair> pairs;
  while (candidates.size() >= 2) {
    data::WorkerId head = candidates.front();
    size_t partner_pos = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (overlap.CommonCount(head, candidates[i]) > 0) {
        partner_pos = i;
        break;
      }
    }
    if (partner_pos == 0) {
      // Head cannot be paired with anyone; drop it.
      if (obs::Registry* r = obs::MetricsRegistry()) {
        static obs::Counter* const dropped = r->GetCounter(
            "crowdeval_core_pairing_unpairable_total",
            "candidate peers dropped because no partner shares a task");
        dropped->Increment();
      }
      candidates.erase(candidates.begin());
      continue;
    }
    pairs.emplace_back(head, candidates[partner_pos]);
    candidates.erase(candidates.begin() + static_cast<long>(partner_pos));
    candidates.erase(candidates.begin());
  }
  return pairs;
}

std::vector<data::WorkerId> CandidatesFor(
    const data::OverlapIndex& overlap, data::WorkerId target) {
  std::vector<data::WorkerId> candidates;
  for (data::WorkerId w = 0; w < overlap.num_workers(); ++w) {
    if (w != target && overlap.CommonCount(target, w) > 0) {
      candidates.push_back(w);
    }
  }
  return candidates;
}

}  // namespace

std::vector<WorkerPair> GreedyPairs(const data::OverlapIndex& overlap,
                                    data::WorkerId target) {
  std::vector<data::WorkerId> candidates = CandidatesFor(overlap, target);
  // Descending overlap with the target; ties by id for determinism.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](data::WorkerId a, data::WorkerId b) {
                     return overlap.CommonCount(target, a) >
                            overlap.CommonCount(target, b);
                   });
  return PairInOrder(overlap, std::move(candidates));
}

std::vector<WorkerPair> RandomPairs(const data::OverlapIndex& overlap,
                                    data::WorkerId target, uint64_t seed) {
  std::vector<data::WorkerId> candidates = CandidatesFor(overlap, target);
  // SplitMix64-keyed Fisher-Yates; self-contained so that crowd_core
  // does not depend on crowd_rng.
  uint64_t state = seed ^ 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (size_t i = candidates.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(next() % i);
    std::swap(candidates[i - 1], candidates[j]);
  }
  return PairInOrder(overlap, std::move(candidates));
}

}  // namespace crowd::core
