// The (k+1)^3 response-frequency tensor of Algorithm A3:
// Counts[a][b][c] is the number of tasks where worker 1 responded a,
// worker 2 responded b and worker 3 responded c, with index 0 meaning
// "did not attempt" and indices 1..k meaning responses r_1..r_k
// (i.e. tensor index = dataset response + 1).
//
// Also implements Lemma 9: entries are multinomial within each
// "attempt pattern" (the set of workers that responded) and
// independent across patterns, which gives their covariances.

#ifndef CROWD_CORE_COUNTS_TENSOR_H_
#define CROWD_CORE_COUNTS_TENSOR_H_

#include <array>
#include <vector>

#include "data/response_matrix.h"
#include "util/logging.h"
#include "util/result.h"

namespace crowd::core {

/// \brief Index triple into the counts tensor; each component is in
/// [0, k] with 0 = "not attempted".
struct CountsCell {
  int a = 0;
  int b = 0;
  int c = 0;

  /// Bitmask of the workers that responded: bit 0 for worker 1, etc.
  int Pattern() const {
    return (a != 0 ? 1 : 0) | (b != 0 ? 2 : 0) | (c != 0 ? 4 : 0);
  }
  bool operator==(const CountsCell&) const = default;
};

/// \brief The dense counts tensor for one worker triple.
class CountsTensor {
 public:
  explicit CountsTensor(int arity);

  /// Builds the tensor from three workers' responses.
  static Result<CountsTensor> FromResponses(
      const data::ResponseMatrix& responses, data::WorkerId w1,
      data::WorkerId w2, data::WorkerId w3);

  int arity() const { return arity_; }
  /// Side length of the tensor, arity + 1.
  int side() const { return arity_ + 1; }

  double at(const CountsCell& cell) const { return cells_[Flat(cell)]; }
  double& at(const CountsCell& cell) { return cells_[Flat(cell)]; }
  double at(int a, int b, int c) const { return at(CountsCell{a, b, c}); }
  double& at(int a, int b, int c) { return at(CountsCell{a, b, c}); }

  /// Total count over all cells with the given attempt pattern — the
  /// number of tasks attempted by exactly that worker set (Lemma 9's
  /// group size n).
  double PatternTotal(int pattern) const;

  /// Number of tasks attempted by all three workers (pattern 0b111).
  double TripleTotal() const { return PatternTotal(7); }

  /// Number of tasks attempted by workers `wa` and `wb` (1-based worker
  /// positions), regardless of the third: n_{a,b,*} + n_{a,b,only}.
  double PairAttemptTotal(int wa, int wb) const;

  /// Lemma 9: covariance of two tensor entries. Zero across different
  /// attempt patterns; multinomial within a pattern.
  double Covariance(const CountsCell& x, const CountsCell& y) const;

  /// All cells whose pattern has at least `min_workers` responding
  /// workers, in deterministic order. These are the cells that feed
  /// the spectral estimate (a cell needs >= 2 responses to enter any
  /// response-frequency matrix).
  std::vector<CountsCell> CellsWithMinWorkers(int min_workers) const;

 private:
  size_t Flat(const CountsCell& cell) const {
    CROWD_DCHECK(cell.a >= 0 && cell.a <= arity_);
    CROWD_DCHECK(cell.b >= 0 && cell.b <= arity_);
    CROWD_DCHECK(cell.c >= 0 && cell.c <= arity_);
    size_t s = static_cast<size_t>(side());
    return (static_cast<size_t>(cell.a) * s + static_cast<size_t>(cell.b)) *
               s +
           static_cast<size_t>(cell.c);
  }

  int arity_;
  std::vector<double> cells_;
};

}  // namespace crowd::core

#endif  // CROWD_CORE_COUNTS_TENSOR_H_
