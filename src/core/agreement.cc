#include "core/agreement.h"

#include <algorithm>

namespace crowd::core {

Result<PairAgreement> ComputePairAgreement(
    const data::OverlapIndex& overlap, data::WorkerId a, data::WorkerId b,
    double min_agreement_margin) {
  PairAgreement out;
  out.a = a;
  out.b = b;
  out.common = overlap.CommonCount(a, b);
  CROWD_ASSIGN_OR_RETURN(out.q_raw, overlap.AgreementRate(a, b));
  double floor = 0.5 + min_agreement_margin;
  out.q = std::clamp(out.q_raw, floor, 1.0);
  out.clamped = out.q != out.q_raw;
  return out;
}

}  // namespace crowd::core
