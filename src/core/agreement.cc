#include "core/agreement.h"

#include <algorithm>

#include "obs/metrics.h"

namespace crowd::core {

Result<PairAgreement> ComputePairAgreement(
    const data::OverlapIndex& overlap, data::WorkerId a, data::WorkerId b,
    double min_agreement_margin) {
  PairAgreement out;
  out.a = a;
  out.b = b;
  out.common = overlap.CommonCount(a, b);
  CROWD_ASSIGN_OR_RETURN(out.q_raw, overlap.AgreementRate(a, b));
  double floor = 0.5 + min_agreement_margin;
  out.q = std::clamp(out.q_raw, floor, 1.0);
  out.clamped = out.q != out.q_raw;
  if (out.clamped) {
    // Hot path: count only the (rare) clamp events, no timing here.
    if (obs::Registry* r = obs::MetricsRegistry()) {
      static obs::Counter* const clamped = r->GetCounter(
          "crowdeval_core_agreement_clamped_total",
          "pair agreement rates clamped away from the 1/2 singularity");
      clamped->Increment();
    }
  }
  return out;
}

}  // namespace crowd::core
