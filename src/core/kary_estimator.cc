#include "core/kary_estimator.h"

#include <cmath>

#include "linalg/matrix_functions.h"
#include "stats/normal.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace crowd::core {

namespace {

// The Jacobian of ProbEstimate with respect to the perturbable counts
// cells: jacobian[worker][row][col] is a vector over cells.
struct Jacobian {
  std::vector<CountsCell> cells;
  // Flattened: entry index = ((worker * k) + row) * k + col; each holds
  // the derivative with respect to every cell.
  std::vector<std::vector<double>> derivatives;
};

size_t OutputIndex(int k, int worker, int row, int col) {
  return (static_cast<size_t>(worker) * k + static_cast<size_t>(row)) * k +
         static_cast<size_t>(col);
}

// Central finite differences, falling back to one-sided when one of
// the perturbed ProbEstimate calls fails (Step 6 of Algorithm A3).
Result<Jacobian> ComputeJacobian(const CountsTensor& counts,
                                 const ProbEstimateResult& base,
                                 const KaryOptions& options) {
  const int k = counts.arity();
  Jacobian jac;
  jac.cells = counts.CellsWithMinWorkers(
      options.paper_strict_jacobian ? 3 : 2);
  const size_t num_outputs = static_cast<size_t>(3) * k * k;
  jac.derivatives.assign(num_outputs,
                         std::vector<double>(jac.cells.size(), 0.0));

  const double eps = options.epsilon;
  CountsTensor work = counts;
  for (size_t cell_idx = 0; cell_idx < jac.cells.size(); ++cell_idx) {
    const CountsCell& cell = jac.cells[cell_idx];
    work.at(cell) += eps;
    auto plus = ProbEstimate(work, options.prob_estimate);
    work.at(cell) -= 2.0 * eps;
    auto minus = ProbEstimate(work, options.prob_estimate);
    work.at(cell) += eps;  // Restore.

    const ProbEstimateResult* hi = plus.ok() ? &*plus : nullptr;
    const ProbEstimateResult* lo = minus.ok() ? &*minus : nullptr;
    double denom = 2.0 * eps;
    if (hi == nullptr && lo == nullptr) {
      // Derivative unavailable at this cell; leave it at zero (the
      // cell count is typically zero and barely enters the estimate).
      CROWD_LOG_DEBUG << "Jacobian cell (" << cell.a << "," << cell.b
                      << "," << cell.c << "): both perturbations failed";
      continue;
    }
    if (hi == nullptr || lo == nullptr) {
      denom = eps;  // One-sided difference against the base point.
    }
    for (int worker = 0; worker < 3; ++worker) {
      const linalg::Matrix& hi_m = (hi != nullptr ? *hi : base).v(worker);
      const linalg::Matrix& lo_m = (lo != nullptr ? *lo : base).v(worker);
      for (int r = 0; r < k; ++r) {
        for (int c = 0; c < k; ++c) {
          jac.derivatives[OutputIndex(k, worker, r, c)][cell_idx] =
              (hi_m(r, c) - lo_m(r, c)) / denom;
        }
      }
    }
  }
  return jac;
}

}  // namespace

Result<KaryResult> KaryEvaluateCounts(const CountsTensor& counts,
                                      const KaryOptions& options) {
  const int k = counts.arity();
  CROWD_ASSIGN_OR_RETURN(ProbEstimateResult base,
                         ProbEstimate(counts, options.prob_estimate));
  CROWD_ASSIGN_OR_RETURN(Jacobian jac,
                         ComputeJacobian(counts, base, options));

  // Covariance matrix over the perturbable cells (Lemma 9). Dense is
  // fine: (k+1)^3 <= 343 cells for the arities in scope.
  const size_t num_cells = jac.cells.size();
  linalg::Matrix cell_cov(num_cells, num_cells);
  for (size_t x = 0; x < num_cells; ++x) {
    for (size_t y = x; y < num_cells; ++y) {
      double cov = counts.Covariance(jac.cells[x], jac.cells[y]);
      cell_cov(x, y) = cell_cov(y, x) = cov;
    }
  }

  CROWD_ASSIGN_OR_RETURN(double z, stats::TwoSidedZ(options.confidence));

  KaryResult out;
  out.rotations_used = base.rotations_used;
  out.selectivity.assign(k, 0.0);
  for (int worker = 0; worker < 3; ++worker) {
    KaryWorkerEstimate& est = out.workers[worker];
    est.v = base.v(worker);
    est.v_deviation = linalg::Matrix(k, k);
    est.intervals.assign(k, std::vector<stats::ConfidenceInterval>(k));

    // Row sums of V estimate sqrt(S_r); needed to normalize into P.
    linalg::Vector row_sums(k, 0.0);
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < k; ++c) row_sums[r] += est.v(r, c);
    }

    est.p = est.v;
    for (int r = 0; r < k; ++r) {
      if (std::fabs(row_sums[r]) < 1e-12) {
        return Status::NumericalError(StrFormat(
            "worker %d: recovered S^{1/2}P row %d sums to ~0", worker,
            r));
      }
      for (int c = 0; c < k; ++c) est.p(r, c) /= row_sums[r];
      out.selectivity[r] += row_sums[r] * row_sums[r] / 3.0;
    }
    // Spectral noise can push individual entries slightly outside
    // [0, 1]; project the *point estimate* back onto the simplex
    // (clamp, then renormalize rows). Intervals are left untouched —
    // their coverage guarantee is about the unprojected estimator.
    linalg::ClampEntries(&est.p, 0.0, 1.0);
    CROWD_RETURN_NOT_OK(linalg::NormalizeRowsToSumOne(&est.p));

    // Per-entry delta method: Var = d^T Cov d over the cells, then the
    // V interval is mapped to a P interval by the row normalization.
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < k; ++c) {
        const std::vector<double>& d =
            jac.derivatives[OutputIndex(k, worker, r, c)];
        double variance = 0.0;
        for (size_t x = 0; x < num_cells; ++x) {
          if (d[x] == 0.0) continue;
          for (size_t y = 0; y < num_cells; ++y) {
            variance += d[x] * d[y] * cell_cov(x, y);
          }
        }
        variance = std::max(variance, 0.0);
        double dev = std::sqrt(variance);
        est.v_deviation(r, c) = dev;
        stats::ConfidenceInterval ci;
        ci.confidence = options.confidence;
        ci.lo = (est.v(r, c) - z * dev) / row_sums[r];
        ci.hi = (est.v(r, c) + z * dev) / row_sums[r];
        if (ci.lo > ci.hi) std::swap(ci.lo, ci.hi);  // Negative row sum.
        est.intervals[r][c] = ci;
      }
    }
  }

  // Normalize the selectivity estimate onto the simplex.
  double total = 0.0;
  for (double s : out.selectivity) total += s;
  if (total > 0.0) {
    for (double& s : out.selectivity) s /= total;
  }
  return out;
}

Result<KaryResult> KaryEvaluate(const data::ResponseMatrix& responses,
                                data::WorkerId w1, data::WorkerId w2,
                                data::WorkerId w3,
                                const KaryOptions& options) {
  CROWD_ASSIGN_OR_RETURN(
      CountsTensor counts,
      CountsTensor::FromResponses(responses, w1, w2, w3));
  return KaryEvaluateCounts(counts, options);
}

}  // namespace crowd::core
