#include "core/kary_m_worker.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/triple_selection.h"
#include "linalg/matrix_functions.h"
#include "stats/normal.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace crowd::core {

namespace {

// Greedy peer pairing restricted to peers meeting the overlap
// threshold — the same strategy as Algorithm A2's Step 1 but with the
// k-ary method's stronger data requirement.
std::vector<WorkerPair> QualifiedPairs(const data::OverlapIndex& overlap,
                                       data::WorkerId target,
                                       size_t min_overlap) {
  std::vector<data::WorkerId> candidates;
  for (data::WorkerId v = 0; v < overlap.num_workers(); ++v) {
    if (v != target && overlap.CommonCount(target, v) >= min_overlap) {
      candidates.push_back(v);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](data::WorkerId a, data::WorkerId b) {
                     return overlap.CommonCount(target, a) >
                            overlap.CommonCount(target, b);
                   });
  std::vector<WorkerPair> pairs;
  while (candidates.size() >= 2) {
    data::WorkerId head = candidates.front();
    size_t partner = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (overlap.CommonCount(head, candidates[i]) >= min_overlap) {
        partner = i;
        break;
      }
    }
    if (partner == 0) {
      candidates.erase(candidates.begin());
      continue;
    }
    pairs.emplace_back(head, candidates[partner]);
    candidates.erase(candidates.begin() + static_cast<long>(partner));
    candidates.erase(candidates.begin());
  }
  return pairs;
}

}  // namespace

Result<KaryWorkerAssessment> KaryEvaluateWorker(
    const data::ResponseMatrix& responses, data::WorkerId worker,
    const KaryMWorkerOptions& options) {
  data::OverlapIndex overlap(responses);
  return KaryEvaluateWorker(responses, overlap, worker, options);
}

Result<KaryWorkerAssessment> KaryEvaluateWorker(
    const data::ResponseMatrix& responses,
    const data::OverlapIndex& overlap, data::WorkerId worker,
    const KaryMWorkerOptions& options) {
  if (worker >= responses.num_workers()) {
    return Status::Invalid(StrFormat("worker id %zu out of range", worker));
  }
  const int k = responses.arity();
  std::vector<WorkerPair> pairs =
      QualifiedPairs(overlap, worker, options.min_pair_overlap);
  if (pairs.empty()) {
    return Status::InsufficientData(StrFormat(
        "worker %zu: no peer pair meets the %zu-task overlap threshold",
        worker, options.min_pair_overlap));
  }
  if (options.max_triples > 0 && pairs.size() > options.max_triples) {
    pairs.resize(options.max_triples);
  }

  CROWD_ASSIGN_OR_RETURN(double z,
                         stats::TwoSidedZ(options.kary.confidence));

  // Per-entry inverse-variance accumulation across triples.
  linalg::Matrix weight_sum(k, k);
  linalg::Matrix weighted_center(k, k);
  size_t used = 0;
  for (const auto& [j1, j2] : pairs) {
    auto triple =
        KaryEvaluate(responses, worker, j1, j2, options.kary);
    if (!triple.ok()) {
      CROWD_LOG_DEBUG << "k-ary triple (" << worker << ", " << j1 << ", "
                      << j2 << ") failed: " << triple.status().ToString();
      continue;
    }
    const KaryWorkerEstimate& est = triple->workers[0];
    bool usable = true;
    for (int r = 0; r < k && usable; ++r) {
      for (int c = 0; c < k && usable; ++c) {
        if (!std::isfinite(est.intervals[r][c].center()) ||
            !std::isfinite(est.intervals[r][c].size())) {
          usable = false;
        }
      }
    }
    if (!usable) continue;
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < k; ++c) {
        const auto& ci = est.intervals[r][c];
        double dev = ci.size() / (2.0 * z);
        // Floor keeps a zero-deviation entry from absorbing all weight.
        double variance = std::max(dev * dev, 1e-8);
        weight_sum(r, c) += 1.0 / variance;
        weighted_center(r, c) += ci.center() / variance;
      }
    }
    ++used;
  }
  if (used == 0) {
    return Status::InsufficientData(StrFormat(
        "worker %zu: all %zu candidate triples degenerate", worker,
        pairs.size()));
  }

  KaryWorkerAssessment out;
  out.worker = worker;
  out.num_triples = used;
  out.p = linalg::Matrix(k, k);
  out.intervals.assign(k, std::vector<stats::ConfidenceInterval>(k));
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      double center = weighted_center(r, c) / weight_sum(r, c);
      double dev = std::sqrt(1.0 / weight_sum(r, c));
      out.p(r, c) = center;
      out.intervals[r][c].lo = center - z * dev;
      out.intervals[r][c].hi = center + z * dev;
      out.intervals[r][c].confidence = options.kary.confidence;
    }
  }
  linalg::ClampEntries(&out.p, 0.0, 1.0);
  CROWD_RETURN_NOT_OK(linalg::NormalizeRowsToSumOne(&out.p));
  return out;
}

KaryMWorkerResult KaryEvaluateAllWorkers(
    const data::ResponseMatrix& responses,
    const KaryMWorkerOptions& options) {
  // One shared overlap build; per-worker evaluations read it
  // immutably, so they fan out over the pool. Slots + id-ordered merge
  // keep the output bit-identical to the serial path.
  data::OverlapIndex overlap(responses);
  const size_t m = responses.num_workers();
  std::vector<std::optional<Result<KaryWorkerAssessment>>> slots(m);
  ThreadPool pool(options.num_threads);
  Status loop_status = pool.ParallelFor(0, m, [&](size_t w) {
    slots[w] = KaryEvaluateWorker(responses, overlap, w, options);
    return Status::OK();
  });
  KaryMWorkerResult out;
  for (data::WorkerId w = 0; w < m; ++w) {
    if (!slots[w].has_value()) {
      // Only reachable if the loop body itself failed (e.g. an
      // exception was converted to a Status by the pool).
      out.failures.emplace_back(
          w, loop_status.ok()
                 ? Status::Internal("worker evaluation did not run")
                 : loop_status);
      continue;
    }
    Result<KaryWorkerAssessment>& assessment = *slots[w];
    if (assessment.ok()) {
      out.assessments.push_back(std::move(*assessment));
    } else {
      out.failures.emplace_back(w, assessment.status());
    }
  }
  return out;
}

}  // namespace crowd::core
