// Shared option and result types for the binary estimators (Algorithms
// A1 and A2).

#ifndef CROWD_CORE_TYPES_H_
#define CROWD_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>

#include "data/response_matrix.h"
#include "stats/intervals.h"

namespace crowd::core {

/// How the per-triple estimates are combined in Step 3 of Algorithm A2.
enum class WeightScheme {
  /// Lemma 5 minimum-variance weights, A = C^{-1}1 / ||C^{-1}1||_1.
  kOptimal,
  /// a_k = 1/l for all triples (the unoptimized scheme of Fig. 2(c)).
  kUniform,
};

/// What to do when a triple's raw agreement rate falls at or below the
/// 1/2 singularity of the triangulation formula.
enum class SingularityPolicy {
  /// The paper's behavior: that triple's estimate fails (Section III-C
  /// notes the failure probability decays exponentially in the task
  /// count). In the m-worker method the triple is dropped and the
  /// worker is evaluated from the remaining triples; in the 3-worker
  /// method the evaluation fails.
  kDropTriple,
  /// Clamp the rate to 0.5 + margin: the estimate survives with a
  /// deliberately inflated deviation (the Lemma 2 derivatives blow up
  /// near the singularity), so downstream weighting de-emphasizes it.
  kClampInflate,
};

/// How peers are paired into triples (Algorithm A2 step 1).
enum class PairingStrategy {
  /// Section III-C1's greedy overlap-descending pairing.
  kGreedy,
  /// Uniformly random valid pairing (ablation baseline).
  kRandom,
};

/// Options for the binary-task estimators.
struct BinaryOptions {
  /// Nominal coverage of the emitted intervals.
  double confidence = 0.95;
  /// Agreement-rate clamp margin above the 1/2 singularity
  /// (see core/agreement.h for the rationale).
  double min_agreement_margin = 1e-6;
  /// Behavior at the singularity (see SingularityPolicy).
  SingularityPolicy singularity = SingularityPolicy::kDropTriple;
  /// Triple combination scheme (Algorithm A2 step 3).
  WeightScheme weights = WeightScheme::kOptimal;
  /// Ridge jitter added to the triple covariance diagonal before
  /// inverting it in Lemma 5; guards near-singular matrices.
  double covariance_ridge = 1e-12;
  /// Peer pairing strategy (Algorithm A2 step 1).
  PairingStrategy pairing = PairingStrategy::kGreedy;
  /// Seed for PairingStrategy::kRandom.
  uint64_t pairing_seed = 1;
  /// Worker-level parallelism of the m-worker loop: 1 = serial
  /// (default), 0 = one thread per hardware core, n = n threads. The
  /// output is bit-identical for every value (see util/thread_pool.h).
  size_t num_threads = 1;
};

/// \brief The evaluation result for one worker.
struct WorkerAssessment {
  data::WorkerId worker = 0;
  /// Combined point estimate of the error rate.
  double error_rate = 0.0;
  /// Standard deviation of the estimate (Theorem 1).
  double deviation = 0.0;
  /// The c-confidence interval (unclamped; may extend past [0, 1/2]).
  stats::ConfidenceInterval interval;
  /// Number of triples that contributed (1 in the 3-worker case).
  size_t num_triples = 0;
  /// True when any contributing agreement rate had to be clamped away
  /// from the 1/2 singularity — a sign the worker pool contains
  /// spammers and the interval should be treated with suspicion.
  bool any_clamped = false;
};

}  // namespace crowd::core

#endif  // CROWD_CORE_TYPES_H_
