#include "core/evaluator.h"

#include <algorithm>

#include "util/string_util.h"

namespace crowd::core {

namespace {

/// The façade-level num_threads is the default for entry points whose
/// own options leave the knob at 1 (serial); a more specific non-default
/// setting wins.
size_t MergeThreadKnob(size_t option_threads, size_t config_threads) {
  return option_threads == 1 ? config_threads : option_threads;
}

}  // namespace

Result<CrowdEvaluator::BinaryReport> CrowdEvaluator::EvaluateBinary(
    const data::ResponseMatrix& responses) const {
  BinaryReport report;
  BinaryOptions binary = config_.binary;
  binary.num_threads =
      MergeThreadKnob(binary.num_threads, config_.num_threads);
  if (!config_.prefilter_spammers) {
    CROWD_ASSIGN_OR_RETURN(MWorkerResult result,
                           MWorkerEvaluate(responses, binary));
    report.assessments = std::move(result.assessments);
    report.failures = std::move(result.failures);
    return report;
  }

  CROWD_ASSIGN_OR_RETURN(SpammerFilterResult filtered,
                         FilterSpammers(responses, config_.spammer));
  report.removed_spammers = filtered.removed;
  CROWD_ASSIGN_OR_RETURN(MWorkerResult result,
                         MWorkerEvaluate(filtered.filtered, binary));
  // Map filtered indices back to the original worker ids.
  report.assessments = std::move(result.assessments);
  for (WorkerAssessment& a : report.assessments) {
    a.worker = filtered.kept[a.worker];
  }
  report.failures = std::move(result.failures);
  for (auto& [worker, status] : report.failures) {
    worker = filtered.kept[worker];
  }
  // Pruned workers must not silently vanish from the report: record
  // each one as a failure with the dedicated status so that
  // assessments ∪ failures covers every worker of the input.
  for (data::WorkerId w : report.removed_spammers) {
    report.failures.emplace_back(
        w, Status::FilteredOut(StrFormat(
               "worker %zu removed by the spammer pre-filter "
               "(majority-vote proxy error above %.2f)",
               w, config_.spammer.threshold)));
  }
  std::sort(report.failures.begin(), report.failures.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return report;
}

Result<KaryResult> CrowdEvaluator::EvaluateKaryTriple(
    const data::ResponseMatrix& responses, data::WorkerId w1,
    data::WorkerId w2, data::WorkerId w3) const {
  return KaryEvaluate(responses, w1, w2, w3, config_.kary);
}

KaryMWorkerResult CrowdEvaluator::EvaluateKaryAll(
    const data::ResponseMatrix& responses,
    const KaryMWorkerOptions& options) const {
  KaryMWorkerOptions merged = options;
  merged.kary = config_.kary;
  merged.num_threads =
      MergeThreadKnob(merged.num_threads, config_.num_threads);
  return KaryEvaluateAllWorkers(responses, merged);
}

std::vector<data::WorkerId> CrowdEvaluator::WorkersConfidentlyBelow(
    const std::vector<WorkerAssessment>& assessments, double threshold) {
  std::vector<data::WorkerId> out;
  for (const auto& a : assessments) {
    if (a.interval.hi < threshold) out.push_back(a.worker);
  }
  return out;
}

std::vector<data::WorkerId> CrowdEvaluator::WorkersConfidentlyAbove(
    const std::vector<WorkerAssessment>& assessments, double threshold) {
  std::vector<data::WorkerId> out;
  for (const auto& a : assessments) {
    if (a.interval.lo > threshold) out.push_back(a.worker);
  }
  return out;
}

}  // namespace crowd::core
