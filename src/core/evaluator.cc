#include "core/evaluator.h"

namespace crowd::core {

Result<CrowdEvaluator::BinaryReport> CrowdEvaluator::EvaluateBinary(
    const data::ResponseMatrix& responses) const {
  BinaryReport report;
  if (!config_.prefilter_spammers) {
    CROWD_ASSIGN_OR_RETURN(MWorkerResult result,
                           MWorkerEvaluate(responses, config_.binary));
    report.assessments = std::move(result.assessments);
    report.failures = std::move(result.failures);
    return report;
  }

  CROWD_ASSIGN_OR_RETURN(SpammerFilterResult filtered,
                         FilterSpammers(responses, config_.spammer));
  report.removed_spammers = filtered.removed;
  CROWD_ASSIGN_OR_RETURN(
      MWorkerResult result,
      MWorkerEvaluate(filtered.filtered, config_.binary));
  // Map filtered indices back to the original worker ids.
  report.assessments = std::move(result.assessments);
  for (WorkerAssessment& a : report.assessments) {
    a.worker = filtered.kept[a.worker];
  }
  report.failures = std::move(result.failures);
  for (auto& [worker, status] : report.failures) {
    worker = filtered.kept[worker];
  }
  return report;
}

Result<KaryResult> CrowdEvaluator::EvaluateKaryTriple(
    const data::ResponseMatrix& responses, data::WorkerId w1,
    data::WorkerId w2, data::WorkerId w3) const {
  return KaryEvaluate(responses, w1, w2, w3, config_.kary);
}

KaryMWorkerResult CrowdEvaluator::EvaluateKaryAll(
    const data::ResponseMatrix& responses,
    const KaryMWorkerOptions& options) const {
  KaryMWorkerOptions merged = options;
  merged.kary = config_.kary;
  return KaryEvaluateAllWorkers(responses, merged);
}

std::vector<data::WorkerId> CrowdEvaluator::WorkersConfidentlyBelow(
    const std::vector<WorkerAssessment>& assessments, double threshold) {
  std::vector<data::WorkerId> out;
  for (const auto& a : assessments) {
    if (a.interval.hi < threshold) out.push_back(a.worker);
  }
  return out;
}

std::vector<data::WorkerId> CrowdEvaluator::WorkersConfidentlyAbove(
    const std::vector<WorkerAssessment>& assessments, double threshold) {
  std::vector<data::WorkerId> out;
  for (const auto& a : assessments) {
    if (a.interval.lo > threshold) out.push_back(a.worker);
  }
  return out;
}

}  // namespace crowd::core
