#include "core/spammer_filter.h"

#include <cmath>
#include <limits>

#include "baselines/majority_vote.h"
#include "obs/metrics.h"

namespace crowd::core {

Result<SpammerFilterResult> FilterSpammers(
    const data::ResponseMatrix& responses,
    const SpammerFilterOptions& options) {
  SpammerFilterResult out{
      {}, {}, {}, data::ResponseMatrix(0, responses.num_tasks(),
                                       responses.arity())};
  auto proxies = baselines::MajorityProxyErrorRates(responses,
                                                    options.exclude_self);
  out.proxy_error.resize(responses.num_workers(),
                         std::numeric_limits<double>::quiet_NaN());
  for (data::WorkerId w = 0; w < responses.num_workers(); ++w) {
    bool keep;
    if (proxies[w].has_value()) {
      out.proxy_error[w] = *proxies[w];
      keep = *proxies[w] <= options.threshold;
    } else {
      keep = !options.drop_unscorable;
    }
    (keep ? out.kept : out.removed).push_back(w);
  }
  CROWD_ASSIGN_OR_RETURN(out.filtered,
                         responses.SelectWorkers(out.kept));
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const runs = r->GetCounter(
        "crowdeval_core_spammer_filter_runs_total",
        "FilterSpammers invocations");
    static obs::Counter* const removed = r->GetCounter(
        "crowdeval_core_spammers_filtered_total",
        "workers removed by the spammer filter");
    runs->Increment();
    removed->Increment(out.removed.size());
  }
  return out;
}

}  // namespace crowd::core
