// Step 3 of Algorithm A2: combining the per-triple estimates of one
// worker's error rate into a single estimate.
//
//  * Lemma 4 gives the l x l covariance matrix of the per-triple
//    estimates: diagonal entries are the per-triple variances; off-
//    diagonal entries couple triples through the agreement rates that
//    involve the evaluated worker (the peer pairs are disjoint across
//    triples and contribute no covariance).
//  * Lemma 5 gives the minimum-variance linear weights,
//    A = C^{-1} 1 / (1^T C^{-1} 1).

#ifndef CROWD_CORE_TRIPLE_COMBINER_H_
#define CROWD_CORE_TRIPLE_COMBINER_H_

#include <vector>

#include "core/three_worker.h"
#include "core/types.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::core {

/// \brief The combined estimate for one worker.
struct CombinedEstimate {
  double p = 0.0;
  double deviation = 0.0;
  /// The weights actually used (optimal, or uniform on request or
  /// fallback).
  linalg::Vector weights;
  /// True when the Lemma 5 system was ill-conditioned and the combiner
  /// fell back to uniform weights.
  bool used_fallback_weights = false;
};

/// \brief The Lemma 4 covariance matrix of the per-triple estimates.
/// All triples must evaluate the same worker.
Result<linalg::Matrix> CrossTripleCovariance(
    const std::vector<TripleEstimate>& triples,
    const data::OverlapIndex& overlap, const BinaryOptions& options);

/// \brief Lemma 5: weights minimizing a^T C a subject to sum(a) = 1.
/// Falls back to uniform weights (flagged via the bool) when C is
/// singular even after ridge regularization.
struct WeightSolution {
  linalg::Vector weights;
  bool used_fallback = false;
};
WeightSolution MinimumVarianceWeights(const linalg::Matrix& covariance,
                                      double ridge);

/// \brief Full Step 3: covariance, weights, combined estimate.
Result<CombinedEstimate> CombineTriples(
    const std::vector<TripleEstimate>& triples,
    const data::OverlapIndex& overlap, const BinaryOptions& options);

}  // namespace crowd::core

#endif  // CROWD_CORE_TRIPLE_COMBINER_H_
