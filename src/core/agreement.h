// Agreement statistics between workers: the q_ij estimates with their
// co-attempt counts, plus the clamping policy for agreement rates near
// the 1/2 singularity of the triangulation formula.
//
// The paper's model assumes non-malicious workers (p_i < 1/2), so true
// agreement rates exceed 1/2; sample fluctuation can still push an
// estimate to or below 1/2, where f has a singularity (Section III-E2).
// We clamp estimates to 0.5 + margin: the point estimate becomes ~1/2
// (the worst admissible worker) and the Lemma 2 derivatives blow up,
// inflating the deviation so that the affected triple is automatically
// down-weighted by the Lemma 5 optimal weights.

#ifndef CROWD_CORE_AGREEMENT_H_
#define CROWD_CORE_AGREEMENT_H_

#include "data/overlap_index.h"
#include "util/result.h"

namespace crowd::core {

/// \brief One pair's agreement summary.
struct PairAgreement {
  data::WorkerId a = 0;
  data::WorkerId b = 0;
  /// c_ab: tasks attempted by both.
  size_t common = 0;
  /// Raw estimate (agreements / common), before clamping.
  double q_raw = 0.0;
  /// Estimate clamped into (0.5, 1].
  double q = 0.0;
  bool clamped = false;
};

/// \brief Computes the agreement summary for a pair; fails with
/// InsufficientData when the workers share no task.
Result<PairAgreement> ComputePairAgreement(
    const data::OverlapIndex& overlap, data::WorkerId a, data::WorkerId b,
    double min_agreement_margin);

}  // namespace crowd::core

#endif  // CROWD_CORE_AGREEMENT_H_
