// Step 1 of Algorithm A2: splitting the peers of the evaluated worker
// into pairs (Section III-C1). The greedy strategy pairs peers with
// large task overlap first — because the Lemma 5 weights can emphasize
// good triples, a few excellent triples beat many mediocre ones.

#ifndef CROWD_CORE_TRIPLE_SELECTION_H_
#define CROWD_CORE_TRIPLE_SELECTION_H_

#include <utility>
#include <vector>

#include "data/overlap_index.h"
#include "util/result.h"

namespace crowd::core {

using WorkerPair = std::pair<data::WorkerId, data::WorkerId>;

/// \brief Greedy pairing for evaluating `target` (Section III-C1):
/// peers are sorted by descending overlap with `target`; the head of
/// the list is paired with the first remaining peer that shares at
/// least one task with both `target` and the head. Peers that cannot
/// be paired are dropped. Returns the (possibly empty) pair list.
std::vector<WorkerPair> GreedyPairs(const data::OverlapIndex& overlap,
                                    data::WorkerId target);

/// \brief Baseline strategy for the ablation bench: peers are paired
/// in the order produced by a deterministic shuffle keyed on `seed`,
/// subject to the same validity constraint (each pair member shares a
/// task with `target` and with its partner).
std::vector<WorkerPair> RandomPairs(const data::OverlapIndex& overlap,
                                    data::WorkerId target, uint64_t seed);

}  // namespace crowd::core

#endif  // CROWD_CORE_TRIPLE_SELECTION_H_
