// Incremental worker evaluation — the extension the paper's conclusion
// describes: "our methods ... can be easily modified to be
// incremental, to keep efficiently updating worker error rates as more
// tasks get done."
//
// IncrementalEvaluator owns the growing response set and keeps the
// pairwise agreement statistics up to date in O(m) per response
// (instead of the O(m^2 n) rebuild a batch evaluation starts with).
// Assessments are computed on demand from the current statistics and
// memoized; a new response invalidates only the workers whose
// evaluation can actually observe the changed statistics (see
// MarkTaskDirty), tracked by a per-worker dirty epoch.

#ifndef CROWD_CORE_INCREMENTAL_H_
#define CROWD_CORE_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/m_worker.h"
#include "core/types.h"
#include "data/overlap_index.h"
#include "data/response_matrix.h"
#include "util/result.h"

namespace crowd::core {

/// \brief Streaming evaluation over a fixed worker/task universe.
class IncrementalEvaluator {
 public:
  /// A fixed pool of `num_workers` workers over `num_tasks` binary
  /// tasks (responses may arrive for any cell, in any order).
  IncrementalEvaluator(size_t num_workers, size_t num_tasks,
                       BinaryOptions options = {});

  // Non-copyable/movable: the internal overlap index refers to the
  // owned response matrix.
  IncrementalEvaluator(const IncrementalEvaluator&) = delete;
  IncrementalEvaluator& operator=(const IncrementalEvaluator&) = delete;

  /// Records worker `w`'s response to task `t` (overwriting any
  /// previous response). O(m). Untrusted input is fully validated
  /// before any state changes: an out-of-range worker/task id or a
  /// response outside [0, arity) returns Status::Invalid naming the
  /// offending value, and the evaluator is left untouched.
  Status AddResponse(data::WorkerId w, data::TaskId t,
                     data::Response response);

  /// Number of responses recorded so far.
  size_t TotalResponses() const { return responses_.TotalResponses(); }

  const data::ResponseMatrix& responses() const { return responses_; }

  /// Current agreement statistics (kept incrementally).
  const data::OverlapIndex& overlap() const { return overlap_; }

  /// \brief Evaluates one worker on the data so far. Returns the
  /// memoized assessment when no statistic relevant to the worker
  /// changed since the last call.
  Result<WorkerAssessment> Evaluate(data::WorkerId worker);

  /// \brief Evaluates all workers (memoized per worker). Stale workers
  /// are re-evaluated in parallel when `options.num_threads != 1`; the
  /// result is bit-identical for every thread count.
  MWorkerResult EvaluateAll();

  /// \brief Workers whose cached assessment is stale (or missing).
  size_t DirtyWorkerCount() const;

  /// \brief Whether `worker`'s memoized assessment is fresh, i.e. a
  /// subsequent Evaluate would be a pure cache hit. False for
  /// out-of-range ids.
  bool IsCached(data::WorkerId worker) const {
    return worker < cache_.size() && !IsStale(worker);
  }

 private:
  void MarkTaskDirty(data::TaskId t, data::WorkerId responder);

  /// Re-evaluates `worker` if its cache entry is stale or missing and
  /// returns the (now fresh) cached entry. Callers copy out of the
  /// returned reference; the cache itself is never moved from.
  const Result<WorkerAssessment>& EnsureEvaluated(data::WorkerId worker);

  bool IsStale(data::WorkerId worker) const {
    return !cache_[worker].has_value() ||
           cached_epoch_[worker] != dirty_epoch_[worker];
  }

  BinaryOptions options_;
  data::ResponseMatrix responses_;
  data::OverlapIndex overlap_;

  // Memoization: a worker's cache entry is valid while its
  // cached_epoch matches its dirty_epoch. A response by worker w to
  // task t only changes statistics of pairs/triples joining w with
  // co-attempters of t, so MarkTaskDirty invalidates the responder,
  // the co-attempters, and the workers that can read one of those
  // changed pair statistics through their peers — not every worker
  // that merely shares some task with w.
  std::vector<uint64_t> dirty_epoch_;
  std::vector<uint64_t> cached_epoch_;
  std::vector<std::optional<Result<WorkerAssessment>>> cache_;
  uint64_t epoch_counter_ = 1;
};

}  // namespace crowd::core

#endif  // CROWD_CORE_INCREMENTAL_H_
