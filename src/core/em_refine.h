// Spectral + EM refinement (extension): the spectral ProbEstimate is a
// consistent but noise-sensitive point estimator, especially at higher
// arity where the R_{3,2}^{-1} and rotation-recovery steps amplify
// sampling error. Running a few Dawid–Skene EM iterations *seeded by
// the spectral estimate* keeps its identifiability (no label-switching
// — the spectral init pins the labeling) while substantially reducing
// point error. This mirrors the standard "spectral initialization +
// EM" recipe from the later literature and is benchmarked against the
// pure spectral estimator in bench/ablation_kary_refine.
//
// The EM here runs over the *counts tensor*, not per task: a task's
// posterior depends only on its response profile (a, b, c), so each of
// the (k+1)^3 cells is processed once per iteration regardless of n.

#ifndef CROWD_CORE_EM_REFINE_H_
#define CROWD_CORE_EM_REFINE_H_

#include <array>

#include "core/counts_tensor.h"
#include "core/prob_estimate.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::core {

/// Options for the EM refinement.
struct EmRefineOptions {
  int max_iterations = 50;
  /// Stop when the largest parameter change falls below this.
  double tolerance = 1e-8;
  /// Probabilities are floored at this value (and rows renormalized)
  /// to keep the likelihood finite.
  double probability_floor = 1e-9;
};

/// \brief The refined model.
struct EmRefineResult {
  /// Refined response-probability matrices for the three workers.
  std::array<linalg::Matrix, 3> p;
  /// Refined selectivity (prior over true responses).
  linalg::Vector selectivity;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// \brief Runs EM on the counts tensor from an explicit initialization
/// (response matrices clamped/renormalized internally).
Result<EmRefineResult> EmRefineFromCounts(
    const CountsTensor& counts, const std::array<linalg::Matrix, 3>& init_p,
    const linalg::Vector& init_selectivity,
    const EmRefineOptions& options = {});

/// \brief Convenience pipeline: spectral ProbEstimate for the
/// initialization, then EM refinement.
Result<EmRefineResult> SpectralThenEm(
    const CountsTensor& counts,
    const ProbEstimateOptions& spectral_options = {},
    const EmRefineOptions& em_options = {});

}  // namespace crowd::core

#endif  // CROWD_CORE_EM_REFINE_H_
