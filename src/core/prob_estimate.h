// The ProbEstimate routine of Algorithm A3: a spectral point estimate
// of the worker response-probability matrices from the counts tensor.
//
//   R_{i1,i2} = P_{i1}^T S_D P_{i2}                       (Lemma 6)
//   R_{1,2} R_{3,2}^{-1} R_{3,1} = (S^{1/2} P_1)^T (S^{1/2} P_1)
//                                                          (Lemma 7)
// so the principal square root of that product recovers S^{1/2} P_1 up
// to an orthogonal rotation U, which is in turn recovered from the
// eigenvectors of the conditional response-frequency matrices
// (Lemma 8), one per conditioning response j3 of worker 3; the final
// estimate averages over j3.

#ifndef CROWD_CORE_PROB_ESTIMATE_H_
#define CROWD_CORE_PROB_ESTIMATE_H_

#include "core/counts_tensor.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::core {

/// Options for ProbEstimate.
struct ProbEstimateOptions {
  /// When the general eigensolver rejects R12 R32^{-1} R31 (complex
  /// eigenvalues from sampling noise), retry on the symmetrized
  /// matrix (M + M^T)/2 — valid because M is symmetric in expectation.
  bool allow_symmetrize_fallback = true;
  /// Conditioning responses j3 backed by fewer tasks than this are
  /// skipped in the rotation-recovery average.
  double min_conditional_count = 1.0;
  /// A conditional slice whose eigenvalue spectrum has a consecutive
  /// gap below this fraction of the spectral range is skipped: the
  /// slice's eigenvalues are worker 3's response probabilities
  /// P3(z, j3), and repeated values (common — e.g. two classes the
  /// worker never confuses with j3 both give 0) make the eigenvectors
  /// of that slice arbitrary within the degenerate subspace. When
  /// every slice is degenerate, a generic linear combination of slices
  /// is used instead (its spectrum is simple for generic weights).
  double min_eigengap_ratio = 0.05;
};

/// \brief The spectral point estimate.
struct ProbEstimateResult {
  /// Estimates of S^{1/2} P_i (k x k), i = 1, 2, 3.
  linalg::Matrix v1;
  linalg::Matrix v2;
  linalg::Matrix v3;
  /// How many conditioning responses contributed to the rotation
  /// average (at most k; fewer when some j3 were skipped).
  int rotations_used = 0;

  const linalg::Matrix& v(int worker_index) const {
    CROWD_CHECK(worker_index >= 0 && worker_index < 3);
    return worker_index == 0 ? v1 : (worker_index == 1 ? v2 : v3);
  }
};

/// \brief Runs ProbEstimate on a counts tensor. Fails with
/// InsufficientData when a worker pair shares no tasks and with
/// NumericalError when the spectral steps degenerate (singular
/// response-frequency matrix, complex spectrum, no usable rotation).
Result<ProbEstimateResult> ProbEstimate(
    const CountsTensor& counts, const ProbEstimateOptions& options = {});

/// \brief The response-frequency matrices of Step 2 (exposed for
/// tests): R12, R23, R31 with R_{i1,i2}(j1,j2) = fraction of tasks,
/// among those attempted by both workers, where wi1 answered j1 and
/// wi2 answered j2.
struct ResponseFrequencies {
  linalg::Matrix r12;
  linalg::Matrix r23;
  linalg::Matrix r31;
};
Result<ResponseFrequencies> ComputeResponseFrequencies(
    const CountsTensor& counts);

}  // namespace crowd::core

#endif  // CROWD_CORE_PROB_ESTIMATE_H_
