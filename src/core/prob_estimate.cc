#include "core/prob_estimate.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix_functions.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace crowd::core {

namespace {

/// Counts an estimator event on the named counter (no-op until
/// EnableMetrics). Names are registered lazily per call site.
void CountEvent(const char* name, const char* help, uint64_t delta = 1) {
  if (obs::Registry* r = obs::MetricsRegistry()) {
    r->GetCounter(name, help)->Increment(delta);
  }
}

// Rows of S^{1/2} P_i have positive sums (= sqrt(S_r)); eigenvector
// sign ambiguity can negate whole rows, so flip any negative-sum row.
void FixRowSigns(linalg::Matrix* v) {
  for (size_t r = 0; r < v->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < v->cols(); ++c) sum += (*v)(r, c);
    if (sum < 0.0) {
      for (size_t c = 0; c < v->cols(); ++c) (*v)(r, c) = -(*v)(r, c);
    }
  }
}

// Step 6.d of Algorithm A3: rows arrive in the (arbitrary) eigenvalue
// order; the diagonal-dominance property of response-probability
// matrices (P(j,j) largest in row j) pins each row to its true
// position. Repeated passes of the paper's swap rule, capped for
// safety against oscillation.
void FixRowOrder(linalg::Matrix* v) {
  const size_t k = v->rows();
  for (size_t pass = 0; pass < k; ++pass) {
    bool changed = false;
    for (size_t j = 0; j < k; ++j) {
      size_t best = 0;
      for (size_t c = 1; c < k; ++c) {
        if ((*v)(j, c) > (*v)(j, best)) best = c;
      }
      if (best != j) {
        v->SwapRows(j, best);
        changed = true;
      }
    }
    if (!changed) break;
  }
}

Result<linalg::Matrix> SpectralSquareRoot(
    const linalg::Matrix& m, const ProbEstimateOptions& options) {
  auto direct = linalg::PrincipalSqrt(m);
  if (direct.ok() || !options.allow_symmetrize_fallback) return direct;
  // M is symmetric in expectation (Lemma 7); use the symmetrized
  // sample version when noise produced a complex spectrum.
  linalg::Matrix sym = 0.5 * (m + m.Transposed());
  auto fallback = linalg::SymmetricSqrt(sym);
  if (!fallback.ok()) {
    return direct.status().WithContext(
        "principal square root failed and symmetrized fallback also "
        "failed (" +
        fallback.status().ToString() + ")");
  }
  return fallback;
}

}  // namespace

Result<ResponseFrequencies> ComputeResponseFrequencies(
    const CountsTensor& counts) {
  const int k = counts.arity();
  ResponseFrequencies out{linalg::Matrix(k, k), linalg::Matrix(k, k),
                          linalg::Matrix(k, k)};
  const double d12 = counts.PairAttemptTotal(1, 2);
  const double d23 = counts.PairAttemptTotal(2, 3);
  const double d31 = counts.PairAttemptTotal(3, 1);
  if (d12 <= 0.0 || d23 <= 0.0 || d31 <= 0.0) {
    return Status::InsufficientData(StrFormat(
        "a worker pair shares no tasks (n12=%g, n23=%g, n31=%g)", d12,
        d23, d31));
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      double sum12 = 0.0;
      double sum23 = 0.0;
      double sum31 = 0.0;
      for (int other = 0; other <= k; ++other) {
        sum12 += counts.at(i + 1, j + 1, other);   // w1=i, w2=j.
        sum23 += counts.at(other, i + 1, j + 1);   // w2=i, w3=j.
        sum31 += counts.at(j + 1, other, i + 1);   // w3=i, w1=j.
      }
      out.r12(i, j) = sum12 / d12;
      out.r23(i, j) = sum23 / d23;
      out.r31(i, j) = sum31 / d31;
    }
  }
  return out;
}

Result<ProbEstimateResult> ProbEstimate(const CountsTensor& counts,
                                        const ProbEstimateOptions& options) {
  CROWD_SPAN("core.prob_estimate");
  CountEvent("crowdeval_core_probestimate_runs_total",
             "spectral ProbEstimate invocations");
  const int k = counts.arity();
  CROWD_ASSIGN_OR_RETURN(ResponseFrequencies freq,
                         ComputeResponseFrequencies(counts));
  const linalg::Matrix r32 = freq.r23.Transposed();
  const linalg::Matrix r13 = freq.r31.Transposed();

  // Step 3: M = R12 R32^{-1} R31 = (S^{1/2} P1)^T (S^{1/2} P1).
  auto r32_inv = linalg::Inverse(r32);
  if (!r32_inv.ok()) {
    return r32_inv.status().WithContext(
        "R_{3,2} is singular; the spectral method needs invertible "
        "response-frequency matrices (e.g. no response class may be "
        "empty)");
  }
  const linalg::Matrix m = freq.r12 * (*r32_inv) * freq.r31;

  // Step 4: U1 = principal square root of M; U2, U3 from Lemma 6.
  CROWD_ASSIGN_OR_RETURN(linalg::Matrix u1, SpectralSquareRoot(m, options));
  auto u1t_inv = linalg::Inverse(u1.Transposed());
  if (!u1t_inv.ok()) {
    return u1t_inv.status().WithContext("U1^T is singular");
  }
  const linalg::Matrix u2 = (*u1t_inv) * freq.r12;
  const linalg::Matrix u3 = (*u1t_inv) * r13;
  auto u2_inv = linalg::Inverse(u2);
  if (!u2_inv.ok()) {
    return u2_inv.status().WithContext("U2 is singular");
  }

  // Steps 5-6: recover the rotation from each conditional response-
  // frequency matrix and average the resulting V1 estimates.
  //
  // G = (U1^T)^{-1} R_{1,2|3=j3} U2^{-1} = U^T W U  (Lemma 8), so the
  // eigenvectors of G are the rows of the sought rotation U — provided
  // the slice's spectrum (worker 3's response probabilities for j3) is
  // simple; degenerate slices are skipped, and if none survives, a
  // generic linear combination of slices (simple spectrum for generic
  // weights) recovers the same rotation.
  auto try_slice = [&](const linalg::Matrix& r_cond,
                       double eigengap_ratio)
      -> std::optional<linalg::Matrix> {
    const linalg::Matrix g = (*u1t_inv) * r_cond * (*u2_inv);
    auto eig = linalg::EigenGeneralReal(g);
    if (!eig.ok()) return std::nullopt;
    // Eigengap check: values are sorted descending.
    double range = eig->values.front() - eig->values.back();
    double min_gap = range;
    for (size_t i = 0; i + 1 < eig->values.size(); ++i) {
      min_gap = std::min(min_gap, eig->values[i] - eig->values[i + 1]);
    }
    if (!(range > 1e-12) || min_gap < eigengap_ratio * range) {
      return std::nullopt;
    }
    auto u_hat_inv = linalg::Inverse(eig->vectors);
    if (!u_hat_inv.ok()) return std::nullopt;
    linalg::Matrix v1_slice = (*u_hat_inv) * u1;
    FixRowSigns(&v1_slice);
    FixRowOrder(&v1_slice);
    return v1_slice;
  };

  // The per-j3 conditional response-frequency matrices.
  std::vector<linalg::Matrix> conditionals;
  for (int j3 = 1; j3 <= k; ++j3) {
    double n_j3 = 0.0;
    for (int a = 1; a <= k; ++a) {
      for (int b = 1; b <= k; ++b) n_j3 += counts.at(a, b, j3);
    }
    if (n_j3 < options.min_conditional_count) continue;
    linalg::Matrix r_cond(k, k);
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        r_cond(a, b) = counts.at(a + 1, b + 1, j3) / n_j3;
      }
    }
    conditionals.push_back(std::move(r_cond));
  }
  if (conditionals.empty()) {
    return Status::InsufficientData(
        "no conditioning response of worker 3 is backed by enough tasks");
  }

  ProbEstimateResult out;
  out.v1 = linalg::Matrix(k, k);
  int used = 0;
  for (const auto& r_cond : conditionals) {
    auto v1_slice = try_slice(r_cond, options.min_eigengap_ratio);
    if (!v1_slice.has_value()) {
      CountEvent("crowdeval_core_probestimate_slices_skipped_total",
                 "conditional slices skipped as spectrally degenerate");
      continue;
    }
    out.v1 += *v1_slice;
    ++used;
  }
  if (used == 0) {
    CountEvent("crowdeval_core_probestimate_mixed_fallback_total",
               "runs that resorted to the mixed-slice fallback");
    // Mixed-slice fallback: sum_j theta_j R_cond_j has eigenvalues
    // sum_j theta_j P3(z, j) — distinct for generic theta even when
    // every individual slice is degenerate. Try a few deterministic
    // weight sequences; gate on a fixed modest eigengap (the fallback
    // exists precisely for when the configured gate rejects all
    // slices).
    const double fallback_ratio =
        std::min(options.min_eigengap_ratio, 0.02);
    for (int attempt = 0; attempt < 4 && used == 0; ++attempt) {
      linalg::Matrix mixed(k, k);
      for (size_t j = 0; j < conditionals.size(); ++j) {
        double phase = 0.6180339887498949 *
                       static_cast<double>(j + 1) *
                       static_cast<double>(attempt + 1);
        double theta = 0.5 + (phase - std::floor(phase));
        mixed += theta * conditionals[j];
      }
      auto v1_slice = try_slice(mixed, fallback_ratio);
      if (v1_slice.has_value()) {
        out.v1 += *v1_slice;
        used = 1;
      }
    }
  }
  if (used == 0) {
    CountEvent("crowdeval_core_probestimate_failures_total",
               "runs where no usable rotation was recovered");
    return Status::NumericalError(
        "no conditioning response of worker 3 yielded a usable rotation "
        "(all eigen-decompositions degenerate, mixed-slice fallback "
        "included)");
  }
  out.v1 *= 1.0 / static_cast<double>(used);
  out.rotations_used = used;

  // Step 7: V2 = (V1^T)^{-1} R12, V3 = (V1^T)^{-1} R13.
  auto v1t_inv = linalg::Inverse(out.v1.Transposed());
  if (!v1t_inv.ok()) {
    return v1t_inv.status().WithContext("recovered V1 is singular");
  }
  out.v2 = (*v1t_inv) * freq.r12;
  out.v3 = (*v1t_inv) * r13;
  return out;
}

}  // namespace crowd::core
