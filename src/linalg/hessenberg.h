// Householder reduction of a general square matrix to upper Hessenberg
// form, the first stage of the general eigenvalue computation.

#ifndef CROWD_LINALG_HESSENBERG_H_
#define CROWD_LINALG_HESSENBERG_H_

#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::linalg {

/// \brief A = Q H Q^T with H upper Hessenberg and Q orthogonal.
struct HessenbergForm {
  Matrix h;
  Matrix q;
};

/// \brief Reduces `a` to Hessenberg form via Householder reflections,
/// accumulating the orthogonal transform.
Result<HessenbergForm> ReduceToHessenberg(const Matrix& a);

/// \brief True when all entries below the first subdiagonal vanish
/// (within `tol` relative to the matrix scale).
bool IsUpperHessenberg(const Matrix& a, double tol = 1e-12);

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_HESSENBERG_H_
