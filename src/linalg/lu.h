// LU decomposition with partial pivoting, plus the solvers, inverse and
// determinant built on top of it. Used by the optimal-weight step
// (Lemma 5: C^{-1} 1), the spectral k-ary method (R_{3,2}^{-1}) and the
// eigenvector inverse-iteration step.

#ifndef CROWD_LINALG_LU_H_
#define CROWD_LINALG_LU_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::linalg {

/// \brief PA = LU factorization of a square matrix (Doolittle form, L
/// unit lower-triangular), stored packed in a single matrix.
class LuDecomposition {
 public:
  /// Factorizes `a`; fails with NumericalError when the matrix is
  /// singular to working precision (pivot below `pivot_tol`).
  static Result<LuDecomposition> Compute(const Matrix& a,
                                         double pivot_tol = 1e-13);

  /// Solves A x = b.
  Result<Vector> Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Result<Matrix> Solve(const Matrix& b) const;

  /// A^{-1}, by solving against the identity.
  Result<Matrix> Inverse() const;

  /// det(A), including the permutation sign.
  double Determinant() const;

  size_t size() const { return lu_.rows(); }

  /// An estimate of the reciprocal condition number based on pivot
  /// magnitudes (cheap, order-of-magnitude only).
  double MinAbsPivot() const;

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> perm, int perm_sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(perm_sign) {}

  Matrix lu_;                 // L below diagonal (unit), U on/above.
  std::vector<size_t> perm_;  // Row permutation: row i of PA is row perm_[i] of A.
  int perm_sign_ = 1;
};

/// \brief Convenience wrapper: x = A^{-1} b.
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// \brief Convenience wrapper: A^{-1}.
Result<Matrix> Inverse(const Matrix& a);

/// \brief Convenience wrapper: det(A).
Result<double> Determinant(const Matrix& a);

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_LU_H_
