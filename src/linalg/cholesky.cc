#include "linalg/cholesky.h"

#include <cmath>

#include "util/string_util.h"

namespace crowd::linalg {

Result<CholeskyDecomposition> CholeskyDecomposition::Compute(
    const Matrix& a, double pivot_tol) {
  if (!a.IsSquare()) {
    return Status::Invalid("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  if (n == 0) return Status::Invalid("Cholesky of an empty matrix");
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::Invalid("Cholesky requires a symmetric matrix");
  }

  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > pivot_tol)) {
      return Status::NumericalError(StrFormat(
          "Cholesky: matrix is not positive definite (pivot %.3e at "
          "column %zu)",
          diag, j));
    }
    l(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return CholeskyDecomposition(std::move(l));
}

Result<Vector> CholeskyDecomposition::Solve(const Vector& b) const {
  const size_t n = size();
  if (b.size() != n) {
    return Status::Invalid("Cholesky solve: dimension mismatch");
  }
  // Forward: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  // Backward: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * x[k];
    x[i] = sum / l_(i, i);
  }
  return x;
}

Result<Matrix> CholeskyDecomposition::Inverse() const {
  const size_t n = size();
  Matrix inverse(n, n);
  Vector unit(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    unit[j] = 1.0;
    CROWD_ASSIGN_OR_RETURN(Vector column, Solve(unit));
    unit[j] = 0.0;
    for (size_t i = 0; i < n; ++i) inverse(i, j) = column[i];
  }
  return inverse;
}

double CholeskyDecomposition::Determinant() const {
  double det = 1.0;
  for (size_t i = 0; i < size(); ++i) det *= l_(i, i);
  return det * det;
}

bool IsPositiveDefinite(const Matrix& a) {
  return CholeskyDecomposition::Compute(a).ok();
}

}  // namespace crowd::linalg
