#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace crowd::linalg {

namespace {

// Sum of squares of off-diagonal entries.
double OffDiagonalNormSquared(const Matrix& a) {
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return sum;
}

}  // namespace

Result<SymmetricEigen> JacobiEigen(const Matrix& a, double symmetry_tol,
                                   int max_sweeps) {
  if (!a.IsSquare()) {
    return Status::Invalid("JacobiEigen requires a square matrix");
  }
  if (!a.IsSymmetric(symmetry_tol * std::max(1.0, a.MaxAbs()))) {
    return Status::Invalid("JacobiEigen requires a symmetric matrix");
  }
  const size_t n = a.rows();
  // Work on the symmetrized copy so tiny asymmetries cannot drift.
  Matrix s(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      s(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }
  Matrix v = Matrix::Identity(n);

  const double scale = std::max(1.0, s.MaxAbs());
  const double nd = static_cast<double>(n);
  const double stop = (1e-15 * scale) * (1e-15 * scale) * nd * nd;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (OffDiagonalNormSquared(s) <= stop) break;
    if (sweep == max_sweeps - 1) {
      return Status::NumericalError("JacobiEigen did not converge");
    }
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = s(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        double app = s(p, p);
        double aqq = s(q, q);
        // Rotation angle via the stable tangent formula.
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double sn = t * c;

        // Apply the rotation to rows/columns p and q of S.
        for (size_t i = 0; i < n; ++i) {
          double sip = s(i, p);
          double siq = s(i, q);
          s(i, p) = c * sip - sn * siq;
          s(i, q) = sn * sip + c * siq;
        }
        for (size_t j = 0; j < n; ++j) {
          double spj = s(p, j);
          double sqj = s(q, j);
          s(p, j) = c * spj - sn * sqj;
          s(q, j) = sn * spj + c * sqj;
        }
        // Accumulate eigenvectors.
        for (size_t i = 0; i < n; ++i) {
          double vip = v(i, p);
          double viq = v(i, q);
          v(i, p) = c * vip - sn * viq;
          v(i, q) = sn * vip + c * viq;
        }
      }
    }
  }

  SymmetricEigen out;
  out.values = s.Diag();
  out.vectors = Matrix(n, n);

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return out.values[x] > out.values[y];
  });
  Vector sorted_values(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_values[i] = out.values[order[i]];
    for (size_t r = 0; r < n; ++r) {
      out.vectors(r, i) = v(r, order[i]);
    }
  }
  out.values = std::move(sorted_values);
  return out;
}

}  // namespace crowd::linalg
