#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace crowd::linalg {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    CROWD_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::ColumnVector(const Vector& values) {
  Matrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

Matrix Matrix::RowVector(const Vector& values) {
  Matrix m(1, values.size());
  for (size_t j = 0; j < values.size(); ++j) m(0, j) = values[j];
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Vector Matrix::Row(size_t i) const {
  CROWD_CHECK_LT(i, rows_);
  return Vector(data_.begin() + static_cast<long>(i * cols_),
                data_.begin() + static_cast<long>((i + 1) * cols_));
}

Vector Matrix::Column(size_t j) const {
  CROWD_CHECK_LT(j, cols_);
  Vector col(rows_);
  for (size_t i = 0; i < rows_; ++i) col[i] = (*this)(i, j);
  return col;
}

Vector Matrix::Diag() const {
  CROWD_CHECK(IsSquare());
  Vector d(rows_);
  for (size_t i = 0; i < rows_; ++i) d[i] = (*this)(i, i);
  return d;
}

void Matrix::SwapRows(size_t a, size_t b) {
  CROWD_CHECK(a < rows_ && b < rows_);
  if (a == b) return;
  for (size_t j = 0; j < cols_; ++j) {
    std::swap((*this)(a, j), (*this)(b, j));
  }
}

void Matrix::SwapColumns(size_t a, size_t b) {
  CROWD_CHECK(a < cols_ && b < cols_);
  if (a == b) return;
  for (size_t i = 0; i < rows_; ++i) {
    std::swap((*this)(i, a), (*this)(i, b));
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CROWD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CROWD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

double Matrix::FrobeniusNormSquared() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return sum;
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(FrobeniusNormSquared());
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CROWD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return MaxAbsDiff(other) <= tol;
}

bool Matrix::IsSymmetric(double tol) const {
  if (!IsSquare()) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[[" : " [");
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << (*this)(i, j);
    }
    os << (i + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double scalar) {
  a *= scalar;
  return a;
}

Matrix operator*(double scalar, Matrix a) {
  a *= scalar;
  return a;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  CROWD_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  CROWD_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * x[j];
    y[i] = sum;
  }
  return y;
}

double Dot(const Vector& a, const Vector& b) {
  CROWD_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const Vector& a) { return std::sqrt(Dot(a, a)); }

double L1Norm(const Vector& a) {
  double sum = 0.0;
  for (double x : a) sum += std::fabs(x);
  return sum;
}

bool Normalize(Vector* v) {
  CROWD_CHECK(v != nullptr);
  double n = Norm(*v);
  if (n < 1e-300) return false;
  for (double& x : *v) x /= n;
  return true;
}

}  // namespace crowd::linalg
