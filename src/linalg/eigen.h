// General real eigendecomposition A = E D E^{-1} for matrices whose
// spectrum is (numerically) real — the case arising in the spectral
// k-ary method, where the relevant matrices are similar to symmetric
// PSD matrices or to diagonal matrices with entries in [0, 1].
//
// Eigenvalues come from Hessenberg + Francis QR; eigenvectors from
// inverse iteration with a perturbed shift.

#ifndef CROWD_LINALG_EIGEN_H_
#define CROWD_LINALG_EIGEN_H_

#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::linalg {

/// \brief A = vectors * Diagonal(values) * vectors^{-1}; columns of
/// `vectors` are unit-norm eigenvectors ordered like `values`
/// (descending).
struct EigenDecomposition {
  Vector values;
  Matrix vectors;
  /// max_i ||A v_i - lambda_i v_i||, a quality indicator.
  double max_residual = 0.0;
};

/// Options for EigenGeneralReal.
struct EigenOptions {
  /// An eigenvalue with |Im| > complex_tol * max(1, spectral scale) is
  /// treated as genuinely complex and makes the call fail.
  double complex_tol = 1e-6;
  /// Inverse-iteration refinement steps per eigenvector.
  int inverse_iterations = 3;
};

/// \brief Full eigendecomposition of a general real square matrix with
/// real spectrum. Fails with NumericalError on complex eigenvalue
/// pairs (beyond tolerance) or non-convergence.
Result<EigenDecomposition> EigenGeneralReal(const Matrix& a,
                                            const EigenOptions& options = {});

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_EIGEN_H_
