#include "linalg/lu.h"

#include <cmath>

#include "util/string_util.h"

namespace crowd::linalg {

Result<LuDecomposition> LuDecomposition::Compute(const Matrix& a,
                                                 double pivot_tol) {
  if (!a.IsSquare()) {
    return Status::Invalid("LU requires a square matrix");
  }
  const size_t n = a.rows();
  if (n == 0) return Status::Invalid("LU of an empty matrix");

  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  // Scale factors for scaled partial pivoting; improves pivot choice on
  // badly row-scaled matrices (covariance matrices here can have rows
  // spanning several orders of magnitude).
  std::vector<double> scale(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double row_max = 0.0;
    for (size_t j = 0; j < n; ++j) {
      row_max = std::max(row_max, std::fabs(lu(i, j)));
    }
    if (row_max == 0.0) {
      return Status::NumericalError(
          StrFormat("LU: row %zu is identically zero", i));
    }
    scale[i] = 1.0 / row_max;
  }

  for (size_t col = 0; col < n; ++col) {
    // Pick the pivot row.
    size_t pivot_row = col;
    double best = -1.0;
    for (size_t i = col; i < n; ++i) {
      double candidate = scale[i] * std::fabs(lu(i, col));
      if (candidate > best) {
        best = candidate;
        pivot_row = i;
      }
    }
    if (pivot_row != col) {
      lu.SwapRows(pivot_row, col);
      std::swap(perm[pivot_row], perm[col]);
      std::swap(scale[pivot_row], scale[col]);
      sign = -sign;
    }
    double pivot = lu(col, col);
    if (std::fabs(pivot) < pivot_tol) {
      return Status::NumericalError(StrFormat(
          "LU: matrix is singular to working precision (pivot %.3e at "
          "column %zu)",
          pivot, col));
    }
    for (size_t i = col + 1; i < n; ++i) {
      double factor = lu(i, col) / pivot;
      lu(i, col) = factor;
      if (factor == 0.0) continue;
      for (size_t j = col + 1; j < n; ++j) {
        lu(i, j) -= factor * lu(col, j);
      }
    }
  }
  return LuDecomposition(std::move(lu), std::move(perm), sign);
}

Result<Vector> LuDecomposition::Solve(const Vector& b) const {
  const size_t n = size();
  if (b.size() != n) {
    return Status::Invalid("LU solve: dimension mismatch");
  }
  Vector x(n);
  // Forward substitution on L (unit diagonal), applying P to b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution on U.
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = x[i];
    for (size_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

Result<Matrix> LuDecomposition::Solve(const Matrix& b) const {
  if (b.rows() != size()) {
    return Status::Invalid("LU solve: dimension mismatch");
  }
  Matrix x(b.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    CROWD_ASSIGN_OR_RETURN(Vector col, Solve(b.Column(j)));
    for (size_t i = 0; i < b.rows(); ++i) x(i, j) = col[i];
  }
  return x;
}

Result<Matrix> LuDecomposition::Inverse() const {
  return Solve(Matrix::Identity(size()));
}

double LuDecomposition::Determinant() const {
  double det = perm_sign_;
  for (size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

double LuDecomposition::MinAbsPivot() const {
  double best = std::fabs(lu_(0, 0));
  for (size_t i = 1; i < size(); ++i) {
    best = std::min(best, std::fabs(lu_(i, i)));
  }
  return best;
}

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  CROWD_ASSIGN_OR_RETURN(auto lu, LuDecomposition::Compute(a));
  return lu.Solve(b);
}

Result<Matrix> Inverse(const Matrix& a) {
  CROWD_ASSIGN_OR_RETURN(auto lu, LuDecomposition::Compute(a));
  return lu.Inverse();
}

Result<double> Determinant(const Matrix& a) {
  if (!a.IsSquare()) return Status::Invalid("determinant of non-square");
  auto lu = LuDecomposition::Compute(a);
  if (!lu.ok()) {
    // Singular to working precision means determinant ~zero rather than
    // an error.
    if (lu.status().IsNumericalError()) return 0.0;
    return lu.status();
  }
  return lu->Determinant();
}

}  // namespace crowd::linalg
