#include "linalg/matrix_functions.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/lu.h"
#include "util/string_util.h"

namespace crowd::linalg {

namespace {

// Clamp the spectrum to be non-negative; returns an error when a
// strongly negative eigenvalue indicates the input is not PSD-like.
Status ClampSpectrum(Vector* values, const SqrtOptions& options) {
  double max_ev = 0.0;
  for (double v : *values) max_ev = std::max(max_ev, v);
  if (max_ev <= 0.0) {
    return Status::NumericalError(
        "matrix square root: no positive eigenvalue");
  }
  const double floor = options.clamp_floor * max_ev;
  for (double& v : *values) {
    if (v < -options.negative_tol * max_ev) {
      return Status::NumericalError(StrFormat(
          "matrix square root: eigenvalue %.6g is too negative "
          "(max eigenvalue %.6g)",
          v, max_ev));
    }
    v = std::max(v, floor);
  }
  return Status::OK();
}

}  // namespace

Result<Matrix> PrincipalSqrt(const Matrix& a, const SqrtOptions& options) {
  CROWD_ASSIGN_OR_RETURN(auto eig, EigenGeneralReal(a));
  CROWD_RETURN_NOT_OK(ClampSpectrum(&eig.values, options));
  Vector sqrt_values(eig.values.size());
  for (size_t i = 0; i < eig.values.size(); ++i) {
    sqrt_values[i] = std::sqrt(eig.values[i]);
  }
  CROWD_ASSIGN_OR_RETURN(Matrix e_inv, Inverse(eig.vectors));
  return eig.vectors * Matrix::Diagonal(sqrt_values) * e_inv;
}

Result<Matrix> SymmetricSqrt(const Matrix& a, const SqrtOptions& options) {
  CROWD_ASSIGN_OR_RETURN(auto eig, JacobiEigen(a));
  CROWD_RETURN_NOT_OK(ClampSpectrum(&eig.values, options));
  Vector sqrt_values(eig.values.size());
  for (size_t i = 0; i < eig.values.size(); ++i) {
    sqrt_values[i] = std::sqrt(eig.values[i]);
  }
  // V D^{1/2} V^T.
  return eig.vectors * Matrix::Diagonal(sqrt_values) *
         eig.vectors.Transposed();
}

Vector RowSums(const Matrix& a) {
  Vector sums(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) sums[i] += a(i, j);
  }
  return sums;
}

Status NormalizeRowsToSumOne(Matrix* a, double min_sum) {
  CROWD_CHECK(a != nullptr);
  Vector sums = RowSums(*a);
  for (size_t i = 0; i < a->rows(); ++i) {
    if (std::fabs(sums[i]) < min_sum) {
      return Status::NumericalError(
          StrFormat("row %zu sums to %.3e; cannot normalize", i, sums[i]));
    }
    for (size_t j = 0; j < a->cols(); ++j) (*a)(i, j) /= sums[i];
  }
  return Status::OK();
}

void ClampEntries(Matrix* a, double lo, double hi) {
  CROWD_CHECK(a != nullptr);
  for (size_t i = 0; i < a->rows(); ++i) {
    for (size_t j = 0; j < a->cols(); ++j) {
      (*a)(i, j) = std::clamp((*a)(i, j), lo, hi);
    }
  }
}

}  // namespace crowd::linalg
