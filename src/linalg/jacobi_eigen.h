// Symmetric eigensolver: cyclic Jacobi rotations. Unconditionally
// stable for the small symmetric matrices used here (covariance
// matrices, symmetrized spectral-method inputs).

#ifndef CROWD_LINALG_JACOBI_EIGEN_H_
#define CROWD_LINALG_JACOBI_EIGEN_H_

#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::linalg {

/// \brief Eigen-decomposition of a symmetric matrix: A = V D V^T with
/// V orthogonal. Eigenvalues are sorted in descending order and
/// `vectors.Column(i)` is the unit eigenvector for `values[i]`.
struct SymmetricEigen {
  Vector values;
  Matrix vectors;
};

/// \brief Computes the decomposition via cyclic Jacobi sweeps.
///
/// `a` must be symmetric to within `symmetry_tol` (checked); fails with
/// NumericalError if the sweep count exceeds `max_sweeps` (does not
/// happen for n <= ~50).
Result<SymmetricEigen> JacobiEigen(const Matrix& a,
                                   double symmetry_tol = 1e-8,
                                   int max_sweeps = 64);

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_JACOBI_EIGEN_H_
