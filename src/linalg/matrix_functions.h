// Matrix functions built on the eigensolvers: principal square roots
// and small row-stochastic helpers used by the spectral k-ary method.

#ifndef CROWD_LINALG_MATRIX_FUNCTIONS_H_
#define CROWD_LINALG_MATRIX_FUNCTIONS_H_

#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::linalg {

/// Options for the principal square root.
struct SqrtOptions {
  /// Eigenvalues below `clamp_floor * max_eigenvalue` are clamped up to
  /// that value before taking the square root. Sample-noise versions of
  /// theoretically-PSD matrices can have slightly negative eigenvalues;
  /// the clamp keeps the square root real at a documented bias cost.
  double clamp_floor = 1e-10;
  /// When a clamped eigenvalue was more negative than
  /// `-negative_tol * max_eigenvalue`, the matrix is considered not
  /// PSD-like at all and the call fails instead of clamping.
  double negative_tol = 0.5;
};

/// \brief Principal square root S with S*S ~= A, for a general real
/// matrix A that is similar to a symmetric PSD matrix (real
/// non-negative spectrum), e.g. A = R12 * R32^{-1} * R31 = V^T V from
/// Lemma 7 of the paper. Computed as E * D^{1/2} * E^{-1}.
Result<Matrix> PrincipalSqrt(const Matrix& a,
                             const SqrtOptions& options = {});

/// \brief Square root of a symmetric PSD matrix via Jacobi (more
/// accurate than PrincipalSqrt when symmetry is exact).
Result<Matrix> SymmetricSqrt(const Matrix& a,
                             const SqrtOptions& options = {});

/// \brief Per-row sums.
Vector RowSums(const Matrix& a);

/// \brief Scales each row to sum to one. Rows with |sum| < `min_sum`
/// produce an error (a response-probability row cannot be recovered).
Status NormalizeRowsToSumOne(Matrix* a, double min_sum = 1e-9);

/// \brief Clamps every entry into [lo, hi] in place.
void ClampEntries(Matrix* a, double lo, double hi);

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_MATRIX_FUNCTIONS_H_
