// Eigenvalues of a real upper Hessenberg matrix via the implicit
// double-shift (Francis) QR iteration with deflation and exceptional
// shifts. Eigenvalues are returned as complex numbers; conjugate pairs
// appear adjacently.

#ifndef CROWD_LINALG_FRANCIS_QR_H_
#define CROWD_LINALG_FRANCIS_QR_H_

#include <complex>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::linalg {

/// \brief Computes all eigenvalues of the upper Hessenberg matrix `h`.
///
/// Fails with NumericalError if any eigenvalue needs more than
/// `max_iterations` QR steps (practically unreachable for the small
/// matrices in this library).
Result<std::vector<std::complex<double>>> HessenbergEigenvalues(
    Matrix h, int max_iterations = 60);

/// \brief Eigenvalues of a general square matrix: Hessenberg reduction
/// followed by Francis QR.
Result<std::vector<std::complex<double>>> GeneralEigenvalues(
    const Matrix& a);

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_FRANCIS_QR_H_
