#include "linalg/francis_qr.h"

#include <cmath>

#include "linalg/hessenberg.h"
#include "util/string_util.h"

namespace crowd::linalg {

namespace {

inline double SignLike(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

}  // namespace

// The structure of this routine follows the classical `hqr` algorithm
// (Wilkinson & Reinsch; Press et al.), rewritten with 0-based indexing.
// `h` is consumed/destroyed.
Result<std::vector<std::complex<double>>> HessenbergEigenvalues(
    Matrix h, int max_iterations) {
  if (!h.IsSquare()) {
    return Status::Invalid("HessenbergEigenvalues requires a square matrix");
  }
  const int n = static_cast<int>(h.rows());
  if (n == 0) return std::vector<std::complex<double>>{};

  std::vector<std::complex<double>> eigenvalues(n);

  // Overall matrix norm used in the deflation criteria.
  double anorm = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(i - 1, 0); j < n; ++j) {
      anorm += std::fabs(h(i, j));
    }
  }
  if (anorm == 0.0) {
    // The zero matrix: all eigenvalues zero.
    return eigenvalues;
  }

  int nn = n - 1;  // Index of the active trailing eigenvalue.
  double t = 0.0;  // Accumulated exceptional shifts.
  const double eps = 1e-14;

  while (nn >= 0) {
    int its = 0;
    int l;
    do {
      // Look for a single small subdiagonal element to split the matrix.
      for (l = nn; l >= 1; --l) {
        double s = std::fabs(h(l - 1, l - 1)) + std::fabs(h(l, l));
        if (s == 0.0) s = anorm;
        if (std::fabs(h(l, l - 1)) <= eps * s) {
          h(l, l - 1) = 0.0;
          break;
        }
      }
      double x = h(nn, nn);
      if (l == nn) {
        // One real eigenvalue found.
        eigenvalues[nn] = std::complex<double>(x + t, 0.0);
        --nn;
      } else {
        double y = h(nn - 1, nn - 1);
        double w = h(nn, nn - 1) * h(nn - 1, nn);
        if (l == nn - 1) {
          // A 2x2 block: two eigenvalues, real or conjugate pair.
          double p = 0.5 * (y - x);
          double q = p * p + w;
          double z = std::sqrt(std::fabs(q));
          x += t;
          if (q >= 0.0) {
            z = p + SignLike(z, p);
            eigenvalues[nn - 1] = eigenvalues[nn] =
                std::complex<double>(x + z, 0.0);
            if (z != 0.0) {
              eigenvalues[nn] = std::complex<double>(x - w / z, 0.0);
            }
          } else {
            eigenvalues[nn] = std::complex<double>(x + p, z);
            eigenvalues[nn - 1] = std::conj(eigenvalues[nn]);
          }
          nn -= 2;
        } else {
          // No convergence yet; do a QR step.
          if (its == max_iterations) {
            return Status::NumericalError(StrFormat(
                "Francis QR: eigenvalue %d did not converge in %d "
                "iterations",
                nn, max_iterations));
          }
          double p = 0.0, q = 0.0, z = 0.0, r = 0.0, s = 0.0;
          if (its == 10 || its == 20) {
            // Exceptional shift to break symmetric stalls.
            t += x;
            for (int i = 0; i <= nn; ++i) h(i, i) -= x;
            s = std::fabs(h(nn, nn - 1)) + std::fabs(h(nn - 1, nn - 2));
            y = x = 0.75 * s;
            w = -0.4375 * s * s;
          }
          ++its;
          // Form the first column of (H - a I)(H - b I) implicitly and
          // look for two consecutive small subdiagonals.
          int m;
          for (m = nn - 2; m >= l; --m) {
            z = h(m, m);
            r = x - z;
            s = y - z;
            p = (r * s - w) / h(m + 1, m) + h(m, m + 1);
            q = h(m + 1, m + 1) - z - r - s;
            r = h(m + 2, m + 1);
            s = std::fabs(p) + std::fabs(q) + std::fabs(r);
            p /= s;
            q /= s;
            r /= s;
            if (m == l) break;
            double u =
                std::fabs(h(m, m - 1)) * (std::fabs(q) + std::fabs(r));
            double v = std::fabs(p) * (std::fabs(h(m - 1, m - 1)) +
                                       std::fabs(z) +
                                       std::fabs(h(m + 1, m + 1)));
            if (u <= eps * v) break;
          }
          for (int i = m + 2; i <= nn; ++i) {
            h(i, i - 2) = 0.0;
            if (i > m + 2) h(i, i - 3) = 0.0;
          }
          // The double QR sweep over rows/columns l..nn.
          for (int k = m; k <= nn - 1; ++k) {
            if (k != m) {
              p = h(k, k - 1);
              q = h(k + 1, k - 1);
              r = (k + 2 <= nn) ? h(k + 2, k - 1) : 0.0;
              x = std::fabs(p) + std::fabs(q) + std::fabs(r);
              if (x != 0.0) {
                p /= x;
                q /= x;
                r /= x;
              }
            }
            s = SignLike(std::sqrt(p * p + q * q + r * r), p);
            if (s == 0.0) continue;
            if (k == m) {
              if (l != m) h(k, k - 1) = -h(k, k - 1);
            } else {
              h(k, k - 1) = -s * x;
            }
            p += s;
            x = p / s;
            y = q / s;
            z = r / s;
            q /= p;
            r /= p;
            // Row modification.
            for (int j = k; j <= nn; ++j) {
              p = h(k, j) + q * h(k + 1, j);
              if (k + 2 <= nn) {
                p += r * h(k + 2, j);
                h(k + 2, j) -= p * z;
              }
              h(k + 1, j) -= p * y;
              h(k, j) -= p * x;
            }
            int mmin = (nn < k + 3) ? nn : k + 3;
            // Column modification.
            for (int i = l; i <= mmin; ++i) {
              p = x * h(i, k) + y * h(i, k + 1);
              if (k + 2 <= nn) {
                p += z * h(i, k + 2);
                h(i, k + 2) -= p * r;
              }
              h(i, k + 1) -= p * q;
              h(i, k) -= p;
            }
          }
        }
      }
    } while (nn >= 0 && l < nn - 1);
  }
  return eigenvalues;
}

Result<std::vector<std::complex<double>>> GeneralEigenvalues(
    const Matrix& a) {
  CROWD_ASSIGN_OR_RETURN(auto hess, ReduceToHessenberg(a));
  return HessenbergEigenvalues(std::move(hess.h));
}

}  // namespace crowd::linalg
