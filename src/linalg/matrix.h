// Dense row-major matrix and vector types used throughout the library.
//
// All matrices in this project are small (k x k response-probability
// matrices with k <= ~10, or l x l triple-covariance matrices with
// l <= ~m/2), so this is a straightforward dense implementation with
// bounds checking in debug builds and no expression templates.

#ifndef CROWD_LINALG_MATRIX_H_
#define CROWD_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/result.h"

namespace crowd::linalg {

using Vector = std::vector<double>;

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;

  /// A rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// From nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);
  /// Square matrix with `diag` on the diagonal.
  static Matrix Diagonal(const Vector& diag);
  /// Column vector (n x 1) from `values`.
  static Matrix ColumnVector(const Vector& values);
  /// Row vector (1 x n) from `values`.
  static Matrix RowVector(const Vector& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool IsSquare() const { return rows_ == cols_; }

  double& operator()(size_t i, size_t j) {
    CROWD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    CROWD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Raw storage (row-major), e.g. for tests.
  const std::vector<double>& data() const { return data_; }

  Matrix Transposed() const;

  /// Extracts row/column i as a vector.
  Vector Row(size_t i) const;
  Vector Column(size_t j) const;
  /// The main diagonal (square matrices).
  Vector Diag() const;

  void SwapRows(size_t a, size_t b);
  void SwapColumns(size_t a, size_t b);

  /// Elementwise operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Sum of squares of all entries, its square root, and the largest
  /// absolute entry.
  double FrobeniusNormSquared() const;
  double FrobeniusNorm() const;
  double MaxAbs() const;

  /// Largest absolute difference against `other` (must match shape).
  double MaxAbsDiff(const Matrix& other) const;

  /// True when shapes match and all entries differ by at most `tol`.
  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const;

  /// Whether |a(i,j) - a(j,i)| <= tol for all entries.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Multi-line human-readable rendering, mostly for debugging/tests.
  std::string ToString(int precision = 6) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double scalar);
Matrix operator*(double scalar, Matrix a);
/// Matrix product; inner dimensions must agree.
Matrix operator*(const Matrix& a, const Matrix& b);
/// Matrix-vector product.
Vector operator*(const Matrix& a, const Vector& x);

/// Dot product of equal-length vectors.
double Dot(const Vector& a, const Vector& b);
/// Euclidean norm.
double Norm(const Vector& a);
/// Sum of absolute values.
double L1Norm(const Vector& a);
/// Scales `v` so that Norm(v) == 1; returns false if v is ~zero.
bool Normalize(Vector* v);

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_MATRIX_H_
