// Cholesky factorization A = L L^T for symmetric positive-definite
// matrices, with solve and inverse. Used by the Lemma 5 weight solver:
// covariance matrices are symmetric and (up to estimation noise) PSD,
// and the factorization doubles as the cheapest PSD test — when it
// fails, the caller knows the plug-in covariance is not PSD and can
// regularize harder or fall back.

#ifndef CROWD_LINALG_CHOLESKY_H_
#define CROWD_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "util/result.h"

namespace crowd::linalg {

/// \brief A = L L^T with L lower-triangular, positive diagonal.
class CholeskyDecomposition {
 public:
  /// Factorizes symmetric positive-definite `a`; fails with
  /// NumericalError when a pivot drops below `pivot_tol` (matrix not
  /// PD to working precision) and InvalidArgument when `a` is not
  /// square/symmetric.
  static Result<CholeskyDecomposition> Compute(const Matrix& a,
                                               double pivot_tol = 1e-300);

  /// Solves A x = b via two triangular solves.
  Result<Vector> Solve(const Vector& b) const;

  /// A^{-1}.
  Result<Matrix> Inverse() const;

  /// det(A) = prod(L_ii)^2.
  double Determinant() const;

  /// The factor L.
  const Matrix& L() const { return l_; }

  size_t size() const { return l_.rows(); }

 private:
  explicit CholeskyDecomposition(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// \brief True when `a` is symmetric positive-definite to working
/// precision (Cholesky succeeds).
bool IsPositiveDefinite(const Matrix& a);

}  // namespace crowd::linalg

#endif  // CROWD_LINALG_CHOLESKY_H_
