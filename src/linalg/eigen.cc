#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/francis_qr.h"
#include "linalg/lu.h"
#include "util/string_util.h"

namespace crowd::linalg {

namespace {

// One inverse-iteration solve: x <- normalize((A - shift I)^{-1} x).
// Returns false when the shifted matrix is singular even after
// perturbation (caller retries with a larger perturbation).
bool InverseIterate(const Matrix& a, double shift, int steps, Vector* x) {
  const size_t n = a.rows();
  Matrix shifted = a;
  for (size_t i = 0; i < n; ++i) shifted(i, i) -= shift;
  auto lu = LuDecomposition::Compute(shifted, /*pivot_tol=*/1e-280);
  if (!lu.ok()) return false;
  for (int step = 0; step < steps; ++step) {
    auto solved = lu->Solve(*x);
    if (!solved.ok()) return false;
    *x = std::move(solved).ValueOrDie();
    if (!Normalize(x)) return false;
  }
  return true;
}

// Deterministic, index-dependent start vector; avoids accidental
// orthogonality to the sought eigenvector.
Vector StartVector(size_t n, size_t which) {
  Vector x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = 1.0 + 0.37 * std::sin(static_cast<double>(i * 131 + which * 17 + 1));
  }
  Normalize(&x);
  return x;
}

}  // namespace

Result<EigenDecomposition> EigenGeneralReal(const Matrix& a,
                                            const EigenOptions& options) {
  if (!a.IsSquare()) {
    return Status::Invalid("EigenGeneralReal requires a square matrix");
  }
  const size_t n = a.rows();
  if (n == 0) return Status::Invalid("EigenGeneralReal of empty matrix");

  CROWD_ASSIGN_OR_RETURN(auto complex_values, GeneralEigenvalues(a));

  double spectral_scale = 1.0;
  for (const auto& ev : complex_values) {
    spectral_scale = std::max(spectral_scale, std::abs(ev));
  }
  Vector values;
  values.reserve(n);
  for (const auto& ev : complex_values) {
    if (std::fabs(ev.imag()) > options.complex_tol * spectral_scale) {
      return Status::NumericalError(StrFormat(
          "EigenGeneralReal: complex eigenvalue %.6g%+.6gi beyond "
          "tolerance",
          ev.real(), ev.imag()));
    }
    values.push_back(ev.real());
  }
  std::sort(values.begin(), values.end(), std::greater<double>());

  EigenDecomposition out;
  out.values = values;
  out.vectors = Matrix(n, n);

  for (size_t idx = 0; idx < n; ++idx) {
    const double lambda = values[idx];
    // Perturb the shift so (A - shift I) is invertible; the inverse
    // power method converges to the nearest eigenvector regardless.
    double delta = 1e-9 * spectral_scale + 1e-12;
    bool converged = false;
    Vector x;
    for (int attempt = 0; attempt < 6 && !converged; ++attempt) {
      x = StartVector(n, idx + static_cast<size_t>(attempt) * 1000);
      converged = InverseIterate(a, lambda + delta,
                                 options.inverse_iterations, &x);
      delta *= 32.0;
    }
    if (!converged) {
      return Status::NumericalError(StrFormat(
          "EigenGeneralReal: inverse iteration failed for eigenvalue "
          "%.6g",
          lambda));
    }
    // Deterministic sign: largest-magnitude component positive.
    size_t arg_max = 0;
    for (size_t i = 1; i < n; ++i) {
      if (std::fabs(x[i]) > std::fabs(x[arg_max])) arg_max = i;
    }
    if (x[arg_max] < 0.0) {
      for (double& xi : x) xi = -xi;
    }
    for (size_t i = 0; i < n; ++i) out.vectors(i, idx) = x[i];

    Vector ax = a * x;
    double residual = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double diff = ax[i] - lambda * x[i];
      residual += diff * diff;
    }
    out.max_residual = std::max(out.max_residual, std::sqrt(residual));
  }
  return out;
}

}  // namespace crowd::linalg
