#include "linalg/hessenberg.h"

#include <cmath>

namespace crowd::linalg {

Result<HessenbergForm> ReduceToHessenberg(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::Invalid("Hessenberg reduction requires a square matrix");
  }
  const size_t n = a.rows();
  HessenbergForm out{a, Matrix::Identity(n)};
  if (n < 3) return out;
  Matrix& h = out.h;
  Matrix& q = out.q;

  for (size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating h(k+2..n-1, k).
    double norm_x = 0.0;
    for (size_t i = k + 1; i < n; ++i) norm_x += h(i, k) * h(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x < 1e-300) continue;

    double alpha = h(k + 1, k) >= 0.0 ? -norm_x : norm_x;
    Vector v(n, 0.0);
    v[k + 1] = h(k + 1, k) - alpha;
    for (size_t i = k + 2; i < n; ++i) v[i] = h(i, k);
    double v_norm_sq = 0.0;
    for (size_t i = k + 1; i < n; ++i) v_norm_sq += v[i] * v[i];
    if (v_norm_sq < 1e-300) continue;
    const double beta = 2.0 / v_norm_sq;

    // H <- P H, P = I - beta v v^T (only rows k+1.. change).
    for (size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k + 1; i < n; ++i) dot += v[i] * h(i, j);
      dot *= beta;
      for (size_t i = k + 1; i < n; ++i) h(i, j) -= dot * v[i];
    }
    // H <- H P.
    for (size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (size_t j = k + 1; j < n; ++j) dot += h(i, j) * v[j];
      dot *= beta;
      for (size_t j = k + 1; j < n; ++j) h(i, j) -= dot * v[j];
    }
    // Q <- Q P (accumulate the similarity transform).
    for (size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (size_t j = k + 1; j < n; ++j) dot += q(i, j) * v[j];
      dot *= beta;
      for (size_t j = k + 1; j < n; ++j) q(i, j) -= dot * v[j];
    }
    // Clean exact zeros below the subdiagonal in column k.
    h(k + 1, k) = alpha;
    for (size_t i = k + 2; i < n; ++i) h(i, k) = 0.0;
  }
  return out;
}

bool IsUpperHessenberg(const Matrix& a, double tol) {
  if (!a.IsSquare()) return false;
  const double scale = std::max(1.0, a.MaxAbs());
  for (size_t i = 2; i < a.rows(); ++i) {
    for (size_t j = 0; j + 1 < i; ++j) {
      if (std::fabs(a(i, j)) > tol * scale) return false;
    }
  }
  return true;
}

}  // namespace crowd::linalg
