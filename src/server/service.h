// The crowdevald serving layer: a thread-safe wrapper around
// IncrementalEvaluator that executes protocol commands, journals every
// accepted response before acknowledging it, snapshots + compacts on
// demand (or every `snapshot_every` responses), and recovers its state
// on startup from the latest valid snapshot plus the journal tail.
//
// Concurrency model: one mutex serializes all commands. RESP is O(m)
// (a matrix store, an overlap update and dirty-epoch marking) so
// concurrent writers from many connections batch naturally between
// evaluations; EVAL_ALL then refreshes all accumulated-stale workers
// in one pass, fanning out over the configured ThreadPool width. This
// is exactly the memoization contract of IncrementalEvaluator, lifted
// behind a socket.
//
// Durability: an acknowledged RESP has been write(2)ed to the journal
// and survives SIGKILL of the daemon (OS page cache); set
// `fsync_each_append` to also survive power loss at a heavy latency
// cost. Recovery sequence (Service::Open with a data_dir):
//   1. newest snapshot whose checksum validates -> response matrix,
//   2. journal records with seq > snapshot.applied_seq replayed in
//      order (a torn tail is truncated, never replayed),
//   3. fresh journal/snapshot files created when the directory is new.

#ifndef CROWD_SERVER_SERVICE_H_
#define CROWD_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/incremental.h"
#include "core/spammer_filter.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "server/journal.h"
#include "server/protocol.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace crowd::server {

/// \brief Service configuration.
struct ServiceOptions {
  /// Worker/task universe for a fresh service. When recovering from a
  /// non-empty data_dir the on-disk dimensions win; non-zero values
  /// here must then match them.
  size_t num_workers = 0;
  size_t num_tasks = 0;
  /// Estimator options (confidence, weights, num_threads, ...).
  core::BinaryOptions binary;
  /// SPAMMERS command options.
  core::SpammerFilterOptions spammer;
  /// Durability directory; empty runs fully in memory (no journal, no
  /// snapshots — SNAPSHOT becomes an error).
  std::string data_dir;
  /// Automatically snapshot + compact after this many accepted
  /// responses since the last snapshot (0 = only on SNAPSHOT).
  uint64_t snapshot_every = 0;
  /// fsync the journal after every append (power-loss durability).
  bool fsync_each_append = false;
  /// When non-empty, SNAPSHOT also dumps the chrome-trace JSON of all
  /// spans captured so far to this path (the daemon additionally dumps
  /// on shutdown). Requires tracing to have been started.
  std::string trace_out;
};

/// \brief Monotonic counters exposed by the STATS command. This is a
/// point-in-time view assembled from the service's metric registry;
/// the registry's lock-free counters are the source of truth.
struct ServiceStats {
  uint64_t responses_ingested = 0;  ///< accepted RESP (incl. overwrites)
  uint64_t responses_noop = 0;      ///< identical re-submissions
  uint64_t responses_rejected = 0;  ///< out-of-range ids/values
  uint64_t eval_cache_hits = 0;     ///< workers served from cache
  uint64_t eval_cache_misses = 0;   ///< workers re-evaluated
  uint64_t eval_all_runs = 0;
  double eval_micros_total = 0.0;   ///< summed EVAL/EVAL_ALL latency
  double last_eval_micros = 0.0;
  uint64_t journal_bytes = 0;
  uint64_t journal_records = 0;     ///< records in the current file
  uint64_t snapshots_written = 0;
  uint64_t snapshot_seq = 0;        ///< seq covered by latest snapshot
  uint64_t recovered_records = 0;   ///< journal tail replayed at Open
  uint64_t recovery_truncated_bytes = 0;  ///< torn tail dropped at Open
};

/// \brief The in-process assessment service (the daemon minus sockets).
class Service {
 public:
  /// Opens the service: recovers from `options.data_dir` when it holds
  /// state, otherwise starts fresh (creating the durability files when
  /// a data_dir is configured).
  static Result<std::unique_ptr<Service>> Open(ServiceOptions options);

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// \brief Executes one protocol line and returns one JSON line
  /// (without trailing newline). Never fails: errors become
  /// `{"ok":false,...}` replies. Sets `*quit` when the command asks to
  /// close the connection.
  std::string ExecuteLine(std::string_view line, bool* quit = nullptr)
      CROWD_EXCLUDES(mu_);

  /// Typed entry points (used by tests and the bench harness; the
  /// protocol handlers above are thin wrappers over these).
  Status Ingest(data::WorkerId worker, data::TaskId task,
                data::Response value) CROWD_EXCLUDES(mu_);
  Result<core::WorkerAssessment> Evaluate(data::WorkerId worker)
      CROWD_EXCLUDES(mu_);
  core::MWorkerResult EvaluateAll() CROWD_EXCLUDES(mu_);
  /// Writes a snapshot, compacts the journal behind it and deletes
  /// superseded snapshots. Returns the covered seq.
  Result<uint64_t> TakeSnapshot() CROWD_EXCLUDES(mu_);

  ServiceStats stats() const;
  /// Seq of the last accepted response (0 before any).
  uint64_t last_seq() const CROWD_EXCLUDES(mu_);
  size_t num_workers() const CROWD_EXCLUDES(mu_);
  size_t num_tasks() const CROWD_EXCLUDES(mu_);

  /// \brief The service's own metric registry. Unlike the process-wide
  /// gate, these series always count (STATS must work without
  /// EnableMetrics), and a per-instance registry keeps concurrently
  /// opened services (tests) from sharing counters. The socket layer
  /// registers its connection series here too.
  obs::Registry& metrics_registry() { return metrics_; }

  /// \brief The METRICS reply body: this service's registry rendered
  /// as Prometheus text, followed by the process-wide registry when
  /// EnableMetrics() is on, terminated by a `# EOF` line.
  std::string MetricsExposition() const;

 private:
  /// Lock-free registry handles for the STATS counters; resolved once
  /// at construction.
  struct Counters {
    obs::Counter* ingested;
    obs::Counter* noop;
    obs::Counter* rejected;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Counter* eval_all_runs;
    obs::HistogramMetric* eval_seconds;
    obs::Counter* snapshots_written;
    obs::Counter* recovered_records;
    obs::Counter* recovery_truncated_bytes;
    obs::Gauge* journal_bytes;
    obs::Gauge* journal_records;
    obs::Gauge* snapshot_seq;
  };

  explicit Service(ServiceOptions options);

  Status Recover() CROWD_REQUIRES(mu_);
  /// Ingest without journaling — used for journal replay.
  Status Apply(data::WorkerId worker, data::TaskId task,
               data::Response value, bool* changed) CROWD_REQUIRES(mu_);
  std::string HandleCommand(const Command& cmd, bool* quit)
      CROWD_EXCLUDES(mu_);
  Result<uint64_t> TakeSnapshotLocked() CROWD_REQUIRES(mu_);
  size_t NumWorkersLocked() const CROWD_REQUIRES(mu_);
  size_t NumTasksLocked() const CROWD_REQUIRES(mu_);
  /// Records one executed command on the per-command latency series.
  void RecordCommand(std::string_view verb, double seconds);

  ServiceOptions options_;
  obs::Registry metrics_;
  Counters counters_;
  std::atomic<double> last_eval_micros_{0.0};

  mutable util::Mutex mu_;
  std::unique_ptr<core::IncrementalEvaluator> evaluator_
      CROWD_GUARDED_BY(mu_);
  std::optional<Journal> journal_ CROWD_GUARDED_BY(mu_);
  uint64_t last_seq_ CROWD_GUARDED_BY(mu_) = 0;
};

}  // namespace crowd::server

#endif  // CROWD_SERVER_SERVICE_H_
