// The crowdevald network front end: accepts connections on a
// Unix-domain or loopback TCP socket and speaks the newline-delimited
// protocol of server/protocol.h, one thread per connection. All state
// lives in the shared Service (which serializes commands internally);
// the socket layer only frames lines and writes replies.

#ifndef CROWD_SERVER_SOCKET_SERVER_H_
#define CROWD_SERVER_SOCKET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace crowd::server {

/// \brief Listener configuration. Exactly one of `unix_path` (when
/// non-empty) or TCP (`host`:`port`) is used; a `port` of 0 binds an
/// ephemeral port, readable from SocketServer::port() after Start().
struct SocketServerOptions {
  std::string unix_path;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool use_tcp = false;
};

/// \brief Accept loop + per-connection protocol pumps.
class SocketServer {
 public:
  SocketServer(Service* service, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept thread.
  Status Start();
  /// Stops accepting, disconnects every client and joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop() CROWD_EXCLUDES(client_mu_);

  /// The bound TCP port (after Start() with use_tcp).
  uint16_t port() const { return port_; }
  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const { return connections_.load(); }

 private:
  void AcceptLoop() CROWD_EXCLUDES(client_mu_);
  void ServeConnection(int fd) CROWD_EXCLUDES(client_mu_);

  Service* service_;
  SocketServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_{0};
  std::thread accept_thread_;

  util::Mutex client_mu_;
  std::vector<int> client_fds_ CROWD_GUARDED_BY(client_mu_);
  std::vector<std::thread> client_threads_ CROWD_GUARDED_BY(client_mu_);
};

}  // namespace crowd::server

#endif  // CROWD_SERVER_SOCKET_SERVER_H_
