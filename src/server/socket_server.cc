#include "server/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace crowd::server {

namespace {

Status Errno(const char* op) {
  return Status::IoError(StrFormat("%s: %s", op, std::strerror(errno)));
}

/// Sends the whole buffer, suppressing SIGPIPE.
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(Service* service, SocketServerOptions options)
    : service_(service), options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (running_.load()) return Status::Invalid("server already started");
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return Errno("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::Invalid("unix socket path too long: " +
                             options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A stale socket file from a killed daemon would make bind fail.
    ::unlink(options_.unix_path.c_str());
    // The sockaddr casts below are the POSIX-mandated calling
    // convention for bind/getsockname, not byte parsing.
    if (::bind(listen_fd_,
               reinterpret_cast<sockaddr*>(&addr),  // crowd-lint: allow(raw-byte-read)
               sizeof(addr)) != 0) {
      return Errno("bind");
    }
  } else if (options_.use_tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return Errno("socket");
    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      return Status::Invalid("bad listen address: " + options_.host);
    }
    if (::bind(listen_fd_,
               reinterpret_cast<sockaddr*>(&addr),  // crowd-lint: allow(raw-byte-read)
               sizeof(addr)) != 0) {
      return Errno("bind");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr*>(&bound),  // crowd-lint: allow(raw-byte-read)
                      &len) != 0) {
      return Errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  } else {
    return Status::Invalid("no listener configured (unix_path or tcp)");
  }
  if (::listen(listen_fd_, 64) != 0) return Errno("listen");
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  while (running_.load()) {
    // Poll with a timeout so Stop() is observed promptly even with no
    // incoming connection to wake the loop.
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 200);
    if (!running_.load()) break;
    if (ready <= 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed
    }
    connections_.fetch_add(1);
    service_->metrics_registry()
        .GetCounter("crowdeval_server_connections_total",
                    "client connections accepted")
        ->Increment();
    util::MutexLock lock(client_mu_);
    client_fds_.push_back(fd);
    client_threads_.emplace_back(
        [this, fd] { ServeConnection(fd); });
  }
}

void SocketServer::ServeConnection(int fd) {
  obs::Gauge* active = service_->metrics_registry().GetGauge(
      "crowdeval_server_connections_active",
      "currently connected clients");
  active->Add(1);
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit && running_.load()) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or shutdown() from Stop()
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start);
         nl != std::string::npos && !quit;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      std::string reply = service_->ExecuteLine(line, &quit);
      reply.push_back('\n');
      if (!SendAll(fd, reply.data(), reply.size())) quit = true;
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  active->Subtract(1);
  util::MutexLock lock(client_mu_);
  client_fds_.erase(
      std::remove(client_fds_.begin(), client_fds_.end(), fd),
      client_fds_.end());
}

void SocketServer::Stop() {
  if (!running_.exchange(false)) {
    // Start() may have failed after creating the socket.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Wake blocked recv()s; the connection threads then exit and
    // close their own fds.
    util::MutexLock lock(client_mu_);
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    util::MutexLock lock(client_mu_);
    threads.swap(client_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

}  // namespace crowd::server
