// Versioned binary snapshots of the streaming evaluator's durable
// state. A snapshot is a point-in-time image of the ResponseMatrix
// (the overlap index and assessment caches are derived data and are
// rebuilt on load) plus the journal sequence number it covers, so
// recovery is: load the newest valid snapshot, then replay the journal
// records with seq greater than `applied_seq`.
//
// On-disk layout of `snapshot-<seq, 20 digits>.crws` (little-endian):
//
//   u32 magic 'CRWS'   u32 version
//   u32 num_workers    u32 num_tasks    u32 arity   u32 reserved
//   u64 applied_seq    u64 payload_bytes
//   u32 crc32(payload)
//   payload: num_workers * num_tasks cells, int16 each, row-major
//            (-1 = missing, matching ResponseMatrix's sentinel)
//
// Snapshots are written to a temp file, fsynced, then renamed into
// place, so a crash mid-write never clobbers the previous snapshot.

#ifndef CROWD_SERVER_SNAPSHOT_H_
#define CROWD_SERVER_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/response_matrix.h"
#include "util/result.h"

namespace crowd::server {

/// \brief Decoded snapshot contents.
struct SnapshotData {
  uint32_t num_workers = 0;
  uint32_t num_tasks = 0;
  uint32_t arity = 2;
  /// Journal seq covered: replay records with seq > applied_seq.
  uint64_t applied_seq = 0;
  /// Dense cells, row-major, -1 = missing.
  std::vector<int16_t> cells;

  /// Reconstructs the response matrix the snapshot captured.
  Result<data::ResponseMatrix> ToMatrix() const;
};

/// Path of the snapshot covering `seq` inside `dir`.
std::string SnapshotPath(const std::string& dir, uint64_t seq);

/// \brief Serializes `responses` into the on-disk snapshot format
/// (header + CRC + payload) without touching the filesystem.
std::vector<uint8_t> EncodeSnapshot(const data::ResponseMatrix& responses,
                                    uint64_t applied_seq);

/// \brief Parses and validates one snapshot image from memory.
///
/// Every declared size (dimensions, payload length) is checked against
/// the bytes actually present before anything is allocated or copied,
/// so arbitrary input can at worst produce an IoError — never an
/// over-read or an attacker-chosen allocation. `context` names the
/// source (e.g. the file path) in error messages.
Result<SnapshotData> DecodeSnapshot(const uint8_t* data, size_t size,
                                    const std::string& context);

/// \brief Writes a durable snapshot of `responses` covering
/// `applied_seq` into `dir`; returns the file's byte size.
Result<uint64_t> WriteSnapshot(const std::string& dir,
                               const data::ResponseMatrix& responses,
                               uint64_t applied_seq);

/// \brief Loads and validates one snapshot file.
Result<SnapshotData> LoadSnapshot(const std::string& path);

/// Snapshot seqs present in `dir`, descending (newest first). Files
/// are identified by name only; validation happens in LoadSnapshot.
Result<std::vector<uint64_t>> ListSnapshotSeqs(const std::string& dir);

/// Deletes snapshots older than `keep_seq` (used after compaction; the
/// newest snapshot plus anything at/after `keep_seq` survive).
Status RemoveSnapshotsBefore(const std::string& dir, uint64_t keep_seq);

}  // namespace crowd::server

#endif  // CROWD_SERVER_SNAPSHOT_H_
