#include "server/journal.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace crowd::server {

namespace {

constexpr uint32_t kMagic = 0x4A575243u;  // "CRWJ" little-endian
constexpr uint32_t kVersion = 1;

}  // namespace

std::vector<uint8_t> EncodeJournalHeader(const JournalHeader& header) {
  std::vector<uint8_t> bytes;
  bytes.reserve(Journal::kHeaderBytes);
  PutU32(&bytes, kMagic);
  PutU32(&bytes, kVersion);
  PutU32(&bytes, header.num_workers);
  PutU32(&bytes, header.num_tasks);
  PutU32(&bytes, header.arity);
  PutU32(&bytes, 0);  // reserved
  PutU64(&bytes, header.base_seq);
  return bytes;
}

std::vector<uint8_t> EncodeJournalRecord(const JournalRecord& record) {
  std::vector<uint8_t> payload;
  payload.reserve(Journal::kRecordBytes - 4);
  PutU64(&payload, record.seq);
  PutU32(&payload, static_cast<uint32_t>(record.worker));
  PutU32(&payload, static_cast<uint32_t>(record.task));
  PutU32(&payload, static_cast<uint32_t>(record.value));
  std::vector<uint8_t> bytes;
  bytes.reserve(Journal::kRecordBytes);
  PutU32(&bytes, Crc32(payload.data(), payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

Result<JournalReplay> ReplayJournalBytes(const uint8_t* data, size_t size,
                                         const std::string& context) {
  ByteReader reader(data, size);
  JournalReplay out;
  auto corrupt_header = [&context] {
    return Status::IoError("journal " + context +
                           ": missing or corrupt header");
  };
  if (size < Journal::kHeaderBytes) return corrupt_header();
  CROWD_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) return corrupt_header();
  CROWD_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::IoError(StrFormat("journal %s: unsupported version %u",
                                     context.c_str(), version));
  }
  CROWD_ASSIGN_OR_RETURN(out.header.num_workers, reader.ReadU32());
  CROWD_ASSIGN_OR_RETURN(out.header.num_tasks, reader.ReadU32());
  CROWD_ASSIGN_OR_RETURN(out.header.arity, reader.ReadU32());
  CROWD_ASSIGN_OR_RETURN(uint32_t reserved, reader.ReadU32());
  if (reserved != 0) return corrupt_header();  // zero in version 1
  CROWD_ASSIGN_OR_RETURN(out.header.base_seq, reader.ReadU64());

  // Replay: each record must decode, checksum, and carry the next
  // expected seq. The first violation is treated as a torn tail and
  // everything from that offset on is discarded.
  uint64_t last_seq = out.header.base_seq;
  while (reader.remaining() >= Journal::kRecordBytes) {
    auto rec = reader.ReadSpan(Journal::kRecordBytes);
    if (!rec.ok()) break;  // unreachable given the length guard
    if (GetU32(*rec) != Crc32(*rec + 4, Journal::kRecordBytes - 4)) break;
    JournalRecord record;
    record.seq = GetU64(*rec + 4);
    record.worker = GetU32(*rec + 12);
    record.task = GetU32(*rec + 16);
    record.value = static_cast<data::Response>(GetU32(*rec + 20));
    if (record.seq != last_seq + 1) break;
    out.records.push_back(record);
    last_seq = record.seq;
  }
  // The reader's cursor overshoots by one rejected record when the
  // loop breaks mid-file, so compute the valid prefix from the count.
  out.valid_bytes = Journal::kHeaderBytes +
                    out.records.size() * Journal::kRecordBytes;
  return out;
}

Result<Journal> Journal::Create(const std::string& path,
                                const JournalHeader& header) {
  CROWD_ASSIGN_OR_RETURN(File file, File::Create(path));
  std::vector<uint8_t> bytes = EncodeJournalHeader(header);
  CROWD_RETURN_NOT_OK(file.WriteAll(bytes.data(), bytes.size()));
  CROWD_RETURN_NOT_OK(file.Sync());
  CROWD_RETURN_NOT_OK(SyncDirectoryOf(path));
  return Journal(std::move(file), header, header.base_seq, kHeaderBytes);
}

Result<JournalRecovered> Journal::Open(const std::string& path) {
  CROWD_ASSIGN_OR_RETURN(File file, File::OpenAppend(path));
  CROWD_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  CROWD_ASSIGN_OR_RETURN(size_t read,
                         file.ReadAt(0, bytes.data(), bytes.size()));
  bytes.resize(read);
  CROWD_ASSIGN_OR_RETURN(JournalReplay replay,
                         ReplayJournalBytes(bytes.data(), bytes.size(),
                                            path));
  JournalRecovered out{Journal(std::move(file), replay.header,
                               replay.header.base_seq, kHeaderBytes),
                       replay.header,
                       std::move(replay.records),
                       0};
  Journal& journal = out.journal;
  journal.last_seq_ = replay.header.base_seq + out.records.size();
  uint64_t offset = replay.valid_bytes;
  if (offset < size) {
    out.truncated_bytes = size - offset;
    CROWD_RETURN_NOT_OK(journal.file_.Truncate(offset));
    if (obs::Registry* r = obs::MetricsRegistry()) {
      static obs::Counter* const truncations = r->GetCounter(
          "crowdeval_journal_torn_truncations_total",
          "torn journal tails truncated during recovery");
      truncations->Increment();
    }
  }
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const replayed = r->GetCounter(
        "crowdeval_journal_replayed_records_total",
        "records replayed from the journal during recovery");
    replayed->Increment(out.records.size());
  }
  journal.file_bytes_ = offset;
  return out;
}

Status Journal::Append(const JournalRecord& record) {
  if (record.seq != next_seq()) {
    return Status::Internal(StrFormat(
        "journal append out of order: seq %llu, expected %llu",
        static_cast<unsigned long long>(record.seq),
        static_cast<unsigned long long>(next_seq())));
  }
  CROWD_SPAN("journal.append");
  std::vector<uint8_t> bytes = EncodeJournalRecord(record);
  CROWD_RETURN_NOT_OK(file_.WriteAll(bytes.data(), bytes.size()));
  last_seq_ = record.seq;
  file_bytes_ += bytes.size();
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const appends = r->GetCounter(
        "crowdeval_journal_appends_total", "journal records appended");
    static obs::Counter* const written = r->GetCounter(
        "crowdeval_journal_bytes_written_total",
        "bytes appended to the journal");
    appends->Increment();
    written->Increment(bytes.size());
  }
  return Status::OK();
}

Status Journal::Sync() {
  CROWD_SPAN("journal.sync");
  Stopwatch watch;
  Status status = file_.Sync();
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::HistogramMetric* const latency = r->GetHistogram(
        "crowdeval_journal_fsync_seconds", "journal fsync(2) wall time",
        obs::Histogram::LatencyBounds());
    latency->Record(watch.ElapsedSeconds());
  }
  return status;
}

}  // namespace crowd::server
