#include "server/journal.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace crowd::server {

namespace {

constexpr uint32_t kMagic = 0x4A575243u;  // "CRWJ" little-endian
constexpr uint32_t kVersion = 1;

std::vector<uint8_t> EncodeHeader(const JournalHeader& header) {
  std::vector<uint8_t> bytes;
  bytes.reserve(Journal::kHeaderBytes);
  PutU32(&bytes, kMagic);
  PutU32(&bytes, kVersion);
  PutU32(&bytes, header.num_workers);
  PutU32(&bytes, header.num_tasks);
  PutU32(&bytes, header.arity);
  PutU32(&bytes, 0);  // reserved
  PutU64(&bytes, header.base_seq);
  return bytes;
}

std::vector<uint8_t> EncodeRecord(const JournalRecord& record) {
  std::vector<uint8_t> payload;
  payload.reserve(Journal::kRecordBytes - 4);
  PutU64(&payload, record.seq);
  PutU32(&payload, static_cast<uint32_t>(record.worker));
  PutU32(&payload, static_cast<uint32_t>(record.task));
  PutU32(&payload, static_cast<uint32_t>(record.value));
  std::vector<uint8_t> bytes;
  bytes.reserve(Journal::kRecordBytes);
  PutU32(&bytes, Crc32(payload.data(), payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

}  // namespace

Result<Journal> Journal::Create(const std::string& path,
                                const JournalHeader& header) {
  CROWD_ASSIGN_OR_RETURN(File file, File::Create(path));
  std::vector<uint8_t> bytes = EncodeHeader(header);
  CROWD_RETURN_NOT_OK(file.WriteAll(bytes.data(), bytes.size()));
  CROWD_RETURN_NOT_OK(file.Sync());
  CROWD_RETURN_NOT_OK(SyncDirectoryOf(path));
  return Journal(std::move(file), header, header.base_seq, kHeaderBytes);
}

Result<JournalRecovered> Journal::Open(const std::string& path) {
  CROWD_ASSIGN_OR_RETURN(File file, File::OpenAppend(path));
  CROWD_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  uint8_t head[kHeaderBytes];
  CROWD_ASSIGN_OR_RETURN(size_t head_read,
                         file.ReadAt(0, head, kHeaderBytes));
  if (head_read < kHeaderBytes || GetU32(head) != kMagic) {
    return Status::IoError("journal " + path +
                           ": missing or corrupt header");
  }
  if (GetU32(head + 4) != kVersion) {
    return Status::IoError(StrFormat("journal %s: unsupported version %u",
                                     path.c_str(), GetU32(head + 4)));
  }
  JournalHeader header;
  header.num_workers = GetU32(head + 8);
  header.num_tasks = GetU32(head + 12);
  header.arity = GetU32(head + 16);
  header.base_seq = GetU64(head + 24);

  // Replay: each record must decode, checksum, and carry the next
  // expected seq. The first violation is treated as a torn tail and
  // everything from that offset on is discarded.
  JournalRecovered out{Journal(std::move(file), header, header.base_seq,
                        kHeaderBytes),
                header,
                {},
                0};
  Journal& journal = out.journal;
  uint64_t offset = kHeaderBytes;
  uint8_t rec[kRecordBytes];
  while (offset + kRecordBytes <= size) {
    CROWD_ASSIGN_OR_RETURN(size_t n,
                           journal.file_.ReadAt(offset, rec, kRecordBytes));
    if (n < kRecordBytes) break;
    if (GetU32(rec) != Crc32(rec + 4, kRecordBytes - 4)) break;
    JournalRecord record;
    record.seq = GetU64(rec + 4);
    record.worker = GetU32(rec + 12);
    record.task = GetU32(rec + 16);
    record.value = static_cast<data::Response>(GetU32(rec + 20));
    if (record.seq != journal.last_seq_ + 1) break;
    out.records.push_back(record);
    journal.last_seq_ = record.seq;
    offset += kRecordBytes;
  }
  if (offset < size) {
    out.truncated_bytes = size - offset;
    CROWD_RETURN_NOT_OK(journal.file_.Truncate(offset));
    if (obs::Registry* r = obs::MetricsRegistry()) {
      static obs::Counter* const truncations = r->GetCounter(
          "crowdeval_journal_torn_truncations_total",
          "torn journal tails truncated during recovery");
      truncations->Increment();
    }
  }
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const replayed = r->GetCounter(
        "crowdeval_journal_replayed_records_total",
        "records replayed from the journal during recovery");
    replayed->Increment(out.records.size());
  }
  journal.file_bytes_ = offset;
  return out;
}

Status Journal::Append(const JournalRecord& record) {
  if (record.seq != next_seq()) {
    return Status::Internal(StrFormat(
        "journal append out of order: seq %llu, expected %llu",
        static_cast<unsigned long long>(record.seq),
        static_cast<unsigned long long>(next_seq())));
  }
  CROWD_SPAN("journal.append");
  std::vector<uint8_t> bytes = EncodeRecord(record);
  CROWD_RETURN_NOT_OK(file_.WriteAll(bytes.data(), bytes.size()));
  last_seq_ = record.seq;
  file_bytes_ += bytes.size();
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const appends = r->GetCounter(
        "crowdeval_journal_appends_total", "journal records appended");
    static obs::Counter* const written = r->GetCounter(
        "crowdeval_journal_bytes_written_total",
        "bytes appended to the journal");
    appends->Increment();
    written->Increment(bytes.size());
  }
  return Status::OK();
}

Status Journal::Sync() {
  CROWD_SPAN("journal.sync");
  Stopwatch watch;
  Status status = file_.Sync();
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::HistogramMetric* const latency = r->GetHistogram(
        "crowdeval_journal_fsync_seconds", "journal fsync(2) wall time",
        obs::Histogram::LatencyBounds());
    latency->Record(watch.ElapsedSeconds());
  }
  return status;
}

}  // namespace crowd::server
