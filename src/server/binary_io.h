// Low-level helpers shared by the durability layer (journal +
// snapshot): CRC-32 checksums, little-endian field encoding, and a
// thin RAII wrapper over a POSIX file descriptor.
//
// All on-disk integers are little-endian regardless of host order so
// journal/snapshot files survive a machine change. Writes go through
// write(2) (not stdio), so an accepted append is visible to a reopening
// process even after SIGKILL — only power loss needs the explicit
// Sync() (fsync) path.

#ifndef CROWD_SERVER_BINARY_IO_H_
#define CROWD_SERVER_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace crowd::server {

/// \brief CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of a
/// byte range. Used to detect torn or corrupted journal records and
/// snapshot payloads.
uint32_t Crc32(const void* data, size_t size);

/// Appends `v` to `out` in little-endian byte order.
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutU64(std::vector<uint8_t>* out, uint64_t v);

/// Reads a little-endian integer at `p` (caller guarantees bounds).
uint32_t GetU32(const uint8_t* p);
uint64_t GetU64(const uint8_t* p);

/// \brief Bounds-checked sequential reader over a byte span.
///
/// Every parser that consumes untrusted bytes (snapshot load, journal
/// replay) must go through this cursor instead of raw pointer
/// arithmetic: each read validates the declared size against the
/// bytes actually remaining and fails with a Status instead of
/// over-reading. A failed read leaves the cursor where it was. The
/// reader does not own the bytes; the span must outlive it.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - offset_; }
  /// Bytes consumed so far.
  size_t offset() const { return offset_; }

  /// Little-endian fixed-width reads.
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();

  /// Copies exactly `size` bytes into `out`, or fails without
  /// consuming anything when fewer remain.
  Status ReadBytes(void* out, size_t size);

  /// A borrowed view of the next `size` bytes (valid while the
  /// underlying span lives), or IoError when fewer remain.
  Result<const uint8_t*> ReadSpan(size_t size);

  /// Advances past `size` bytes, or fails when fewer remain.
  Status Skip(size_t size);

 private:
  Status NeedBytes(size_t size) const;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t offset_ = 0;
};

/// \brief RAII file descriptor with Status-returning I/O helpers.
class File {
 public:
  File() = default;
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;

  /// Opens for reading and appending; creates when missing.
  static Result<File> OpenAppend(const std::string& path);
  /// Opens read-only; fails with IoError when missing.
  static Result<File> OpenRead(const std::string& path);
  /// Creates or truncates for writing.
  static Result<File> Create(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Writes the whole buffer (looping over short writes).
  Status WriteAll(const void* data, size_t size);
  /// Reads exactly `size` bytes at absolute `offset` into `out`;
  /// returns the number of bytes actually read (short at EOF).
  Result<size_t> ReadAt(uint64_t offset, void* out, size_t size);
  /// Current file size in bytes.
  Result<uint64_t> Size() const;
  /// Truncates the file to `size` bytes.
  Status Truncate(uint64_t size);
  /// fsync(2): force written data to stable storage.
  Status Sync();
  /// Closes the descriptor (also done by the destructor).
  void Close();

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// \brief Reads a whole file into a byte buffer.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// \brief fsync the directory containing `path`, making a just-renamed
/// file durable against power loss.
Status SyncDirectoryOf(const std::string& path);

}  // namespace crowd::server

#endif  // CROWD_SERVER_BINARY_IO_H_
