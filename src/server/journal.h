// Append-only write-ahead journal of accepted responses — the
// durability backbone of the crowdevald service. Every accepted RESP
// is appended (and visible to a re-opening process even after SIGKILL,
// see binary_io.h) before it is acknowledged; recovery replays the
// journal on top of the latest snapshot.
//
// On-disk layout (all integers little-endian):
//
//   header (32 bytes):
//     u32 magic 'CRWJ'   u32 version
//     u32 num_workers    u32 num_tasks    u32 arity   u32 reserved
//     u64 base_seq       -- seq already covered by records *before*
//                           this file: the first record has
//                           seq == base_seq + 1 (compaction rewrites
//                           the file with a fresh base_seq).
//
//   record (24 bytes):
//     u32 crc32(payload)
//     payload: u64 seq   u32 worker   u32 task   u32 value
//
// A torn tail (partial record from a crash mid-append) or a corrupted
// record fails its length/CRC/seq check; Open() stops there, truncates
// the file back to the last valid record, and reports how many bytes
// were dropped. Everything before the tear is kept.

#ifndef CROWD_SERVER_JOURNAL_H_
#define CROWD_SERVER_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/response_matrix.h"
#include "server/binary_io.h"
#include "util/result.h"

namespace crowd::server {

/// \brief Static journal metadata, fixing the response universe.
struct JournalHeader {
  uint32_t num_workers = 0;
  uint32_t num_tasks = 0;
  uint32_t arity = 2;
  /// Sequence number already durable before this file's records.
  uint64_t base_seq = 0;
};

/// \brief One accepted response. `seq` numbers responses 1, 2, ...
/// across the whole journal history (snapshots record the prefix they
/// cover by this number).
struct JournalRecord {
  uint64_t seq = 0;
  data::WorkerId worker = 0;
  data::TaskId task = 0;
  data::Response value = 0;
};

struct JournalRecovered;

/// Serialized header / record images exactly as written to disk.
/// Shared by Journal::Create/Append, the recovery replay, and the
/// fuzz harnesses' round-trip checks.
std::vector<uint8_t> EncodeJournalHeader(const JournalHeader& header);
std::vector<uint8_t> EncodeJournalRecord(const JournalRecord& record);

/// \brief Outcome of replaying one journal image from memory.
struct JournalReplay {
  JournalHeader header;
  /// Valid records in append order, seq strictly ascending from
  /// header.base_seq + 1.
  std::vector<JournalRecord> records;
  /// Bytes covered by the header plus every valid record; anything
  /// past this offset is a torn or corrupt tail.
  uint64_t valid_bytes = 0;
};

/// \brief Parses a journal image: validated header, then records until
/// the first length/CRC/seq violation (the torn tail). A pure function
/// of the bytes — no filesystem access — so recovery logic is
/// fuzzable and testable in memory. `context` names the byte source
/// in error messages.
Result<JournalReplay> ReplayJournalBytes(const uint8_t* data, size_t size,
                                         const std::string& context);

/// \brief Append-only journal file handle.
class Journal {
 public:
  /// Record wire size: crc + (seq, worker, task, value).
  static constexpr size_t kRecordBytes = 24;
  static constexpr size_t kHeaderBytes = 32;

  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Creates (or truncates) a journal with the given header. The new
  /// file is written durably (fsync of file and directory).
  static Result<Journal> Create(const std::string& path,
                                const JournalHeader& header);

  /// Opens an existing journal, validating every record and truncating
  /// any torn tail in place. Fails with IoError on a missing file or a
  /// corrupt header.
  static Result<JournalRecovered> Open(const std::string& path);

  /// Appends one record. `record.seq` must be `next_seq()`.
  Status Append(const JournalRecord& record);

  /// fsync(2) — required only for durability against power loss;
  /// process crashes (SIGKILL) never lose an acknowledged append.
  Status Sync();

  const JournalHeader& header() const { return header_; }
  /// Sequence number the next Append must carry.
  uint64_t next_seq() const { return last_seq_ + 1; }
  /// Records in this file (excludes those compacted into a snapshot).
  uint64_t record_count() const {
    return last_seq_ - header_.base_seq;
  }
  /// Current file size in bytes.
  uint64_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return file_.path(); }

 private:
  Journal(File file, JournalHeader header, uint64_t last_seq,
          uint64_t file_bytes)
      : file_(std::move(file)),
        header_(header),
        last_seq_(last_seq),
        file_bytes_(file_bytes) {}

  File file_;
  JournalHeader header_;
  uint64_t last_seq_ = 0;
  uint64_t file_bytes_ = 0;
};

/// \brief Result of Journal::Open on an existing file.
struct JournalRecovered {
  Journal journal;
  JournalHeader header;
  /// Valid records, in append order, seq strictly ascending.
  std::vector<JournalRecord> records;
  /// Bytes of torn/corrupt tail discarded (0 on a clean file).
  uint64_t truncated_bytes = 0;
};

}  // namespace crowd::server

#endif  // CROWD_SERVER_JOURNAL_H_
