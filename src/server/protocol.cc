#include "server/protocol.h"

#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace crowd::server {

namespace {

/// Splits on runs of spaces/tabs, dropping empty tokens.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<size_t> ParseId(std::string_view token, const char* what) {
  auto value = ParseInt(token);
  if (!value.ok() || *value < 0) {
    return Status::Invalid(StrFormat("%s must be a non-negative integer, "
                                     "got \"%.*s\"",
                                     what, static_cast<int>(token.size()),
                                     token.data()));
  }
  return static_cast<size_t>(*value);
}

Status WrongArity(const char* command, size_t want, size_t got) {
  return Status::Invalid(StrFormat("%s takes %zu argument(s), got %zu",
                                   command, want, got));
}

}  // namespace

Result<Command> ParseCommand(std::string_view line) {
  // Tolerate a trailing '\r' from netcat/telnet-style clients.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) return Status::Invalid("empty command");
  std::string_view verb = tokens[0];
  const size_t argc = tokens.size() - 1;
  Command cmd;
  if (verb == "RESP") {
    if (argc != 3) return WrongArity("RESP", 3, argc);
    cmd.type = CommandType::kResp;
    CROWD_ASSIGN_OR_RETURN(cmd.worker, ParseId(tokens[1], "worker id"));
    CROWD_ASSIGN_OR_RETURN(cmd.task, ParseId(tokens[2], "task id"));
    CROWD_ASSIGN_OR_RETURN(size_t value, ParseId(tokens[3], "response"));
    cmd.value = static_cast<data::Response>(value);
    return cmd;
  }
  if (verb == "EVAL") {
    if (argc != 1) return WrongArity("EVAL", 1, argc);
    cmd.type = CommandType::kEval;
    CROWD_ASSIGN_OR_RETURN(cmd.worker, ParseId(tokens[1], "worker id"));
    return cmd;
  }
  struct Nullary {
    std::string_view verb;
    CommandType type;
  };
  static constexpr Nullary kNullary[] = {
      {"EVAL_ALL", CommandType::kEvalAll},
      {"SPAMMERS", CommandType::kSpammers},
      {"STATS", CommandType::kStats},
      {"METRICS", CommandType::kMetrics},
      {"SNAPSHOT", CommandType::kSnapshot},
      {"QUIT", CommandType::kQuit},
  };
  for (const Nullary& n : kNullary) {
    if (verb == n.verb) {
      if (argc != 0) return WrongArity(std::string(n.verb).c_str(), 0, argc);
      cmd.type = n.type;
      return cmd;
    }
  }
  return Status::Invalid("unknown command: " + std::string(verb));
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  // %.17g is the shortest printf precision that round-trips every
  // finite double; non-finite values have no JSON literal, so they are
  // emitted as null.
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

std::string AssessmentJson(const core::WorkerAssessment& a) {
  return StrFormat(
      "{\"worker\":%zu,\"error_rate\":%s,\"deviation\":%s,"
      "\"interval\":{\"lo\":%s,\"hi\":%s,\"confidence\":%s},"
      "\"num_triples\":%zu,\"any_clamped\":%s}",
      a.worker, JsonDouble(a.error_rate).c_str(),
      JsonDouble(a.deviation).c_str(), JsonDouble(a.interval.lo).c_str(),
      JsonDouble(a.interval.hi).c_str(),
      JsonDouble(a.interval.confidence).c_str(), a.num_triples,
      a.any_clamped ? "true" : "false");
}

std::string FailureJson(data::WorkerId worker, const Status& status) {
  return StrFormat("{\"worker\":%zu,\"code\":\"%s\",\"error\":\"%s\"}",
                   worker,
                   JsonEscape(StatusCodeToString(status.code())).c_str(),
                   JsonEscape(status.message()).c_str());
}

std::string MWorkerResultBodyJson(const core::MWorkerResult& result) {
  std::vector<std::string> assessments;
  assessments.reserve(result.assessments.size());
  for (const auto& a : result.assessments) {
    assessments.push_back(AssessmentJson(a));
  }
  std::vector<std::string> failures;
  failures.reserve(result.failures.size());
  for (const auto& [worker, status] : result.failures) {
    failures.push_back(FailureJson(worker, status));
  }
  return "\"assessments\":[" + Join(assessments, ",") +
         "],\"failures\":[" + Join(failures, ",") + "]";
}

std::string BinaryReportJson(
    const core::CrowdEvaluator::BinaryReport& report) {
  core::MWorkerResult body;
  body.assessments = report.assessments;
  body.failures = report.failures;
  std::vector<std::string> spammers;
  spammers.reserve(report.removed_spammers.size());
  for (data::WorkerId w : report.removed_spammers) {
    spammers.push_back(StrFormat("%zu", w));
  }
  return "{\"ok\":true," + MWorkerResultBodyJson(body) +
         ",\"removed_spammers\":[" + Join(spammers, ",") + "]}";
}

std::string KaryResultJson(const core::KaryResult& result,
                           const std::vector<data::WorkerId>& workers) {
  auto matrix_json = [](const linalg::Matrix& m) {
    std::vector<std::string> rows;
    rows.reserve(m.rows());
    for (size_t i = 0; i < m.rows(); ++i) {
      std::vector<std::string> cols;
      cols.reserve(m.cols());
      for (size_t j = 0; j < m.cols(); ++j) {
        cols.push_back(JsonDouble(m(i, j)));
      }
      rows.push_back("[" + Join(cols, ",") + "]");
    }
    return "[" + Join(rows, ",") + "]";
  };
  std::vector<std::string> worker_docs;
  for (size_t idx = 0; idx < result.workers.size(); ++idx) {
    const core::KaryWorkerEstimate& est = result.workers[idx];
    std::vector<std::string> interval_rows;
    interval_rows.reserve(est.intervals.size());
    for (const auto& row : est.intervals) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const auto& ci : row) {
        cells.push_back(StrFormat(
            "{\"lo\":%s,\"hi\":%s,\"confidence\":%s}",
            JsonDouble(ci.lo).c_str(), JsonDouble(ci.hi).c_str(),
            JsonDouble(ci.confidence).c_str()));
      }
      interval_rows.push_back("[" + Join(cells, ",") + "]");
    }
    worker_docs.push_back(StrFormat(
        "{\"worker\":%zu,\"p\":%s,\"intervals\":[%s]}",
        idx < workers.size() ? workers[idx] : idx,
        matrix_json(est.p).c_str(), Join(interval_rows, ",").c_str()));
  }
  std::vector<std::string> selectivity;
  selectivity.reserve(result.selectivity.size());
  for (double s : result.selectivity) selectivity.push_back(JsonDouble(s));
  return StrFormat(
      "{\"ok\":true,\"workers\":[%s],\"selectivity\":[%s],"
      "\"rotations_used\":%d}",
      Join(worker_docs, ",").c_str(), Join(selectivity, ",").c_str(),
      result.rotations_used);
}

std::string ErrorJson(const Status& status) {
  return StrFormat("{\"ok\":false,\"code\":\"%s\",\"error\":\"%s\"}",
                   JsonEscape(StatusCodeToString(status.code())).c_str(),
                   JsonEscape(status.message()).c_str());
}

}  // namespace crowd::server
