#include "server/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/binary_io.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace crowd::server {

namespace {

constexpr uint32_t kMagic = 0x53575243u;  // "CRWS" little-endian
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 44;
constexpr const char* kPrefix = "snapshot-";
constexpr const char* kSuffix = ".crws";

}  // namespace

Result<data::ResponseMatrix> SnapshotData::ToMatrix() const {
  // Validate before constructing: ResponseMatrix CHECK-fails on an
  // arity outside [2, 32767], and a SnapshotData built by hand (or a
  // future decoder bug) must surface as a Status, not an abort.
  if (arity < 2 || arity > 32767) {
    return Status::Invalid(
        StrFormat("snapshot arity %u outside [2, 32767]", arity));
  }
  data::ResponseMatrix matrix(num_workers, num_tasks,
                              static_cast<int>(arity));
  if (cells.size() !=
      static_cast<size_t>(num_workers) * num_tasks) {
    return Status::Internal("snapshot cell count mismatch");
  }
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    for (data::TaskId t = 0; t < num_tasks; ++t) {
      int16_t v = cells[w * num_tasks + t];
      if (v == -1) continue;  // missing sentinel
      if (v < -1) {
        return Status::Invalid(
            StrFormat("snapshot cell (%zu, %zu) holds invalid value %d",
                      static_cast<size_t>(w), static_cast<size_t>(t),
                      static_cast<int>(v)));
      }
      CROWD_RETURN_NOT_OK(matrix.Set(w, t, v));
    }
  }
  return matrix;
}

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  return StrFormat("%s/%s%020llu%s", dir.c_str(), kPrefix,
                   static_cast<unsigned long long>(seq), kSuffix);
}

std::vector<uint8_t> EncodeSnapshot(const data::ResponseMatrix& responses,
                                    uint64_t applied_seq) {
  const size_t nw = responses.num_workers();
  const size_t nt = responses.num_tasks();
  std::vector<uint8_t> payload;
  payload.reserve(nw * nt * 2);
  for (data::WorkerId w = 0; w < nw; ++w) {
    for (data::TaskId t = 0; t < nt; ++t) {
      auto r = responses.Get(w, t);
      int16_t cell =
          r.has_value() ? static_cast<int16_t>(*r) : int16_t{-1};
      uint16_t u = static_cast<uint16_t>(cell);
      payload.push_back(static_cast<uint8_t>(u));
      payload.push_back(static_cast<uint8_t>(u >> 8));
    }
  }

  std::vector<uint8_t> bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  PutU32(&bytes, kMagic);
  PutU32(&bytes, kVersion);
  PutU32(&bytes, static_cast<uint32_t>(nw));
  PutU32(&bytes, static_cast<uint32_t>(nt));
  PutU32(&bytes, static_cast<uint32_t>(responses.arity()));
  PutU32(&bytes, 0);  // reserved, zero in version 1
  PutU64(&bytes, applied_seq);
  PutU64(&bytes, payload.size());
  PutU32(&bytes, Crc32(payload.data(), payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

Result<SnapshotData> DecodeSnapshot(const uint8_t* data, size_t size,
                                    const std::string& context) {
  auto corrupt = [&context](const char* why) {
    return Status::IoError("snapshot " + context + ": " + why);
  };
  ByteReader reader(data, size);
  if (size < kHeaderBytes) return corrupt("missing or corrupt header");
  CROWD_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) return corrupt("missing or corrupt header");
  CROWD_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::IoError(StrFormat("snapshot %s: unsupported version %u",
                                     context.c_str(), version));
  }
  SnapshotData out;
  CROWD_ASSIGN_OR_RETURN(out.num_workers, reader.ReadU32());
  CROWD_ASSIGN_OR_RETURN(out.num_tasks, reader.ReadU32());
  CROWD_ASSIGN_OR_RETURN(out.arity, reader.ReadU32());
  CROWD_ASSIGN_OR_RETURN(uint32_t reserved, reader.ReadU32());
  CROWD_ASSIGN_OR_RETURN(out.applied_seq, reader.ReadU64());
  CROWD_ASSIGN_OR_RETURN(uint64_t payload_bytes, reader.ReadU64());
  CROWD_ASSIGN_OR_RETURN(uint32_t crc, reader.ReadU32());
  if (reserved != 0) return corrupt("reserved header field is not zero");
  if (out.arity < 2 || out.arity > 32767) {
    return corrupt("arity outside [2, 32767]");
  }
  // The declared payload length and the declared dimensions must both
  // match the bytes actually present, checked without overflow: the
  // pre-hardening form `num_workers * num_tasks * 2 == payload_bytes`
  // wraps at 2^64 (e.g. 2^31 x 2^31 cells declare a 0-byte payload)
  // and then resizes the cell vector to an attacker-chosen size.
  if (payload_bytes != reader.remaining()) {
    return corrupt("truncated payload");
  }
  const uint64_t cell_count = payload_bytes / 2;
  if (payload_bytes % 2 != 0 ||
      static_cast<uint64_t>(out.num_workers) * out.num_tasks !=
          cell_count) {
    return corrupt("truncated payload");
  }
  CROWD_ASSIGN_OR_RETURN(const uint8_t* payload,
                         reader.ReadSpan(static_cast<size_t>(payload_bytes)));
  if (Crc32(payload, static_cast<size_t>(payload_bytes)) != crc) {
    return corrupt("checksum mismatch");
  }
  out.cells.resize(static_cast<size_t>(cell_count));
  for (size_t i = 0; i < out.cells.size(); ++i) {
    uint16_t u = static_cast<uint16_t>(
        payload[2 * i] | (payload[2 * i + 1] << 8));
    auto v = static_cast<int16_t>(u);
    if (v < -1 || (v >= 0 && static_cast<uint32_t>(v) >= out.arity)) {
      return corrupt("cell value outside [0, arity) and not missing");
    }
    out.cells[i] = v;
  }
  return out;
}

Result<uint64_t> WriteSnapshot(const std::string& dir,
                               const data::ResponseMatrix& responses,
                               uint64_t applied_seq) {
  CROWD_SPAN("snapshot.write");
  Stopwatch watch;
  std::vector<uint8_t> bytes = EncodeSnapshot(responses, applied_seq);
  const std::string path = SnapshotPath(dir, applied_seq);
  const std::string tmp = path + ".tmp";
  {
    CROWD_ASSIGN_OR_RETURN(File file, File::Create(tmp));
    CROWD_RETURN_NOT_OK(file.WriteAll(bytes.data(), bytes.size()));
    CROWD_RETURN_NOT_OK(file.Sync());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path);
  }
  CROWD_RETURN_NOT_OK(SyncDirectoryOf(path));
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const writes = r->GetCounter(
        "crowdeval_snapshot_writes_total", "snapshots written durably");
    static obs::Counter* const written = r->GetCounter(
        "crowdeval_snapshot_bytes_written_total",
        "bytes written into snapshot files");
    static obs::HistogramMetric* const latency = r->GetHistogram(
        "crowdeval_snapshot_write_seconds",
        "wall time of one durable snapshot write",
        obs::Histogram::LatencyBounds());
    writes->Increment();
    written->Increment(bytes.size());
    latency->Record(watch.ElapsedSeconds());
  }
  return static_cast<uint64_t>(bytes.size());
}

Result<SnapshotData> LoadSnapshot(const std::string& path) {
  CROWD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return DecodeSnapshot(bytes.data(), bytes.size(), path);
}

Result<std::vector<uint64_t>> ListSnapshotSeqs(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, kPrefix)) continue;
    if (name.size() <= std::string(kPrefix).size() ||
        !name.ends_with(kSuffix)) {
      continue;
    }
    std::string_view digits(name);
    digits.remove_prefix(std::string(kPrefix).size());
    digits.remove_suffix(std::string(kSuffix).size());
    auto seq = ParseInt(digits);
    if (seq.ok() && *seq >= 0) {
      seqs.push_back(static_cast<uint64_t>(*seq));
    }
  }
  if (ec) {
    return Status::IoError("listing " + dir + ": " + ec.message());
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

Status RemoveSnapshotsBefore(const std::string& dir, uint64_t keep_seq) {
  CROWD_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListSnapshotSeqs(dir));
  for (uint64_t seq : seqs) {
    if (seq < keep_seq) {
      std::remove(SnapshotPath(dir, seq).c_str());
    }
  }
  return Status::OK();
}

}  // namespace crowd::server
