#include "server/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/binary_io.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace crowd::server {

namespace {

constexpr uint32_t kMagic = 0x53575243u;  // "CRWS" little-endian
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 44;
constexpr const char* kPrefix = "snapshot-";
constexpr const char* kSuffix = ".crws";

}  // namespace

Result<data::ResponseMatrix> SnapshotData::ToMatrix() const {
  data::ResponseMatrix matrix(num_workers, num_tasks,
                              static_cast<int>(arity));
  if (cells.size() !=
      static_cast<size_t>(num_workers) * num_tasks) {
    return Status::Internal("snapshot cell count mismatch");
  }
  for (data::WorkerId w = 0; w < num_workers; ++w) {
    for (data::TaskId t = 0; t < num_tasks; ++t) {
      int16_t v = cells[w * num_tasks + t];
      if (v < 0) continue;
      CROWD_RETURN_NOT_OK(matrix.Set(w, t, v));
    }
  }
  return matrix;
}

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  return StrFormat("%s/%s%020llu%s", dir.c_str(), kPrefix,
                   static_cast<unsigned long long>(seq), kSuffix);
}

Result<uint64_t> WriteSnapshot(const std::string& dir,
                               const data::ResponseMatrix& responses,
                               uint64_t applied_seq) {
  CROWD_SPAN("snapshot.write");
  Stopwatch watch;
  const size_t nw = responses.num_workers();
  const size_t nt = responses.num_tasks();
  std::vector<uint8_t> payload;
  payload.reserve(nw * nt * 2);
  for (data::WorkerId w = 0; w < nw; ++w) {
    for (data::TaskId t = 0; t < nt; ++t) {
      auto r = responses.Get(w, t);
      int16_t cell =
          r.has_value() ? static_cast<int16_t>(*r) : int16_t{-1};
      uint16_t u = static_cast<uint16_t>(cell);
      payload.push_back(static_cast<uint8_t>(u));
      payload.push_back(static_cast<uint8_t>(u >> 8));
    }
  }

  std::vector<uint8_t> bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  PutU32(&bytes, kMagic);
  PutU32(&bytes, kVersion);
  PutU32(&bytes, static_cast<uint32_t>(nw));
  PutU32(&bytes, static_cast<uint32_t>(nt));
  PutU32(&bytes, static_cast<uint32_t>(responses.arity()));
  PutU32(&bytes, 0);  // reserved
  PutU64(&bytes, applied_seq);
  PutU64(&bytes, payload.size());
  PutU32(&bytes, Crc32(payload.data(), payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const std::string path = SnapshotPath(dir, applied_seq);
  const std::string tmp = path + ".tmp";
  {
    CROWD_ASSIGN_OR_RETURN(File file, File::Create(tmp));
    CROWD_RETURN_NOT_OK(file.WriteAll(bytes.data(), bytes.size()));
    CROWD_RETURN_NOT_OK(file.Sync());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path);
  }
  CROWD_RETURN_NOT_OK(SyncDirectoryOf(path));
  if (obs::Registry* r = obs::MetricsRegistry()) {
    static obs::Counter* const writes = r->GetCounter(
        "crowdeval_snapshot_writes_total", "snapshots written durably");
    static obs::Counter* const written = r->GetCounter(
        "crowdeval_snapshot_bytes_written_total",
        "bytes written into snapshot files");
    static obs::HistogramMetric* const latency = r->GetHistogram(
        "crowdeval_snapshot_write_seconds",
        "wall time of one durable snapshot write",
        obs::Histogram::LatencyBounds());
    writes->Increment();
    written->Increment(bytes.size());
    latency->Record(watch.ElapsedSeconds());
  }
  return static_cast<uint64_t>(bytes.size());
}

Result<SnapshotData> LoadSnapshot(const std::string& path) {
  CROWD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  if (bytes.size() < kHeaderBytes || GetU32(bytes.data()) != kMagic) {
    return Status::IoError("snapshot " + path +
                           ": missing or corrupt header");
  }
  if (GetU32(bytes.data() + 4) != kVersion) {
    return Status::IoError(
        StrFormat("snapshot %s: unsupported version %u", path.c_str(),
                  GetU32(bytes.data() + 4)));
  }
  SnapshotData data;
  data.num_workers = GetU32(bytes.data() + 8);
  data.num_tasks = GetU32(bytes.data() + 12);
  data.arity = GetU32(bytes.data() + 16);
  data.applied_seq = GetU64(bytes.data() + 24);
  const uint64_t payload_bytes = GetU64(bytes.data() + 32);
  const uint32_t crc = GetU32(bytes.data() + 40);
  if (bytes.size() != kHeaderBytes + payload_bytes ||
      payload_bytes !=
          static_cast<uint64_t>(data.num_workers) * data.num_tasks * 2) {
    return Status::IoError("snapshot " + path + ": truncated payload");
  }
  const uint8_t* payload = bytes.data() + kHeaderBytes;
  if (Crc32(payload, static_cast<size_t>(payload_bytes)) != crc) {
    return Status::IoError("snapshot " + path + ": checksum mismatch");
  }
  data.cells.resize(static_cast<size_t>(data.num_workers) *
                    data.num_tasks);
  for (size_t i = 0; i < data.cells.size(); ++i) {
    uint16_t u = static_cast<uint16_t>(
        payload[2 * i] | (payload[2 * i + 1] << 8));
    data.cells[i] = static_cast<int16_t>(u);
  }
  return data;
}

Result<std::vector<uint64_t>> ListSnapshotSeqs(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, kPrefix)) continue;
    if (name.size() <= std::string(kPrefix).size() ||
        !name.ends_with(kSuffix)) {
      continue;
    }
    std::string_view digits(name);
    digits.remove_prefix(std::string(kPrefix).size());
    digits.remove_suffix(std::string(kSuffix).size());
    auto seq = ParseInt(digits);
    if (seq.ok() && *seq >= 0) {
      seqs.push_back(static_cast<uint64_t>(*seq));
    }
  }
  if (ec) {
    return Status::IoError("listing " + dir + ": " + ec.message());
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

Status RemoveSnapshotsBefore(const std::string& dir, uint64_t keep_seq) {
  CROWD_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListSnapshotSeqs(dir));
  for (uint64_t seq : seqs) {
    if (seq < keep_seq) {
      std::remove(SnapshotPath(dir, seq).c_str());
    }
  }
  return Status::OK();
}

}  // namespace crowd::server
