#include "server/binary_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace crowd::server {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IoError(
      StrFormat("%s(%s): %s", op, path.c_str(), std::strerror(errno)));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // Table-less bitwise CRC-32 (reflected 0xEDB88320). The durability
  // payloads are tens of bytes per record, so simplicity beats a
  // 1 KiB table here.
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status ByteReader::NeedBytes(size_t size) const {
  if (size > remaining()) {
    return Status::IoError(StrFormat(
        "truncated input: need %zu byte(s) at offset %zu, have %zu",
        size, offset_, remaining()));
  }
  return Status::OK();
}

Result<uint32_t> ByteReader::ReadU32() {
  CROWD_RETURN_NOT_OK(NeedBytes(4));
  uint32_t v = GetU32(data_ + offset_);
  offset_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  CROWD_RETURN_NOT_OK(NeedBytes(8));
  uint64_t v = GetU64(data_ + offset_);
  offset_ += 8;
  return v;
}

Status ByteReader::ReadBytes(void* out, size_t size) {
  CROWD_RETURN_NOT_OK(NeedBytes(size));
  if (size > 0) std::memcpy(out, data_ + offset_, size);
  offset_ += size;
  return Status::OK();
}

Result<const uint8_t*> ByteReader::ReadSpan(size_t size) {
  CROWD_RETURN_NOT_OK(NeedBytes(size));
  const uint8_t* p = data_ + offset_;
  offset_ += size;
  return p;
}

Status ByteReader::Skip(size_t size) {
  CROWD_RETURN_NOT_OK(NeedBytes(size));
  offset_ += size;
  return Status::OK();
}

File::~File() { Close(); }

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<File> File::OpenAppend(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  return File(fd, path);
}

Result<File> File::OpenRead(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  return File(fd, path);
}

Result<File> File::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  return File(fd, path);
}

Status File::WriteAll(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> File::ReadAt(uint64_t offset, void* out, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(out);
  size_t total = 0;
  while (total < size) {
    ssize_t n = ::pread(fd_, p + total, size - total,
                        static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) break;  // EOF
    total += static_cast<size_t>(n);
  }
  return total;
}

Result<uint64_t> File::Size() const {
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Errno("lseek", path_);
  return static_cast<uint64_t>(end);
}

Status File::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  return Status::OK();
}

Status File::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

void File::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  CROWD_ASSIGN_OR_RETURN(File file, File::OpenRead(path));
  CROWD_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  CROWD_ASSIGN_OR_RETURN(size_t read,
                         file.ReadAt(0, bytes.data(), bytes.size()));
  bytes.resize(read);
  return bytes;
}

Status SyncDirectoryOf(const std::string& path) {
  const std::string dir = [&path] {
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return std::string(".");
    if (slash == 0) return std::string("/");
    return path.substr(0, slash);
  }();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open", dir);
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = Errno("fsync", dir);
  ::close(fd);
  return st;
}

}  // namespace crowd::server
