// The crowdevald wire protocol: newline-delimited text commands in,
// JSON lines out. Shared between the daemon, the in-process Service,
// and the crowdeval CLI's --format=json mode (so batch CLI output and
// daemon answers carry the same schema).
//
// Command grammar (one command per line, tokens separated by spaces or
// tabs, commands case-sensitive):
//
//   command := "RESP" worker task value   -- record a response
//            | "EVAL" worker              -- assess one worker
//            | "EVAL_ALL"                 -- assess every worker
//            | "SPAMMERS"                 -- majority-vote spam filter
//            | "STATS"                    -- service counters
//            | "METRICS"                  -- Prometheus text exposition
//            | "SNAPSHOT"                 -- force snapshot + compaction
//            | "QUIT"                     -- close the connection
//
// Every reply is exactly one JSON object on one line, `{"ok":true,...}`
// on success and `{"ok":false,"code":...,"error":...}` on failure.
// Doubles are serialized with enough digits (%.17g) to round-trip
// bit-exactly, which is what lets tests compare daemon output against
// a batch run for equality.
//
// METRICS is the one exception to one-line replies: it returns the
// Prometheus text exposition (many lines) terminated by a line reading
// exactly `# EOF`, so line-oriented clients know where the scrape ends.

#ifndef CROWD_SERVER_PROTOCOL_H_
#define CROWD_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "core/kary_estimator.h"
#include "core/m_worker.h"
#include "core/types.h"
#include "util/result.h"

namespace crowd::server {

enum class CommandType {
  kResp,
  kEval,
  kEvalAll,
  kSpammers,
  kStats,
  kMetrics,
  kSnapshot,
  kQuit,
};

/// \brief A parsed protocol command.
struct Command {
  CommandType type = CommandType::kQuit;
  data::WorkerId worker = 0;
  data::TaskId task = 0;
  data::Response value = 0;
};

/// \brief Parses one protocol line (without the trailing newline).
Result<Command> ParseCommand(std::string_view line);

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// A double as a JSON number that round-trips bit-exactly.
std::string JsonDouble(double v);

/// One worker assessment as a JSON object.
std::string AssessmentJson(const core::WorkerAssessment& a);

/// One per-worker failure as a JSON object.
std::string FailureJson(data::WorkerId worker, const Status& status);

/// `"assessments":[...],"failures":[...]` — the shared body of the
/// daemon's EVAL_ALL reply and the CLI's evaluate --format=json output.
std::string MWorkerResultBodyJson(const core::MWorkerResult& result);

/// The CLI evaluate --format=json document (assessments, failures and
/// removed spammers of a CrowdEvaluator::BinaryReport).
std::string BinaryReportJson(const core::CrowdEvaluator::BinaryReport& report);

/// The CLI evaluate-kary --format=json document.
std::string KaryResultJson(const core::KaryResult& result,
                           const std::vector<data::WorkerId>& workers);

/// `{"ok":false,"code":...,"error":...}` for a non-OK status.
std::string ErrorJson(const Status& status);

}  // namespace crowd::server

#endif  // CROWD_SERVER_PROTOCOL_H_
