#include "server/service.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "obs/trace.h"
#include "server/snapshot.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace crowd::server {

namespace {

constexpr const char* kJournalFile = "journal.crwj";

std::string JournalPath(const std::string& dir) {
  return dir + "/" + kJournalFile;
}

}  // namespace

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  counters_.ingested = metrics_.GetCounter(
      "crowdeval_server_responses_ingested_total",
      "accepted RESP commands (including overwrites)");
  counters_.noop =
      metrics_.GetCounter("crowdeval_server_responses_noop_total",
                          "identical RESP re-submissions");
  counters_.rejected =
      metrics_.GetCounter("crowdeval_server_responses_rejected_total",
                          "RESP commands rejected as out of range");
  counters_.cache_hits =
      metrics_.GetCounter("crowdeval_server_eval_cache_hits_total",
                          "worker assessments served from cache");
  counters_.cache_misses =
      metrics_.GetCounter("crowdeval_server_eval_cache_misses_total",
                          "worker assessments recomputed");
  counters_.eval_all_runs = metrics_.GetCounter(
      "crowdeval_server_eval_all_runs_total", "EVAL_ALL commands run");
  counters_.eval_seconds = metrics_.GetHistogram(
      "crowdeval_server_eval_seconds",
      "wall time of EVAL and EVAL_ALL evaluator calls",
      obs::Histogram::LatencyBounds());
  counters_.snapshots_written =
      metrics_.GetCounter("crowdeval_server_snapshots_written_total",
                          "snapshots written by this service");
  counters_.recovered_records = metrics_.GetCounter(
      "crowdeval_server_recovered_records_total",
      "journal records replayed during recovery");
  counters_.recovery_truncated_bytes = metrics_.GetCounter(
      "crowdeval_server_recovery_truncated_bytes_total",
      "torn-tail bytes dropped during recovery");
  counters_.journal_bytes =
      metrics_.GetGauge("crowdeval_server_journal_file_bytes",
                        "current journal file size");
  counters_.journal_records =
      metrics_.GetGauge("crowdeval_server_journal_file_records",
                        "records in the current journal file");
  counters_.snapshot_seq =
      metrics_.GetGauge("crowdeval_server_snapshot_seq",
                        "sequence covered by the latest snapshot");
}

Result<std::unique_ptr<Service>> Service::Open(ServiceOptions options) {
  std::unique_ptr<Service> service(new Service(std::move(options)));
  {
    // No other thread can reach the service yet; the lock exists so
    // Recover's writes to the guarded state satisfy the analysis.
    util::MutexLock lock(service->mu_);
    CROWD_RETURN_NOT_OK(service->Recover());
  }
  return service;
}

Status Service::Recover() {
  namespace fs = std::filesystem;
  const std::string& dir = options_.data_dir;

  std::optional<SnapshotData> snapshot;
  std::vector<JournalRecord> tail;
  std::optional<JournalHeader> journal_header;
  if (!dir.empty()) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IoError("create_directories(" + dir +
                             "): " + ec.message());
    }
    // Sweep *.tmp files left by a crash mid-snapshot or mid-compaction;
    // they were never renamed into place, so they are not part of the
    // durable state.
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".tmp") {
        std::error_code remove_ec;
        fs::remove(entry.path(), remove_ec);
      }
    }
    CROWD_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs,
                           ListSnapshotSeqs(dir));
    for (uint64_t seq : seqs) {
      auto loaded = LoadSnapshot(SnapshotPath(dir, seq));
      if (loaded.ok()) {
        snapshot = std::move(*loaded);
        break;
      }
      CROWD_LOG_WARNING << "ignoring unreadable snapshot: "
                        << loaded.status();
    }
    if (fs::exists(JournalPath(dir))) {
      CROWD_ASSIGN_OR_RETURN(JournalRecovered recovered,
                             Journal::Open(JournalPath(dir)));
      journal_header = recovered.header;
      tail = std::move(recovered.records);
      counters_.recovery_truncated_bytes->Increment(
          recovered.truncated_bytes);
      if (recovered.truncated_bytes > 0) {
        CROWD_LOG_WARNING << "journal: dropped torn tail of "
                          << recovered.truncated_bytes << " bytes";
      }
      journal_.emplace(std::move(recovered.journal));
    }
  }

  // Resolve the worker/task universe: on-disk metadata wins; explicit
  // options must agree with it.
  size_t num_workers = options_.num_workers;
  size_t num_tasks = options_.num_tasks;
  uint32_t disk_workers = 0, disk_tasks = 0, disk_arity = 0;
  if (journal_header.has_value()) {
    disk_workers = journal_header->num_workers;
    disk_tasks = journal_header->num_tasks;
    disk_arity = journal_header->arity;
  }
  if (snapshot.has_value()) {
    if (journal_header.has_value() &&
        (snapshot->num_workers != disk_workers ||
         snapshot->num_tasks != disk_tasks ||
         snapshot->arity != disk_arity)) {
      return Status::IoError(
          "snapshot and journal disagree on the worker/task universe");
    }
    disk_workers = snapshot->num_workers;
    disk_tasks = snapshot->num_tasks;
    disk_arity = snapshot->arity;
  }
  if (disk_workers != 0 || disk_tasks != 0) {
    if ((num_workers != 0 && num_workers != disk_workers) ||
        (num_tasks != 0 && num_tasks != disk_tasks)) {
      return Status::Invalid(StrFormat(
          "configured universe %zux%zu conflicts with recovered "
          "state %ux%u",
          num_workers, num_tasks, disk_workers, disk_tasks));
    }
    if (disk_arity != 2) {
      return Status::Invalid(
          StrFormat("recovered state has arity %u; the streaming "
                    "service evaluates binary tasks only",
                    disk_arity));
    }
    num_workers = disk_workers;
    num_tasks = disk_tasks;
  }
  if (num_workers == 0 || num_tasks == 0) {
    return Status::Invalid(
        "num_workers and num_tasks are required for a fresh service");
  }

  evaluator_ = std::make_unique<core::IncrementalEvaluator>(
      num_workers, num_tasks, options_.binary);

  // 1. Snapshot image.
  if (snapshot.has_value()) {
    CROWD_ASSIGN_OR_RETURN(data::ResponseMatrix matrix,
                           snapshot->ToMatrix());
    for (data::WorkerId w = 0; w < num_workers; ++w) {
      for (data::TaskId t = 0; t < num_tasks; ++t) {
        auto r = matrix.Get(w, t);
        if (!r.has_value()) continue;
        CROWD_RETURN_NOT_OK(
            evaluator_->AddResponse(w, t, *r).WithContext(
                "replaying snapshot"));
      }
    }
    last_seq_ = snapshot->applied_seq;
    counters_.snapshot_seq->Set(
        static_cast<int64_t>(snapshot->applied_seq));
  }

  // 2. Journal tail. Records at or below the snapshot's seq are
  // already part of the image (a crash between snapshot write and
  // journal compaction leaves such records behind — harmless).
  if (journal_.has_value()) {
    if (journal_->header().base_seq > last_seq_) {
      return Status::IoError(StrFormat(
          "journal starts at seq %llu but recovered snapshot covers "
          "only seq %llu — snapshot missing or deleted",
          static_cast<unsigned long long>(journal_->header().base_seq),
          static_cast<unsigned long long>(last_seq_)));
    }
    for (const JournalRecord& record : tail) {
      if (record.seq <= last_seq_) continue;
      bool changed = false;
      CROWD_RETURN_NOT_OK(
          Apply(record.worker, record.task, record.value, &changed)
              .WithContext(StrFormat(
                  "replaying journal seq %llu",
                  static_cast<unsigned long long>(record.seq))));
      last_seq_ = record.seq;
      counters_.recovered_records->Increment();
    }
    counters_.journal_bytes->Set(
        static_cast<int64_t>(journal_->file_bytes()));
    counters_.journal_records->Set(
        static_cast<int64_t>(journal_->record_count()));
  } else if (!dir.empty()) {
    // Fresh directory (or snapshot without a journal): start a new
    // journal continuing at the recovered seq.
    JournalHeader header;
    header.num_workers = static_cast<uint32_t>(num_workers);
    header.num_tasks = static_cast<uint32_t>(num_tasks);
    header.arity = 2;
    header.base_seq = last_seq_;
    CROWD_ASSIGN_OR_RETURN(Journal journal,
                           Journal::Create(JournalPath(dir), header));
    journal_.emplace(std::move(journal));
    counters_.journal_bytes->Set(
        static_cast<int64_t>(journal_->file_bytes()));
  }
  return Status::OK();
}

Status Service::Apply(data::WorkerId worker, data::TaskId task,
                      data::Response value, bool* changed) {
  const data::ResponseMatrix& matrix = evaluator_->responses();
  *changed = false;
  if (worker < matrix.num_workers() && task < matrix.num_tasks()) {
    std::optional<data::Response> previous = matrix.Get(worker, task);
    *changed = !(previous.has_value() && *previous == value);
  }
  Status st = evaluator_->AddResponse(worker, task, value);
  if (!st.ok()) *changed = false;
  return st;
}

Status Service::Ingest(data::WorkerId worker, data::TaskId task,
                       data::Response value) {
  util::MutexLock lock(mu_);
  bool changed = false;
  Status st = Apply(worker, task, value, &changed);
  if (!st.ok()) {
    counters_.rejected->Increment();
    return st;
  }
  if (!changed) {
    counters_.noop->Increment();
    return Status::OK();
  }
  const uint64_t seq = last_seq_ + 1;
  if (journal_.has_value()) {
    JournalRecord record{seq, worker, task, value};
    CROWD_RETURN_NOT_OK(journal_->Append(record));
    if (options_.fsync_each_append) {
      CROWD_RETURN_NOT_OK(journal_->Sync());
    }
    counters_.journal_bytes->Set(
        static_cast<int64_t>(journal_->file_bytes()));
    counters_.journal_records->Set(
        static_cast<int64_t>(journal_->record_count()));
  }
  last_seq_ = seq;
  counters_.ingested->Increment();
  if (options_.snapshot_every > 0 && journal_.has_value() &&
      last_seq_ - static_cast<uint64_t>(counters_.snapshot_seq->Value()) >=
          options_.snapshot_every) {
    auto snap = TakeSnapshotLocked();
    if (!snap.ok()) {
      // The response itself is durable in the journal; a failed
      // background compaction must not fail the ingest.
      CROWD_LOG_WARNING << "automatic snapshot failed: " << snap.status();
    }
  }
  return Status::OK();
}

Result<core::WorkerAssessment> Service::Evaluate(data::WorkerId worker) {
  util::MutexLock lock(mu_);
  const bool cached = evaluator_->IsCached(worker);
  Stopwatch timer;
  Result<core::WorkerAssessment> result = evaluator_->Evaluate(worker);
  const double seconds = timer.ElapsedSeconds();
  if (cached) {
    counters_.cache_hits->Increment();
  } else {
    counters_.cache_misses->Increment();
  }
  counters_.eval_seconds->Record(seconds);
  last_eval_micros_.store(seconds * 1e6, std::memory_order_relaxed);
  return result;
}

core::MWorkerResult Service::EvaluateAll() {
  util::MutexLock lock(mu_);
  const size_t dirty = evaluator_->DirtyWorkerCount();
  counters_.cache_misses->Increment(dirty);
  counters_.cache_hits->Increment(NumWorkersLocked() - dirty);
  Stopwatch timer;
  core::MWorkerResult result = evaluator_->EvaluateAll();
  const double seconds = timer.ElapsedSeconds();
  counters_.eval_all_runs->Increment();
  counters_.eval_seconds->Record(seconds);
  last_eval_micros_.store(seconds * 1e6, std::memory_order_relaxed);
  return result;
}

Result<uint64_t> Service::TakeSnapshot() {
  util::MutexLock lock(mu_);
  return TakeSnapshotLocked();
}

Result<uint64_t> Service::TakeSnapshotLocked() {
  if (options_.data_dir.empty()) {
    return Status::Invalid("snapshots require a data directory");
  }
  CROWD_RETURN_NOT_OK(
      WriteSnapshot(options_.data_dir, evaluator_->responses(), last_seq_)
          .status());
  // Compact: swap in an empty journal whose base is the snapshot seq.
  // The snapshot is durable, so records at or below last_seq_ are
  // redundant; a crash between the rename and the cleanup below only
  // leaves extra (skipped-on-replay) files behind.
  JournalHeader header;
  header.num_workers = static_cast<uint32_t>(NumWorkersLocked());
  header.num_tasks = static_cast<uint32_t>(NumTasksLocked());
  header.arity = 2;
  header.base_seq = last_seq_;
  const std::string path = JournalPath(options_.data_dir);
  const std::string tmp = path + ".tmp";
  CROWD_ASSIGN_OR_RETURN(Journal compacted, Journal::Create(tmp, header));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path);
  }
  CROWD_RETURN_NOT_OK(SyncDirectoryOf(path));
  journal_.emplace(std::move(compacted));
  CROWD_RETURN_NOT_OK(
      RemoveSnapshotsBefore(options_.data_dir, last_seq_));
  counters_.snapshot_seq->Set(static_cast<int64_t>(last_seq_));
  counters_.snapshots_written->Increment();
  counters_.journal_bytes->Set(
      static_cast<int64_t>(journal_->file_bytes()));
  counters_.journal_records->Set(0);
  if (!options_.trace_out.empty() && obs::TracingEnabled()) {
    if (!obs::WriteChromeTrace(options_.trace_out)) {
      CROWD_LOG_WARNING << "failed to write trace to "
                        << options_.trace_out;
    }
  }
  return last_seq_;
}

ServiceStats Service::stats() const {
  ServiceStats out;
  out.responses_ingested = counters_.ingested->Value();
  out.responses_noop = counters_.noop->Value();
  out.responses_rejected = counters_.rejected->Value();
  out.eval_cache_hits = counters_.cache_hits->Value();
  out.eval_cache_misses = counters_.cache_misses->Value();
  out.eval_all_runs = counters_.eval_all_runs->Value();
  out.eval_micros_total = counters_.eval_seconds->Snapshot().sum() * 1e6;
  out.last_eval_micros = last_eval_micros_.load(std::memory_order_relaxed);
  out.journal_bytes =
      static_cast<uint64_t>(counters_.journal_bytes->Value());
  out.journal_records =
      static_cast<uint64_t>(counters_.journal_records->Value());
  out.snapshots_written = counters_.snapshots_written->Value();
  out.snapshot_seq = static_cast<uint64_t>(counters_.snapshot_seq->Value());
  out.recovered_records = counters_.recovered_records->Value();
  out.recovery_truncated_bytes =
      counters_.recovery_truncated_bytes->Value();
  return out;
}

std::string Service::MetricsExposition() const {
  std::string out = metrics_.ExportPrometheus();
  if (obs::Registry* global = obs::MetricsRegistry()) {
    // The process-wide registry carries the library instrumentation
    // (core estimator, thread pool, journal/snapshot I/O). Family
    // names are disjoint by the crowdeval_server_ naming discipline,
    // so concatenation stays a valid exposition.
    out += global->ExportPrometheus();
  }
  out += "# EOF";
  return out;
}

uint64_t Service::last_seq() const {
  util::MutexLock lock(mu_);
  return last_seq_;
}

size_t Service::NumWorkersLocked() const {
  return evaluator_->responses().num_workers();
}

size_t Service::NumTasksLocked() const {
  return evaluator_->responses().num_tasks();
}

size_t Service::num_workers() const {
  util::MutexLock lock(mu_);
  return NumWorkersLocked();
}

size_t Service::num_tasks() const {
  util::MutexLock lock(mu_);
  return NumTasksLocked();
}

namespace {

const char* CommandName(CommandType type) {
  switch (type) {
    case CommandType::kResp:
      return "RESP";
    case CommandType::kEval:
      return "EVAL";
    case CommandType::kEvalAll:
      return "EVAL_ALL";
    case CommandType::kSpammers:
      return "SPAMMERS";
    case CommandType::kStats:
      return "STATS";
    case CommandType::kMetrics:
      return "METRICS";
    case CommandType::kSnapshot:
      return "SNAPSHOT";
    case CommandType::kQuit:
      return "QUIT";
  }
  return "UNKNOWN";
}

}  // namespace

void Service::RecordCommand(std::string_view verb, double seconds) {
  // One labeled series per verb; GetHistogram returns the existing
  // series after the first call, so the per-command cost is one map
  // lookup under the registry mutex — negligible next to command work.
  metrics_
      .GetHistogram("crowdeval_server_command_seconds",
                    "wall time of one protocol command",
                    obs::Histogram::LatencyBounds(), "command",
                    std::string(verb))
      ->Record(seconds);
}

std::string Service::ExecuteLine(std::string_view line, bool* quit) {
  if (quit != nullptr) *quit = false;
  Result<Command> cmd = ParseCommand(line);
  if (!cmd.ok()) return ErrorJson(cmd.status());
  Stopwatch timer;
  std::string reply = HandleCommand(*cmd, quit);
  RecordCommand(CommandName(cmd->type), timer.ElapsedSeconds());
  return reply;
}

std::string Service::HandleCommand(const Command& cmd, bool* quit) {
  switch (cmd.type) {
    case CommandType::kResp: {
      Status st = Ingest(cmd.worker, cmd.task, cmd.value);
      if (!st.ok()) return ErrorJson(st);
      return StrFormat("{\"ok\":true,\"seq\":%llu}",
                       static_cast<unsigned long long>(last_seq()));
    }
    case CommandType::kEval: {
      Result<core::WorkerAssessment> result = Evaluate(cmd.worker);
      if (!result.ok()) return ErrorJson(result.status());
      return "{\"ok\":true,\"assessment\":" + AssessmentJson(*result) +
             "}";
    }
    case CommandType::kEvalAll: {
      core::MWorkerResult result = EvaluateAll();
      return "{\"ok\":true," + MWorkerResultBodyJson(result) + "}";
    }
    case CommandType::kSpammers: {
      util::MutexLock lock(mu_);
      auto filtered = core::FilterSpammers(evaluator_->responses(),
                                           options_.spammer);
      if (!filtered.ok()) return ErrorJson(filtered.status());
      std::vector<std::string> docs;
      docs.reserve(filtered->removed.size());
      for (data::WorkerId w : filtered->removed) {
        docs.push_back(StrFormat(
            "{\"worker\":%zu,\"proxy_error\":%s}", w,
            JsonDouble(filtered->proxy_error[w]).c_str()));
      }
      return StrFormat("{\"ok\":true,\"threshold\":%s,\"spammers\":[%s]}",
                       JsonDouble(options_.spammer.threshold).c_str(),
                       Join(docs, ",").c_str());
    }
    case CommandType::kStats: {
      const ServiceStats snapshot = stats();
      util::MutexLock lock(mu_);
      return StrFormat(
          "{\"ok\":true,\"stats\":{"
          "\"num_workers\":%zu,\"num_tasks\":%zu,"
          "\"total_responses\":%zu,\"last_seq\":%llu,"
          "\"dirty_workers\":%zu,"
          "\"responses_ingested\":%llu,\"responses_noop\":%llu,"
          "\"responses_rejected\":%llu,"
          "\"eval_cache_hits\":%llu,\"eval_cache_misses\":%llu,"
          "\"eval_all_runs\":%llu,"
          "\"eval_micros_total\":%s,\"last_eval_micros\":%s,"
          "\"journal_bytes\":%llu,\"journal_records\":%llu,"
          "\"snapshots_written\":%llu,\"snapshot_seq\":%llu,"
          "\"recovered_records\":%llu,"
          "\"recovery_truncated_bytes\":%llu}}",
          evaluator_->responses().num_workers(),
          evaluator_->responses().num_tasks(),
          evaluator_->TotalResponses(),
          static_cast<unsigned long long>(last_seq_),
          evaluator_->DirtyWorkerCount(),
          static_cast<unsigned long long>(snapshot.responses_ingested),
          static_cast<unsigned long long>(snapshot.responses_noop),
          static_cast<unsigned long long>(snapshot.responses_rejected),
          static_cast<unsigned long long>(snapshot.eval_cache_hits),
          static_cast<unsigned long long>(snapshot.eval_cache_misses),
          static_cast<unsigned long long>(snapshot.eval_all_runs),
          JsonDouble(snapshot.eval_micros_total).c_str(),
          JsonDouble(snapshot.last_eval_micros).c_str(),
          static_cast<unsigned long long>(snapshot.journal_bytes),
          static_cast<unsigned long long>(snapshot.journal_records),
          static_cast<unsigned long long>(snapshot.snapshots_written),
          static_cast<unsigned long long>(snapshot.snapshot_seq),
          static_cast<unsigned long long>(snapshot.recovered_records),
          static_cast<unsigned long long>(
              snapshot.recovery_truncated_bytes));
    }
    case CommandType::kMetrics:
      return MetricsExposition();
    case CommandType::kSnapshot: {
      Result<uint64_t> seq = TakeSnapshot();
      if (!seq.ok()) return ErrorJson(seq.status());
      return StrFormat(
          "{\"ok\":true,\"snapshot_seq\":%llu,\"journal_bytes\":%llu}",
          static_cast<unsigned long long>(*seq),
          static_cast<unsigned long long>(stats().journal_bytes));
    }
    case CommandType::kQuit:
      if (quit != nullptr) *quit = true;
      return "{\"ok\":true,\"bye\":true}";
  }
  return ErrorJson(Status::Internal("unhandled command"));
}

}  // namespace crowd::server
