// Fuzz harness for snapshot image decoding (server/snapshot.{h,cc}).
//
// Contract under arbitrary bytes:
//  - DecodeSnapshot returns a Result: validated SnapshotData or a
//    non-OK Status. Declared dimensions and payload lengths are
//    checked against the bytes present before any allocation, so no
//    input can cause an over-read or an attacker-chosen allocation
//    (the pre-hardening decoder multiplied two u32 dimensions into a
//    wrapping u64 — see fuzz/corpus/fuzz_snapshot/overflow-dims).
//  - On success every cell is the missing sentinel or in [0, arity),
//    so ToMatrix must succeed.
//  - Round-trip identity: re-encoding the reconstructed matrix under
//    the same applied_seq reproduces the input bit-for-bit.

#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz_util.h"
#include "server/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto decoded = crowd::server::DecodeSnapshot(data, size, "fuzz");
  if (!decoded.ok()) {
    FUZZ_ASSERT(!decoded.status().ok());
    return 0;
  }

  FUZZ_ASSERT(decoded->cells.size() ==
              static_cast<size_t>(decoded->num_workers) *
                  decoded->num_tasks);
  auto matrix = decoded->ToMatrix();
  FUZZ_ASSERT(matrix.ok());
  FUZZ_ASSERT(matrix->num_workers() == decoded->num_workers);
  FUZZ_ASSERT(matrix->num_tasks() == decoded->num_tasks);

  std::vector<uint8_t> encoded =
      crowd::server::EncodeSnapshot(*matrix, decoded->applied_seq);
  FUZZ_ASSERT(encoded.size() == size);
  FUZZ_ASSERT(size == 0 || std::memcmp(encoded.data(), data, size) == 0);
  return 0;
}
