// Fuzz harness for the low-level byte primitives
// (server/binary_io.{h,cc}): the bounds-checked ByteReader cursor,
// the little-endian put/get pairs, and Crc32.
//
// The input drives an op-interpreter over a ByteReader on the input
// itself: each consumed byte selects the next read operation and its
// size. Contract:
//  - No operation ever reads outside [data, data + size) (enforced by
//    ASan/MSan in sanitizer builds).
//  - offset() + remaining() == size at all times.
//  - A failed operation consumes nothing.
//  - PutU32/GetU32 and PutU64/GetU64 are inverses; Crc32 is a pure
//    function of the bytes.

#include <cstdint>
#include <vector>

#include "fuzz_util.h"
#include "server/binary_io.h"

namespace {

using crowd::server::ByteReader;

void CheckInvariants(const ByteReader& reader, size_t size) {
  FUZZ_ASSERT(reader.offset() <= size);
  FUZZ_ASSERT(reader.offset() + reader.remaining() == size);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  CheckInvariants(reader, size);

  uint8_t op = 0;
  while (reader.ReadBytes(&op, 1).ok()) {
    CheckInvariants(reader, size);
    const size_t before = reader.offset();
    bool ok = false;
    switch (op & 0x3) {
      case 0: {
        auto v = reader.ReadU32();
        ok = v.ok();
        if (ok) {
          // The wire codec must reproduce what the reader saw.
          std::vector<uint8_t> buf;
          crowd::server::PutU32(&buf, *v);
          FUZZ_ASSERT(buf.size() == 4);
          FUZZ_ASSERT(crowd::server::GetU32(buf.data()) == *v);
        }
        break;
      }
      case 1: {
        auto v = reader.ReadU64();
        ok = v.ok();
        if (ok) {
          std::vector<uint8_t> buf;
          crowd::server::PutU64(&buf, *v);
          FUZZ_ASSERT(buf.size() == 8);
          FUZZ_ASSERT(crowd::server::GetU64(buf.data()) == *v);
        }
        break;
      }
      case 2: {
        const size_t want = op >> 2;
        std::vector<uint8_t> sink(want);
        ok = reader.ReadBytes(sink.data(), want).ok();
        if (ok) {
          // Copy and borrow views of the same range must agree, so
          // re-check through ReadSpan on a fresh reader positioned at
          // the same offset.
          ByteReader other(data, size);
          FUZZ_ASSERT(other.Skip(before).ok());
          auto span = other.ReadSpan(want);
          FUZZ_ASSERT(span.ok());
          for (size_t i = 0; i < want; ++i) {
            FUZZ_ASSERT((*span)[i] == sink[i]);
          }
        }
        break;
      }
      case 3:
        ok = reader.Skip(op >> 2).ok();
        break;
    }
    CheckInvariants(reader, size);
    if (!ok) {
      // Failed reads must not consume input.
      FUZZ_ASSERT(reader.offset() == before);
    }
  }

  // CRC is deterministic and covers every byte: flipping the last bit
  // of a non-empty input must change it.
  const uint32_t crc = crowd::server::Crc32(data, size);
  FUZZ_ASSERT(crc == crowd::server::Crc32(data, size));
  if (size > 0) {
    std::vector<uint8_t> copy(data, data + size);
    copy.back() ^= 1u;
    FUZZ_ASSERT(crowd::server::Crc32(copy.data(), copy.size()) != crc);
  }
  return 0;
}
