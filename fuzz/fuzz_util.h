// Shared helpers for the libFuzzer harnesses under fuzz/.
//
// Harnesses run both under the libFuzzer engine (Clang,
// CROWDEVAL_SANITIZE containing `fuzzer`) and as plain binaries that
// replay corpus files (fuzz/replay_main.cc, any compiler), so they
// cannot depend on gtest. Contract violations abort via
// __builtin_trap(), which every sanitizer and libFuzzer report with a
// stack trace, after printing the failed expression so the plain
// replay build is debuggable too.

#ifndef CROWD_FUZZ_FUZZ_UTIL_H_
#define CROWD_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string_view>

#define FUZZ_ASSERT(cond)                                            \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n",      \
                   __FILE__, __LINE__, #cond);                       \
      __builtin_trap();                                              \
    }                                                                \
  } while (false)

namespace crowd::fuzz {

/// The input bytes as text, for parsers with string interfaces.
/// libFuzzer may pass (nullptr, 0); keep that clean of UB.
inline std::string_view AsText(const uint8_t* data, size_t size) {
  if (size == 0) return {};
  return std::string_view(reinterpret_cast<const char*>(data), size);
}

}  // namespace crowd::fuzz

#endif  // CROWD_FUZZ_FUZZ_UTIL_H_
