// Fuzz harness for the CSV response loader (util/csv.{h,cc}).
//
// Contract under arbitrary bytes:
//  - ParseCsv returns a Result: a rectangular table or a non-OK
//    Status. Never a crash or OOB access, including on unterminated
//    quotes, NUL bytes, and lone '\r'.
//  - On success every row has exactly as many fields as the header.
//  - Write -> parse is the identity for tables whose serialized form
//    has no line the parser normalizes away (a line that trims to
//    empty or to a leading '#' is a comment/blank on re-parse, the
//    one intentional asymmetry of the format).

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace {

bool RoundTripsVerbatim(const std::string& serialized) {
  size_t start = 0;
  while (start < serialized.size()) {
    size_t end = serialized.find('\n', start);
    if (end == std::string::npos) end = serialized.size();
    std::string_view line(serialized.data() + start, end - start);
    std::string_view trimmed = crowd::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') return false;
    start = end + 1;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(crowd::fuzz::AsText(data, size));

  auto table = crowd::ParseCsv(text);
  if (!table.ok()) {
    FUZZ_ASSERT(!table.status().ok());
    return 0;
  }

  FUZZ_ASSERT(!table->header.empty());
  for (const auto& row : table->rows) {
    FUZZ_ASSERT(row.size() == table->header.size());
  }

  const std::string serialized = crowd::WriteCsv(*table);
  if (!RoundTripsVerbatim(serialized)) return 0;

  auto again = crowd::ParseCsv(serialized);
  FUZZ_ASSERT(again.ok());
  FUZZ_ASSERT(again->header == table->header);
  FUZZ_ASSERT(again->rows == table->rows);
  return 0;
}
