// Standalone driver for the fuzz harnesses in builds without the
// libFuzzer engine (any compiler, no -fsanitize=fuzzer): replays every
// file and directory named on the command line through
// LLVMFuzzerTestOneInput. This is what the `fuzz_regression_*` ctest
// entries run, so the checked-in corpora execute on gcc-only machines
// on every test run, not just in the Clang fuzzing CI job.
//
// libFuzzer flags (arguments starting with '-', e.g. the `-runs=0`
// the ctest command line passes for the real engine) are ignored, so
// the same test command works in both build modes.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

bool ReadBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  out->assign(std::istreambuf_iterator<char>(file),
              std::istreambuf_iterator<char>());
  return !file.bad();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!arg.empty() && arg.front() == '-') continue;  // engine flag
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) {
          inputs.push_back(entry.path().string());
        }
      }
    } else {
      inputs.push_back(arg);
    }
  }
  // Deterministic replay order regardless of directory enumeration.
  std::sort(inputs.begin(), inputs.end());

  size_t replayed = 0;
  for (const std::string& path : inputs) {
    std::vector<uint8_t> bytes;
    if (!ReadBytes(path, &bytes)) {
      std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
      return 1;
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::printf("replayed %zu input(s)\n", replayed);
  if (replayed == 0) {
    std::fprintf(stderr, "replay: no corpus inputs given\n");
    return 1;
  }
  return 0;
}
