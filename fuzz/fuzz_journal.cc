// Fuzz harness for journal record decode and the full recovery replay
// (server/journal.{h,cc}).
//
// Contract under arbitrary bytes:
//  - ReplayJournalBytes returns a Result: a decoded header plus the
//    valid record prefix, or a non-OK Status. Never a crash, OOB read,
//    or attacker-sized allocation.
//  - On success: valid_bytes covers exactly the header plus the
//    accepted records and never exceeds the input; record seqs ascend
//    contiguously from base_seq + 1.
//  - Round-trip identity: re-encoding the decoded header and records
//    reproduces the accepted byte prefix bit-for-bit.

#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz_util.h"
#include "server/journal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto replay = crowd::server::ReplayJournalBytes(data, size, "fuzz");
  if (!replay.ok()) {
    FUZZ_ASSERT(!replay.status().ok());
    return 0;
  }

  const auto& out = *replay;
  FUZZ_ASSERT(out.valid_bytes <= size);
  FUZZ_ASSERT(out.valid_bytes ==
              crowd::server::Journal::kHeaderBytes +
                  out.records.size() * crowd::server::Journal::kRecordBytes);
  uint64_t expected_seq = out.header.base_seq;
  for (const auto& record : out.records) {
    FUZZ_ASSERT(record.seq == expected_seq + 1);
    expected_seq = record.seq;
  }

  // Encode -> decode must be the identity on the accepted prefix.
  std::vector<uint8_t> encoded =
      crowd::server::EncodeJournalHeader(out.header);
  for (const auto& record : out.records) {
    std::vector<uint8_t> rec = crowd::server::EncodeJournalRecord(record);
    encoded.insert(encoded.end(), rec.begin(), rec.end());
  }
  FUZZ_ASSERT(encoded.size() == out.valid_bytes);
  FUZZ_ASSERT(out.valid_bytes == 0 ||
              std::memcmp(encoded.data(), data,
                          static_cast<size_t>(out.valid_bytes)) == 0);

  // A second replay of the canonical bytes must accept everything and
  // agree with the first decode.
  auto again = crowd::server::ReplayJournalBytes(
      encoded.data(), encoded.size(), "fuzz-roundtrip");
  FUZZ_ASSERT(again.ok());
  FUZZ_ASSERT(again->records.size() == out.records.size());
  FUZZ_ASSERT(again->valid_bytes == out.valid_bytes);
  FUZZ_ASSERT(again->header.base_seq == out.header.base_seq);
  return 0;
}
