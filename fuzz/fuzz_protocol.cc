// Fuzz harness for the crowdevald wire-protocol parser
// (server/protocol.{h,cc}).
//
// Contract under arbitrary bytes:
//  - ParseCommand returns a Result: a well-formed Command or a non-OK
//    Status. It never crashes, over-reads, or leaks.
//  - On success the command type is one of the known verbs and RESP /
//    EVAL operands survived strict integer parsing.
//  - JsonEscape output never contains an unescaped control character
//    or quote, so any parse error message embeds cleanly in the
//    one-line JSON error reply.

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "server/protocol.h"

namespace {

using crowd::server::Command;
using crowd::server::CommandType;

bool KnownType(CommandType type) {
  switch (type) {
    case CommandType::kResp:
    case CommandType::kEval:
    case CommandType::kEvalAll:
    case CommandType::kSpammers:
    case CommandType::kStats:
    case CommandType::kMetrics:
    case CommandType::kSnapshot:
    case CommandType::kQuit:
      return true;
  }
  return false;
}

void CheckEscaped(const std::string& text) {
  for (size_t i = 0; i < text.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    FUZZ_ASSERT(c >= 0x20);  // control bytes must be \uXXXX-escaped
    if (c == '"') {
      // Only the escaping backslash may precede a quote; JsonEscape's
      // callers wrap the result in quotes themselves, so a bare quote
      // would truncate the JSON string.
      FUZZ_ASSERT(i > 0 && text[i - 1] == '\\');
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view line = crowd::fuzz::AsText(data, size);

  auto command = crowd::server::ParseCommand(line);
  if (command.ok()) {
    FUZZ_ASSERT(KnownType(command->type));
  } else {
    FUZZ_ASSERT(!command.status().ok());
    FUZZ_ASSERT(!command.status().message().empty());
    // The error must serialize into one clean JSON line: no raw
    // newlines or unescaped quotes even when the message embeds the
    // offending input.
    std::string reply = crowd::server::ErrorJson(command.status());
    FUZZ_ASSERT(!reply.empty() && reply.front() == '{' &&
                reply.back() == '}');
    FUZZ_ASSERT(reply.find('\n') == std::string::npos);
  }

  CheckEscaped(crowd::server::JsonEscape(line));
  return 0;
}
