#!/usr/bin/env bash
# Line-coverage report + gate for the byte-parsing surfaces.
#
# Builds an instrumented tree, runs every suite that feeds the parsers
# (protocol, journal, snapshot, binary_io, csv — unit tests plus the
# fuzz corpus replay), and fails if line coverage of any parser file
# drops below the gate. Two toolchains, auto-selected:
#
#   clang  source-based coverage (-fprofile-instr-generate) reported
#          with llvm-profdata/llvm-cov — precise region counts; what
#          the CI fuzz-smoke job uses.
#   gcc    --coverage + gcov — available everywhere the repo builds.
#
# Usage:
#   scripts/coverage.sh            # build, run, report, gate
#   CC=clang CXX=clang++ scripts/coverage.sh
#   COVERAGE_BUILD_DIR=build-cov scripts/coverage.sh
#
# Per-file gates are the floor measured when the fuzz layer landed
# (gcc 12 gcov line accounting), minus a few points of slack for
# compiler-version drift. Raise them when coverage improves; never
# lower one to make a regression pass.
#
# protocol.cc gates lower than the rest because roughly a third of its
# lines are response *serializers* (BinaryReportJson, KaryResultJson)
# that only execute inside the daemon process, whose counters die with
# it; the parsing half (ParseCommand, Tokenize, JsonEscape) is what
# the fuzz corpus and unit suites saturate.

set -euo pipefail

# path:minimum-line-coverage-percent
PARSER_GATES=(
  src/server/protocol.cc:60
  src/server/journal.cc:82
  src/server/snapshot.cc:90
  src/server/binary_io.cc:90
  src/util/csv.cc:95
)
PARSER_FILES=()
for entry in "${PARSER_GATES[@]}"; do
  PARSER_FILES+=("${entry%:*}")
done

# ctest selection: parser-facing unit suites + the corpus replay.
TEST_REGEX='server_protocol_test|server_persistence_test|server_binary_io_test|server_service_test|server_e2e_test|util_test|fuzz_regression_'

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${COVERAGE_BUILD_DIR:-${ROOT}/build-coverage}"
CXX_BIN="${CXX:-c++}"

cd "${ROOT}"

if "${CXX_BIN}" --version 2>/dev/null | grep -qi clang; then
  MODE=llvm
  CMAKE_COV_FLAGS="-fprofile-instr-generate -fcoverage-mapping"
else
  MODE=gcov
  CMAKE_COV_FLAGS="--coverage"
fi
echo "coverage: ${MODE} mode (CXX=${CXX_BIN}), build dir ${BUILD}"

cmake -B "${BUILD}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${CMAKE_COV_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${CMAKE_COV_FLAGS}" \
  -DCROWDEVAL_BUILD_BENCHMARKS=OFF \
  -DCROWDEVAL_BUILD_EXAMPLES=OFF \
  >/dev/null
cmake --build "${BUILD}" -j"$(nproc)" >/dev/null

if [[ "${MODE}" == llvm ]]; then
  export LLVM_PROFILE_FILE="${BUILD}/coverage-%p.profraw"
fi
# Stale counters from a previous run would dilute the report.
find "${BUILD}" -name '*.gcda' -delete 2>/dev/null || true
rm -f "${BUILD}"/coverage-*.profraw "${BUILD}/coverage.profdata"

ctest --test-dir "${BUILD}" -R "${TEST_REGEX}" --output-on-failure \
  -j"$(nproc)" >/dev/null

# ------------------------------------------------------------------
# Per-file line coverage, one "percent path" line per parser file.

if [[ "${MODE}" == llvm ]]; then
  PROFDATA="${LLVM_PROFDATA:-llvm-profdata}"
  LLVMCOV="${LLVM_COV:-llvm-cov}"
  "${PROFDATA}" merge -sparse "${BUILD}"/coverage-*.profraw \
    -o "${BUILD}/coverage.profdata"
  # Every instrumented test binary contributes mappings; objects after
  # the first need the -object flag.
  mapfile -t BINARIES < <(find "${BUILD}/tests" "${BUILD}/fuzz" \
    -maxdepth 1 -type f -executable 2>/dev/null | sort)
  OBJ_ARGS=()
  for b in "${BINARIES[@]:1}"; do OBJ_ARGS+=(-object "$b"); done
  "${LLVMCOV}" report "${BINARIES[0]}" "${OBJ_ARGS[@]}" \
    -instr-profile="${BUILD}/coverage.profdata" \
    "${PARSER_FILES[@]/#/${ROOT}/}" \
    | python3 - "${ROOT}" <<'PYEOF' > "${BUILD}/parser_coverage.txt"
import sys
root = sys.argv[1].rstrip("/") + "/"
for line in sys.stdin:
    cols = line.split()
    # llvm-cov report rows: Filename ... Lines Missed-Lines Cover ...
    if not cols or not cols[0].endswith(".cc"):
        continue
    path = cols[0]
    if path.startswith(root):
        path = path[len(root):]
    # "Cover" (line coverage) is the 4th column from the end.
    print(f"{cols[-4].rstrip('%')} {path}")
PYEOF
else
  GCOV_DIR="${BUILD}/gcov-report"
  rm -rf "${GCOV_DIR}"
  mkdir -p "${GCOV_DIR}"
  # gcov needs the .gcno/.gcda pairs; feed it every one and let the
  # intermediate report name the sources they compile.
  ( cd "${GCOV_DIR}" && \
    find "${BUILD}/src" -name '*.gcda' -print0 \
      | xargs -0 gcov -r -s "${ROOT}" >/dev/null 2>&1 || true )
  python3 - "${GCOV_DIR}" <<'PYEOF' > "${BUILD}/parser_coverage.txt"
import glob, os, sys
gcov_dir = sys.argv[1]
best = {}
for path in glob.glob(os.path.join(gcov_dir, "*.gcov")):
    source, lines_total, lines_hit = None, 0, 0
    with open(path, errors="replace") as fh:
        for raw in fh:
            parts = raw.split(":", 2)
            if len(parts) < 3:
                continue
            count, lineno = parts[0].strip(), parts[1].strip()
            if lineno == "0":
                if parts[2].startswith("Source:"):
                    source = parts[2][len("Source:"):].strip()
                continue
            if count == "-":
                continue
            lines_total += 1
            if count not in ("#####", "====="):
                lines_hit += 1
    if not source or not lines_total:
        continue
    pct = 100.0 * lines_hit / lines_total
    # The same source can appear once per object file that includes
    # it; counts are per-object, so keep the best-covered instance
    # (the object whose tests actually ran).
    if pct > best.get(source, (-1.0,))[0]:
        best[source] = (pct, lines_hit, lines_total)
for source, (pct, hit, total) in sorted(best.items()):
    print(f"{pct:.2f} {source}")
PYEOF
fi

# ------------------------------------------------------------------
# Gate.

echo
echo "line coverage of parser files (per-file gates):"
fail=0
for entry in "${PARSER_GATES[@]}"; do
  f="${entry%:*}"
  gate="${entry##*:}"
  pct="$(awk -v f="$f" '$2 == f { print $1 }' "${BUILD}/parser_coverage.txt")"
  if [[ -z "${pct}" ]]; then
    echo "  MISSING  ${f} (no coverage data — did its tests run?)"
    fail=1
    continue
  fi
  if python3 -c "import sys; sys.exit(0 if float('${pct}') >= ${gate} else 1)"; then
    echo "  ok   ${pct}%  ${f} (gate ${gate}%)"
  else
    echo "  LOW  ${pct}%  ${f} (gate ${gate}%)"
    fail=1
  fi
done

if [[ "${fail}" -ne 0 ]]; then
  echo "coverage: FAILED — parser file under its gate" >&2
  exit 1
fi
echo "coverage: OK"
