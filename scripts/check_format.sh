#!/usr/bin/env bash
# clang-format check mode: fails listing files whose formatting
# deviates from .clang-format, without rewriting anything. The tree is
# deliberately not bulk-reformatted — the check keeps *new* code clean.
#
#   scripts/check_format.sh            # changed files vs origin/main
#   scripts/check_format.sh --full     # every tracked C++ file
#
# SKIPs (exit 0) when clang-format is unavailable; CI installs it and
# is the enforcing run.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE=changed
BASE=${BASE:-origin/main}
[[ "${1:-}" == --full ]] && MODE=full

FMT=${CLANG_FORMAT:-}
if [[ -z "$FMT" ]]; then
  for candidate in clang-format clang-format-20 clang-format-19 \
                   clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      FMT=$candidate
      break
    fi
  done
fi
if [[ -z "$FMT" ]]; then
  echo "check_format: SKIP — clang-format not installed (CI enforces)"
  exit 0
fi

if [[ "$MODE" == full ]]; then
  mapfile -t FILES < <(git ls-files '*.cc' '*.h' '*.cpp')
else
  mapfile -t FILES < <({ git diff --name-only --diff-filter=d \
                           "$BASE"...HEAD -- '*.cc' '*.h' '*.cpp' || true
                         git diff --name-only --diff-filter=d -- \
                           '*.cc' '*.h' '*.cpp'; } | sort -u)
fi
if [[ ${#FILES[@]} -eq 0 || -z "${FILES[0]}" ]]; then
  echo "check_format: no files in scope"
  exit 0
fi

STATUS=0
for f in "${FILES[@]}"; do
  if ! "$FMT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "check_format: $f needs formatting ($FMT -i $f)" >&2
    STATUS=1
  fi
done
[[ $STATUS -eq 0 ]] && echo "check_format: ${#FILES[@]} file(s) clean"
exit $STATUS
