#!/usr/bin/env bash
# clang-tidy runner for crowdeval.
#
#   scripts/run_tidy.sh                 # changed files vs origin/main
#   scripts/run_tidy.sh --changed REF   # changed files vs REF
#   scripts/run_tidy.sh --full          # whole src/ + tools/ burn-down
#
# Scope: first-party library and shipped binaries (src/, tools/).
# Tests/bench/examples are compiled with -Werror like everything else
# but are not tidy targets — gtest/benchmark macros expand to code that
# trips bugprone checks we cannot annotate.
#
# Requires a configured build dir exporting compile_commands.json
# (cmake -B build -S .; CMAKE_EXPORT_COMPILE_COMMANDS is on by
# default). When clang-tidy is not installed the script reports SKIP
# and exits 0 so local pre-push hooks stay usable on gcc-only boxes;
# CI installs clang-tidy and is the enforcing run.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
MODE=changed
BASE=origin/main

while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) MODE=full; shift ;;
    --changed) MODE=changed; shift
               [[ $# -gt 0 && "$1" != --* ]] && { BASE="$1"; shift; } ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

TIDY=${CLANG_TIDY:-}
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY=$candidate
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "run_tidy: SKIP — clang-tidy not installed (CI enforces this leg)"
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

if [[ "$MODE" == full ]]; then
  mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'tools/*.cc')
else
  mapfile -t FILES < <(git diff --name-only --diff-filter=d "$BASE"...HEAD -- \
                         'src/**/*.cc' 'tools/*.cc'
                       git diff --name-only --diff-filter=d -- \
                         'src/**/*.cc' 'tools/*.cc')
  # De-dup (a file can be both committed and locally modified).
  mapfile -t FILES < <(printf '%s\n' "${FILES[@]}" | sort -u | sed '/^$/d')
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_tidy: no files in scope ($MODE mode)"
  exit 0
fi

echo "run_tidy: $TIDY over ${#FILES[@]} file(s), mode=$MODE"
STATUS=0
for f in "${FILES[@]}"; do
  # WarningsAsErrors in .clang-tidy makes any finding a hard failure.
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
if [[ $STATUS -ne 0 ]]; then
  echo "run_tidy: findings above must be fixed (or per-line" \
       "NOLINT'd with a reason — see .clang-tidy header)" >&2
fi
exit $STATUS
