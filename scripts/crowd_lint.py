#!/usr/bin/env python3
"""crowd-lint: repo-specific invariants that generic tools cannot know.

Each rule protects a cross-cutting contract of the crowdeval codebase;
violating one compiles fine and may even pass tests, so the check has
to live here, in CI, instead of in the type system:

  float-format   In src/server/ every printf-style float conversion
                 must be exactly %.17g. The daemon's JSON replies are
                 compared bit-for-bit against batch output (tier-1
                 determinism tests); any other precision silently
                 breaks the round-trip guarantee.
  iostream       No std::cout / std::cerr in src/ library code. All
                 diagnostics go through CROWD_LOG_* (util/logging.h),
                 which emits complete lines with one write(2) and
                 honours CROWDEVAL_LOG_FORMAT=json. Direct stream
                 writes interleave across threads and bypass the
                 structured-log mode.
  raw-mutex      No std::mutex / std::lock_guard / std::unique_lock /
                 std::scoped_lock (or timed/recursive/shared variants)
                 in src/ outside util/mutex.h. All locking goes
                 through the annotatable util::Mutex shim so Clang's
                 -Wthread-safety sees every acquisition.
  rng            No rand() / srand() / std::random_device in src/
                 outside src/rng/. Reproducibility of every paper
                 figure depends on all randomness flowing through the
                 seeded crowd::rng interfaces.
  raw-byte-read  No raw memcpy / reinterpret_cast in src/server/ or
                 src/util/csv.cc outside server/binary_io.{h,cc}.
                 Those layers decode untrusted bytes (protocol lines,
                 journal records, snapshots, CSV); every read must go
                 through the bounds-checked ByteReader / GetU* API so
                 a truncated or hostile input becomes a Status, not an
                 out-of-bounds access. The fuzz harnesses (fuzz/)
                 enforce the same contract dynamically.
  span-name      Every CROWD_SPAN("...") literal matches the
                 documented `stage.substage` scheme ([a-z0-9_]+ '.'
                 [a-z0-9_]+) so trace dumps group consistently.
  changelog      With --base REF: the diff REF...HEAD touches
                 CHANGES.md (every PR must append its summary line).

Usage:
  scripts/crowd_lint.py [--root DIR] [--base REF] [FILES...]

With no FILES the whole tree under --root (default: the repo root
containing this script) is scanned. Exits 0 when clean, 1 with one
`path:line: [rule] message` diagnostic per violation otherwise.

A violation that is genuinely intended can be waived with a trailing
`// crowd-lint: allow(<rule>)` comment on the offending line; use
sparingly and justify in an adjacent comment.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from typing import Callable, Iterable, List, NamedTuple

C_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")


class Violation(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comment bodies, preserving line structure
    so reported line numbers stay correct. String literals containing
    comment markers are rare enough in this codebase to ignore."""
    # Block comments first (keep newlines), then line comments.
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    text = re.sub(r"//[^\n]*", blank, text)
    return text


def allowed(raw_line: str, rule: str) -> bool:
    return f"crowd-lint: allow({rule})" in raw_line


def match_lines(
    path: str,
    raw_lines: List[str],
    code_lines: List[str],
    pattern: re.Pattern,
    rule: str,
    message: Callable[[re.Match], str],
) -> Iterable[Violation]:
    for i, line in enumerate(code_lines):
        for m in pattern.finditer(line):
            if allowed(raw_lines[i], rule):
                continue
            yield Violation(path, i + 1, rule, message(m))


# --------------------------------------------------------------------
# Rules. Each takes (relpath, raw_lines, code_lines) and yields
# Violations; `code_lines` has comments blanked out.

FLOAT_FMT = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?[aefgAEFG]")


def rule_float_format(path, raw_lines, code_lines):
    if not path.startswith("src/server/"):
        return
    for i, line in enumerate(code_lines):
        for m in FLOAT_FMT.finditer(line):
            if m.group(0) == "%.17g":
                continue
            if allowed(raw_lines[i], "float-format"):
                continue
            yield Violation(
                path, i + 1, "float-format",
                f"float conversion '{m.group(0)}' in the serving layer; "
                "daemon output is compared bit-for-bit against batch "
                "output, so doubles must be formatted with %.17g "
                "(use JsonDouble from server/protocol.h)")


IOSTREAM = re.compile(r"std::c(?:out|err)\b")


def rule_iostream(path, raw_lines, code_lines):
    if not path.startswith("src/"):
        return
    yield from match_lines(
        path, raw_lines, code_lines, IOSTREAM, "iostream",
        lambda m: f"{m.group(0)} in library code; route diagnostics "
        "through CROWD_LOG_* (util/logging.h) so lines stay atomic and "
        "respect the JSON log mode")


RAW_MUTEX = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b")


def rule_raw_mutex(path, raw_lines, code_lines):
    if not path.startswith("src/") or path == "src/util/mutex.h":
        return
    yield from match_lines(
        path, raw_lines, code_lines, RAW_MUTEX, "raw-mutex",
        lambda m: f"{m.group(0)} outside the util::Mutex shim; use "
        "util::Mutex / util::MutexLock (util/mutex.h) so the lock is "
        "visible to Clang thread-safety analysis")


RNG = re.compile(r"\bs?rand\s*\(|std::random_device\b")


def rule_rng(path, raw_lines, code_lines):
    if not path.startswith("src/") or path.startswith("src/rng/"):
        return
    yield from match_lines(
        path, raw_lines, code_lines, RNG, "rng",
        lambda m: f"{m.group(0).strip()} outside src/rng/; all "
        "randomness must flow through the seeded crowd::rng interfaces "
        "or figure reproduction stops being deterministic")


RAW_BYTE_READ = re.compile(r"\b(?:std::)?memcpy\s*\(|\breinterpret_cast\b")

# The byte-parsing layers: everything under src/server/ plus the CSV
# loader. binary_io.{h,cc} is the one place allowed to touch raw
# memory — it implements the bounds-checked reader the rule funnels
# everyone else through.
RAW_BYTE_READ_EXEMPT = ("src/server/binary_io.h", "src/server/binary_io.cc")


def rule_raw_byte_read(path, raw_lines, code_lines):
    if path in RAW_BYTE_READ_EXEMPT:
        return
    if not (path.startswith("src/server/") or path == "src/util/csv.cc"):
        return
    yield from match_lines(
        path, raw_lines, code_lines, RAW_BYTE_READ, "raw-byte-read",
        lambda m: f"{m.group(0).strip().rstrip('(').strip()} in a "
        "byte-parsing layer; decode untrusted input through the "
        "bounds-checked ByteReader / GetU* API (server/binary_io.h) so "
        "truncation surfaces as a Status instead of an OOB read")


SPAN = re.compile(r'CROWD_SPAN\(\s*"([^"]*)"')
SPAN_NAME = re.compile(r"^[a-z0-9_]+\.[a-z0-9_]+$")


def rule_span_name(path, raw_lines, code_lines):
    if not path.startswith(("src/", "tools/")):
        return
    if path == "src/obs/trace.h":  # the macro's own definition
        return
    for i, line in enumerate(code_lines):
        for m in SPAN.finditer(line):
            name = m.group(1)
            if SPAN_NAME.match(name):
                continue
            if allowed(raw_lines[i], "span-name"):
                continue
            yield Violation(
                path, i + 1, "span-name",
                f'span name "{name}" does not match the stage.substage '
                "scheme ([a-z0-9_]+.[a-z0-9_]+) documented in "
                "DESIGN.md §10")


RULES = [
    rule_float_format,
    rule_iostream,
    rule_raw_mutex,
    rule_rng,
    rule_raw_byte_read,
    rule_span_name,
]


def lint_text(relpath: str, text: str) -> List[Violation]:
    """Runs every per-file rule over one file's contents."""
    raw_lines = text.splitlines()
    code_lines = strip_comments(text).splitlines()
    # splitlines() drops a trailing partial line mismatch only if the
    # comment stripper changed the line count, which it never does.
    out: List[Violation] = []
    for rule in RULES:
        out.extend(rule(relpath, raw_lines, code_lines))
    return out


def check_changelog(root: str, base: str) -> List[Violation]:
    """`changelog` rule: the diff against `base` must touch CHANGES.md."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", f"{base}...HEAD"],
            cwd=root, capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError) as exc:
        return [Violation("CHANGES.md", 1, "changelog",
                          f"could not diff against {base}: {exc}")]
    changed = [l for l in diff.stdout.splitlines() if l.strip()]
    if not changed:
        return []  # empty diff (e.g. base == HEAD): nothing to demand
    if "CHANGES.md" not in changed:
        return [Violation(
            "CHANGES.md", 1, "changelog",
            f"diff {base}...HEAD does not touch CHANGES.md; every PR "
            "appends one summary line so the next session knows what "
            "is done")]
    return []


def iter_files(root: str) -> Iterable[str]:
    """Git-tracked candidate files under root (falls back to a walk)."""
    try:
        proc = subprocess.run(["git", "ls-files"], cwd=root,
                              capture_output=True, text=True, check=True)
        names = proc.stdout.splitlines()
    except (OSError, subprocess.CalledProcessError):
        names = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames
                           if d not in (".git", "build", "results")]
            for f in filenames:
                names.append(os.path.relpath(os.path.join(dirpath, f),
                                             root))
    return [n for n in names if n.endswith(C_EXTENSIONS)]


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of scripts/)")
    parser.add_argument("--base", default=None,
                        help="git ref to diff against for the changelog "
                        "rule (e.g. origin/main); off when absent")
    parser.add_argument("files", nargs="*",
                        help="restrict to these paths (relative to root)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = args.files or iter_files(root)

    violations: List[Violation] = []
    for relpath in sorted(files):
        relpath = relpath.replace(os.sep, "/")
        if not relpath.endswith(C_EXTENSIONS):
            continue
        full = os.path.join(root, relpath)
        try:
            with open(full, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            violations.append(Violation(relpath, 1, "io", str(exc)))
            continue
        violations.extend(lint_text(relpath, text))

    if args.base:
        violations.extend(check_changelog(root, args.base))

    for v in violations:
        print(v)
    if violations:
        print(f"crowd-lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
