#!/usr/bin/env bash
# Negative-compile harness for the thread-safety annotations.
#
#   negative_compile_check.sh <compiler> <repo-root>
#
# Three assertions over tests/thread_annotations_negative.cc:
#   1. compiles cleanly with -Wthread-safety -Werror as written;
#   2. FAILS to compile with -DCROWD_NEGATIVE_COMPILE (unguarded read
#      of a CROWD_GUARDED_BY field);
#   3. FAILS to compile with -DCROWD_NEGATIVE_COMPILE_REQUIRES
#      (CROWD_REQUIRES function called without the capability).
# 2 and 3 prove the annotations actually reject the bug class — i.e.
# that deleting a CROWD_GUARDED_BY/MutexLock in real code would break
# the -Wthread-safety build rather than pass silently.
#
# Exit 77 (ctest SKIP_RETURN_CODE) when the compiler is not Clang:
# only Clang implements the analysis; the macros are no-ops elsewhere.

set -euo pipefail

CXX=${1:?usage: negative_compile_check.sh <compiler> <repo-root>}
ROOT=${2:?usage: negative_compile_check.sh <compiler> <repo-root>}
SRC="$ROOT/tests/thread_annotations_negative.cc"
FLAGS=(-std=c++20 -fsyntax-only -I "$ROOT/src" -Wthread-safety -Werror)

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "negative_compile_check: SKIP — $CXX is not Clang," \
       "thread-safety analysis unavailable"
  exit 77
fi

echo "1/3 positive: correctly locked TU must compile"
"$CXX" "${FLAGS[@]}" "$SRC"

echo "2/3 negative: unguarded CROWD_GUARDED_BY read must NOT compile"
if "$CXX" "${FLAGS[@]}" -DCROWD_NEGATIVE_COMPILE "$SRC" 2>/dev/null; then
  echo "FAIL: unguarded access to a guarded field compiled — the" \
       "thread-safety annotations are not being enforced" >&2
  exit 1
fi

echo "3/3 negative: CROWD_REQUIRES call without lock must NOT compile"
if "$CXX" "${FLAGS[@]}" -DCROWD_NEGATIVE_COMPILE_REQUIRES "$SRC" \
    2>/dev/null; then
  echo "FAIL: calling a CROWD_REQUIRES function without the" \
       "capability compiled — the annotations are not enforced" >&2
  exit 1
fi

echo "negative_compile_check: OK"
