# Renders the paper-figure reproductions from the .dat files the bench
# binaries emit. Run the benches first, then:
#
#   gnuplot -c scripts/plot_figures.gp <dir-with-dat-files>
#
# Produces <fig>.png next to each <fig>.dat.

if (ARGC < 1) dir = "." ; else dir = ARG1

set terminal pngcairo size 900,600 font "sans,11"
set grid
set key left top

do_plot(name, xlab, ylab) = sprintf("\
  datafile = '%s/%s.dat'; \
  set output '%s/%s.png'; \
  set xlabel '%s'; set ylabel '%s'; \
  stats datafile skip 2 nooutput; \
  plot for [col=2:STATS_columns] datafile using 1:col with linespoints \
       title columnheader(col)", dir, name, dir, name, xlab, ylab)

# Accuracy panels (include the ideal y = x series emitted by the bench).
eval do_plot("fig2a", "confidence level", "interval-accuracy")
eval do_plot("fig3",  "confidence level", "interval-accuracy")
eval do_plot("fig4",  "confidence level", "interval-accuracy")
eval do_plot("fig5a", "confidence level", "interval-accuracy")
eval do_plot("fig5c", "confidence level", "interval-accuracy")

# Size panels.
eval do_plot("fig1",  "confidence level", "mean interval size")
eval do_plot("fig2b", "density",          "mean interval size")
eval do_plot("fig2c", "confidence level", "mean interval size")
eval do_plot("fig5b", "density",          "mean interval size")

# Ablations.
eval do_plot("ablation_triples",     "confidence level", "mean interval size")
eval do_plot("ablation_kary_refine", "tasks",            "mean max-abs error")
