#!/usr/bin/env bash
# One-command pre-push check: everything CI gates on that can run
# locally, in the order that fails fastest.
#
#   scripts/check.sh            # lint + format + build + tests + tidy
#   scripts/check.sh --quick    # skip the build/test cycle (lint only)
#
# Steps that need a tool the machine lacks (clang-tidy, clang-format)
# SKIP with a notice instead of failing — CI is the enforcing run for
# those. Everything else failing here would fail CI too.

set -uo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == --quick ]] && QUICK=1

BUILD_DIR=${BUILD_DIR:-build}
FAILED=()

step() {
  local name=$1
  shift
  echo
  echo "==> $name"
  if "$@"; then
    echo "==> $name: OK"
  else
    echo "==> $name: FAILED"
    FAILED+=("$name")
  fi
}

step "crowd-lint" python3 scripts/crowd_lint.py
step "crowd-lint unit tests" python3 tests/crowd_lint_test.py
step "format check (changed files)" scripts/check_format.sh

# Bounded libFuzzer pass over the fuzz/ harnesses (CI: fuzz-smoke).
# Needs clang for -fsanitize=fuzzer; without it the corpus replay in
# the plain test run below is the local stand-in.
fuzz_smoke() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "SKIP: clang not found (corpus replay still runs via ctest;"
    echo "      CI job fuzz-smoke is the enforcing run)"
    return 0
  fi
  CC=clang CXX=clang++ cmake -B "$BUILD_DIR-fuzz" -S . \
    -DCROWDEVAL_SANITIZE=fuzzer,address,undefined \
    -DCROWDEVAL_WERROR=OFF -DCROWDEVAL_BUILD_TESTS=OFF \
    -DCROWDEVAL_BUILD_BENCHMARKS=OFF -DCROWDEVAL_BUILD_EXAMPLES=OFF \
    || return 1
  cmake --build "$BUILD_DIR-fuzz" -j --target \
    fuzz_protocol fuzz_journal fuzz_snapshot fuzz_binary_io fuzz_csv \
    || return 1
  local t
  for t in fuzz_protocol fuzz_journal fuzz_snapshot fuzz_binary_io \
           fuzz_csv; do
    "$BUILD_DIR-fuzz/fuzz/$t" -runs=10000 -max_total_time=30 \
      "fuzz/corpus/$t" || return 1
  done
}

# MSan needs an MSan-instrumented libc++ on top of clang; that only
# exists in the CI msan job's cached toolchain, so locally this is a
# availability check, not a run.
msan_note() {
  echo "SKIP: MemorySanitizer needs clang + an MSan-built libc++"
  echo "      (CI job memory-sanitizer is the enforcing run)"
  return 0
}

if [[ $QUICK -eq 0 ]]; then
  step "configure" cmake -B "$BUILD_DIR" -S .
  step "build" cmake --build "$BUILD_DIR" -j
  step "tests (incl. fuzz corpus replay)" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j
  step "fuzz smoke (bounded libFuzzer)" fuzz_smoke
  step "msan" msan_note
  step "clang-tidy (changed files)" scripts/run_tidy.sh --changed
fi

echo
if [[ ${#FAILED[@]} -gt 0 ]]; then
  echo "check.sh: FAILED steps: ${FAILED[*]}"
  exit 1
fi
echo "check.sh: all checks passed"
