#!/usr/bin/env bash
# One-command pre-push check: everything CI gates on that can run
# locally, in the order that fails fastest.
#
#   scripts/check.sh            # lint + format + build + tests + tidy
#   scripts/check.sh --quick    # skip the build/test cycle (lint only)
#
# Steps that need a tool the machine lacks (clang-tidy, clang-format)
# SKIP with a notice instead of failing — CI is the enforcing run for
# those. Everything else failing here would fail CI too.

set -uo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == --quick ]] && QUICK=1

BUILD_DIR=${BUILD_DIR:-build}
FAILED=()

step() {
  local name=$1
  shift
  echo
  echo "==> $name"
  if "$@"; then
    echo "==> $name: OK"
  else
    echo "==> $name: FAILED"
    FAILED+=("$name")
  fi
}

step "crowd-lint" python3 scripts/crowd_lint.py
step "crowd-lint unit tests" python3 tests/crowd_lint_test.py
step "format check (changed files)" scripts/check_format.sh

if [[ $QUICK -eq 0 ]]; then
  step "configure" cmake -B "$BUILD_DIR" -S .
  step "build" cmake --build "$BUILD_DIR" -j
  step "tests" ctest --test-dir "$BUILD_DIR" --output-on-failure -j
  step "clang-tidy (changed files)" scripts/run_tidy.sh --changed
fi

echo
if [[ ${#FAILED[@]} -gt 0 ]]; then
  echo "check.sh: FAILED steps: ${FAILED[*]}"
  exit 1
fi
echo "check.sh: all checks passed"
