#!/usr/bin/env python3
"""Black-box smoke test of the crowdevald METRICS endpoint.

Starts the daemon on a unix socket, streams a little traffic, scrapes
METRICS, and validates every line of the exposition:

  * comment lines must be `# HELP <name> ...` / `# TYPE <name> <kind>`
    (or the terminating `# EOF`),
  * sample lines must be `name[{labels}] value` with a well-formed
    metric name and a parseable float value,
  * the reply must end with the `# EOF` terminator line,
  * at least MIN_FAMILIES distinct families must be present, spanning
    the core, server, and util modules.

Exits non-zero (with the offending lines on stderr) on any violation.

Usage: metrics_smoke.py /path/to/crowdevald
"""

import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

MIN_FAMILIES = 12
REQUIRED_PREFIXES = ("crowdeval_core_", "crowdeval_server_",
                     "crowdeval_util_")

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
COMMENT_RE = re.compile(
    r"^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+|"
    r"TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})? (?P<value>\S+)$")


def recv_until_eof(sock):
    data = b""
    sock.settimeout(10.0)
    while b"# EOF\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError("connection closed before # EOF")
        data += chunk
    return data.decode("utf-8")


def roundtrip_line(sock, command):
    sock.sendall(command.encode("utf-8") + b"\n")
    data = b""
    sock.settimeout(10.0)
    while not data.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError("connection closed mid-reply")
        data += chunk
    return data.decode("utf-8").rstrip("\n")


def validate(text):
    errors = []
    families = set()
    saw_eof = False
    for line in text.splitlines():
        if saw_eof:
            errors.append("content after # EOF: %r" % line)
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if not line:
            continue
        if line.startswith("#"):
            if not COMMENT_RE.match(line):
                errors.append("malformed comment line: %r" % line)
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append("malformed sample line: %r" % line)
            continue
        name = m.group("name")
        try:
            float(m.group("value"))
        except ValueError:
            errors.append("non-numeric value: %r" % line)
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        families.add(family)
    if not saw_eof:
        errors.append("missing # EOF terminator")
    if len(families) < MIN_FAMILIES:
        errors.append("only %d metric families (< %d): %s" %
                      (len(families), MIN_FAMILIES, sorted(families)))
    for prefix in REQUIRED_PREFIXES:
        if not any(f.startswith(prefix) for f in families):
            errors.append("no family with prefix %s" % prefix)
    return errors, families


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    tmpdir = tempfile.mkdtemp(prefix="crowdevald_smoke_")
    sock_path = os.path.join(tmpdir, "sock")
    daemon = subprocess.Popen(
        [binary, "serve", "--socket=" + sock_path, "--workers=8",
         "--tasks=40", "--threads=2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        for _ in range(200):
            if os.path.exists(sock_path):
                break
            if daemon.poll() is not None:
                print("daemon exited during startup:\n%s" %
                      daemon.stdout.read().decode("utf-8", "replace"),
                      file=sys.stderr)
                return 1
            time.sleep(0.05)
        else:
            print("daemon never created %s" % sock_path, file=sys.stderr)
            return 1

        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(sock_path)
        # Dense fill so every worker pair overlaps and EVAL_ALL reaches
        # the core pipeline (sparse disjoint patterns evaluate nothing).
        for w in range(8):
            for t in range(40):
                reply = roundtrip_line(
                    sock, "RESP %d %d %d" % (w, t, (w * 7 + t * 13) % 2))
                if not reply.startswith('{"ok":true'):
                    print("RESP rejected: %s" % reply, file=sys.stderr)
                    return 1
        roundtrip_line(sock, "EVAL_ALL")

        sock.sendall(b"METRICS\n")
        text = recv_until_eof(sock)
        sock.close()
    finally:
        daemon.send_signal(signal.SIGTERM)
        daemon.wait(timeout=10)

    errors, families = validate(text)
    if errors:
        for e in errors:
            print("FAIL: %s" % e, file=sys.stderr)
        return 1
    print("ok: %d families, all exposition lines well-formed" %
          len(families))
    return 0


if __name__ == "__main__":
    sys.exit(main())
