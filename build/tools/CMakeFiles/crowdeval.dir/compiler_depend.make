# Empty compiler generated dependencies file for crowdeval.
# This may be replaced when dependencies are built.
