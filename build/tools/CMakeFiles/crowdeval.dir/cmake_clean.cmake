file(REMOVE_RECURSE
  "CMakeFiles/crowdeval.dir/crowdeval.cc.o"
  "CMakeFiles/crowdeval.dir/crowdeval.cc.o.d"
  "crowdeval"
  "crowdeval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdeval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
