# Empty dependencies file for make_datasets.
# This may be replaced when dependencies are built.
