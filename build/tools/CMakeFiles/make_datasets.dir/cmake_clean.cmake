file(REMOVE_RECURSE
  "CMakeFiles/make_datasets.dir/make_datasets.cc.o"
  "CMakeFiles/make_datasets.dir/make_datasets.cc.o.d"
  "make_datasets"
  "make_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
