file(REMOVE_RECURSE
  "libcrowd_data.a"
)
