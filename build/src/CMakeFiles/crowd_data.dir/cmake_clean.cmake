file(REMOVE_RECURSE
  "CMakeFiles/crowd_data.dir/data/dataset.cc.o"
  "CMakeFiles/crowd_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/crowd_data.dir/data/dataset_io.cc.o"
  "CMakeFiles/crowd_data.dir/data/dataset_io.cc.o.d"
  "CMakeFiles/crowd_data.dir/data/overlap_index.cc.o"
  "CMakeFiles/crowd_data.dir/data/overlap_index.cc.o.d"
  "CMakeFiles/crowd_data.dir/data/response_matrix.cc.o"
  "CMakeFiles/crowd_data.dir/data/response_matrix.cc.o.d"
  "libcrowd_data.a"
  "libcrowd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
