
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/crowd_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/crowd_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/crowd_data.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/crowd_data.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/overlap_index.cc" "src/CMakeFiles/crowd_data.dir/data/overlap_index.cc.o" "gcc" "src/CMakeFiles/crowd_data.dir/data/overlap_index.cc.o.d"
  "/root/repo/src/data/response_matrix.cc" "src/CMakeFiles/crowd_data.dir/data/response_matrix.cc.o" "gcc" "src/CMakeFiles/crowd_data.dir/data/response_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crowd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
