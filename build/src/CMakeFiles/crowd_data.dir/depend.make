# Empty dependencies file for crowd_data.
# This may be replaced when dependencies are built.
