file(REMOVE_RECURSE
  "libcrowd_util.a"
)
