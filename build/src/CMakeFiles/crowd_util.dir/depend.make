# Empty dependencies file for crowd_util.
# This may be replaced when dependencies are built.
