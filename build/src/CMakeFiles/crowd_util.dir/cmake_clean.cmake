file(REMOVE_RECURSE
  "CMakeFiles/crowd_util.dir/util/csv.cc.o"
  "CMakeFiles/crowd_util.dir/util/csv.cc.o.d"
  "CMakeFiles/crowd_util.dir/util/logging.cc.o"
  "CMakeFiles/crowd_util.dir/util/logging.cc.o.d"
  "CMakeFiles/crowd_util.dir/util/status.cc.o"
  "CMakeFiles/crowd_util.dir/util/status.cc.o.d"
  "CMakeFiles/crowd_util.dir/util/string_util.cc.o"
  "CMakeFiles/crowd_util.dir/util/string_util.cc.o.d"
  "libcrowd_util.a"
  "libcrowd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
