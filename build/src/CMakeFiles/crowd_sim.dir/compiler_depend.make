# Empty compiler generated dependencies file for crowd_sim.
# This may be replaced when dependencies are built.
