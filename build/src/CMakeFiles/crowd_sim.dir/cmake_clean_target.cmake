file(REMOVE_RECURSE
  "libcrowd_sim.a"
)
