
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assignment.cc" "src/CMakeFiles/crowd_sim.dir/sim/assignment.cc.o" "gcc" "src/CMakeFiles/crowd_sim.dir/sim/assignment.cc.o.d"
  "/root/repo/src/sim/binary_worker.cc" "src/CMakeFiles/crowd_sim.dir/sim/binary_worker.cc.o" "gcc" "src/CMakeFiles/crowd_sim.dir/sim/binary_worker.cc.o.d"
  "/root/repo/src/sim/kary_worker.cc" "src/CMakeFiles/crowd_sim.dir/sim/kary_worker.cc.o" "gcc" "src/CMakeFiles/crowd_sim.dir/sim/kary_worker.cc.o.d"
  "/root/repo/src/sim/paper_datasets.cc" "src/CMakeFiles/crowd_sim.dir/sim/paper_datasets.cc.o" "gcc" "src/CMakeFiles/crowd_sim.dir/sim/paper_datasets.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/crowd_sim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/crowd_sim.dir/sim/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crowd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
