file(REMOVE_RECURSE
  "CMakeFiles/crowd_sim.dir/sim/assignment.cc.o"
  "CMakeFiles/crowd_sim.dir/sim/assignment.cc.o.d"
  "CMakeFiles/crowd_sim.dir/sim/binary_worker.cc.o"
  "CMakeFiles/crowd_sim.dir/sim/binary_worker.cc.o.d"
  "CMakeFiles/crowd_sim.dir/sim/kary_worker.cc.o"
  "CMakeFiles/crowd_sim.dir/sim/kary_worker.cc.o.d"
  "CMakeFiles/crowd_sim.dir/sim/paper_datasets.cc.o"
  "CMakeFiles/crowd_sim.dir/sim/paper_datasets.cc.o.d"
  "CMakeFiles/crowd_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/crowd_sim.dir/sim/simulator.cc.o.d"
  "libcrowd_sim.a"
  "libcrowd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
