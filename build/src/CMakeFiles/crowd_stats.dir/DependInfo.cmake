
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/delta_method.cc" "src/CMakeFiles/crowd_stats.dir/stats/delta_method.cc.o" "gcc" "src/CMakeFiles/crowd_stats.dir/stats/delta_method.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/crowd_stats.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/crowd_stats.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/intervals.cc" "src/CMakeFiles/crowd_stats.dir/stats/intervals.cc.o" "gcc" "src/CMakeFiles/crowd_stats.dir/stats/intervals.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/CMakeFiles/crowd_stats.dir/stats/normal.cc.o" "gcc" "src/CMakeFiles/crowd_stats.dir/stats/normal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crowd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
