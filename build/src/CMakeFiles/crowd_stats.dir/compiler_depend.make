# Empty compiler generated dependencies file for crowd_stats.
# This may be replaced when dependencies are built.
