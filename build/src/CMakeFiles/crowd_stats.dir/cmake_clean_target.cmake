file(REMOVE_RECURSE
  "libcrowd_stats.a"
)
