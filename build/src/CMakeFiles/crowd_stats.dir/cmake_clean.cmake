file(REMOVE_RECURSE
  "CMakeFiles/crowd_stats.dir/stats/delta_method.cc.o"
  "CMakeFiles/crowd_stats.dir/stats/delta_method.cc.o.d"
  "CMakeFiles/crowd_stats.dir/stats/descriptive.cc.o"
  "CMakeFiles/crowd_stats.dir/stats/descriptive.cc.o.d"
  "CMakeFiles/crowd_stats.dir/stats/intervals.cc.o"
  "CMakeFiles/crowd_stats.dir/stats/intervals.cc.o.d"
  "CMakeFiles/crowd_stats.dir/stats/normal.cc.o"
  "CMakeFiles/crowd_stats.dir/stats/normal.cc.o.d"
  "libcrowd_stats.a"
  "libcrowd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
