file(REMOVE_RECURSE
  "CMakeFiles/crowd_baselines.dir/baselines/dawid_skene.cc.o"
  "CMakeFiles/crowd_baselines.dir/baselines/dawid_skene.cc.o.d"
  "CMakeFiles/crowd_baselines.dir/baselines/gold_standard.cc.o"
  "CMakeFiles/crowd_baselines.dir/baselines/gold_standard.cc.o.d"
  "CMakeFiles/crowd_baselines.dir/baselines/majority_vote.cc.o"
  "CMakeFiles/crowd_baselines.dir/baselines/majority_vote.cc.o.d"
  "CMakeFiles/crowd_baselines.dir/baselines/old_technique.cc.o"
  "CMakeFiles/crowd_baselines.dir/baselines/old_technique.cc.o.d"
  "libcrowd_baselines.a"
  "libcrowd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
