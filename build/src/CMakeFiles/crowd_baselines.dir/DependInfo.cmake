
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dawid_skene.cc" "src/CMakeFiles/crowd_baselines.dir/baselines/dawid_skene.cc.o" "gcc" "src/CMakeFiles/crowd_baselines.dir/baselines/dawid_skene.cc.o.d"
  "/root/repo/src/baselines/gold_standard.cc" "src/CMakeFiles/crowd_baselines.dir/baselines/gold_standard.cc.o" "gcc" "src/CMakeFiles/crowd_baselines.dir/baselines/gold_standard.cc.o.d"
  "/root/repo/src/baselines/majority_vote.cc" "src/CMakeFiles/crowd_baselines.dir/baselines/majority_vote.cc.o" "gcc" "src/CMakeFiles/crowd_baselines.dir/baselines/majority_vote.cc.o.d"
  "/root/repo/src/baselines/old_technique.cc" "src/CMakeFiles/crowd_baselines.dir/baselines/old_technique.cc.o" "gcc" "src/CMakeFiles/crowd_baselines.dir/baselines/old_technique.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crowd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
