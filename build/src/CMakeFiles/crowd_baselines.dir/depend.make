# Empty dependencies file for crowd_baselines.
# This may be replaced when dependencies are built.
