file(REMOVE_RECURSE
  "libcrowd_baselines.a"
)
