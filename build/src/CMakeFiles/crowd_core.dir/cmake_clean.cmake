file(REMOVE_RECURSE
  "CMakeFiles/crowd_core.dir/core/agreement.cc.o"
  "CMakeFiles/crowd_core.dir/core/agreement.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/counts_tensor.cc.o"
  "CMakeFiles/crowd_core.dir/core/counts_tensor.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/em_refine.cc.o"
  "CMakeFiles/crowd_core.dir/core/em_refine.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/evaluator.cc.o"
  "CMakeFiles/crowd_core.dir/core/evaluator.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/incremental.cc.o"
  "CMakeFiles/crowd_core.dir/core/incremental.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/kary_estimator.cc.o"
  "CMakeFiles/crowd_core.dir/core/kary_estimator.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/kary_m_worker.cc.o"
  "CMakeFiles/crowd_core.dir/core/kary_m_worker.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/m_worker.cc.o"
  "CMakeFiles/crowd_core.dir/core/m_worker.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/prob_estimate.cc.o"
  "CMakeFiles/crowd_core.dir/core/prob_estimate.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/spammer_filter.cc.o"
  "CMakeFiles/crowd_core.dir/core/spammer_filter.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/three_worker.cc.o"
  "CMakeFiles/crowd_core.dir/core/three_worker.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/triangulation.cc.o"
  "CMakeFiles/crowd_core.dir/core/triangulation.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/triple_combiner.cc.o"
  "CMakeFiles/crowd_core.dir/core/triple_combiner.cc.o.d"
  "CMakeFiles/crowd_core.dir/core/triple_selection.cc.o"
  "CMakeFiles/crowd_core.dir/core/triple_selection.cc.o.d"
  "libcrowd_core.a"
  "libcrowd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
