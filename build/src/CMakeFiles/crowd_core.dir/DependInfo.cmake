
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agreement.cc" "src/CMakeFiles/crowd_core.dir/core/agreement.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/agreement.cc.o.d"
  "/root/repo/src/core/counts_tensor.cc" "src/CMakeFiles/crowd_core.dir/core/counts_tensor.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/counts_tensor.cc.o.d"
  "/root/repo/src/core/em_refine.cc" "src/CMakeFiles/crowd_core.dir/core/em_refine.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/em_refine.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/crowd_core.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/crowd_core.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/kary_estimator.cc" "src/CMakeFiles/crowd_core.dir/core/kary_estimator.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/kary_estimator.cc.o.d"
  "/root/repo/src/core/kary_m_worker.cc" "src/CMakeFiles/crowd_core.dir/core/kary_m_worker.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/kary_m_worker.cc.o.d"
  "/root/repo/src/core/m_worker.cc" "src/CMakeFiles/crowd_core.dir/core/m_worker.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/m_worker.cc.o.d"
  "/root/repo/src/core/prob_estimate.cc" "src/CMakeFiles/crowd_core.dir/core/prob_estimate.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/prob_estimate.cc.o.d"
  "/root/repo/src/core/spammer_filter.cc" "src/CMakeFiles/crowd_core.dir/core/spammer_filter.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/spammer_filter.cc.o.d"
  "/root/repo/src/core/three_worker.cc" "src/CMakeFiles/crowd_core.dir/core/three_worker.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/three_worker.cc.o.d"
  "/root/repo/src/core/triangulation.cc" "src/CMakeFiles/crowd_core.dir/core/triangulation.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/triangulation.cc.o.d"
  "/root/repo/src/core/triple_combiner.cc" "src/CMakeFiles/crowd_core.dir/core/triple_combiner.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/triple_combiner.cc.o.d"
  "/root/repo/src/core/triple_selection.cc" "src/CMakeFiles/crowd_core.dir/core/triple_selection.cc.o" "gcc" "src/CMakeFiles/crowd_core.dir/core/triple_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crowd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
