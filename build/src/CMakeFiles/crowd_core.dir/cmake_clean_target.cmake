file(REMOVE_RECURSE
  "libcrowd_core.a"
)
