# Empty compiler generated dependencies file for crowd_core.
# This may be replaced when dependencies are built.
