# Empty dependencies file for crowd_linalg.
# This may be replaced when dependencies are built.
