
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/cholesky.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/cholesky.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/francis_qr.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/francis_qr.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/francis_qr.cc.o.d"
  "/root/repo/src/linalg/hessenberg.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/hessenberg.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/hessenberg.cc.o.d"
  "/root/repo/src/linalg/jacobi_eigen.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/jacobi_eigen.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/jacobi_eigen.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/lu.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/lu.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/matrix_functions.cc" "src/CMakeFiles/crowd_linalg.dir/linalg/matrix_functions.cc.o" "gcc" "src/CMakeFiles/crowd_linalg.dir/linalg/matrix_functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crowd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
