file(REMOVE_RECURSE
  "CMakeFiles/crowd_linalg.dir/linalg/cholesky.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/cholesky.cc.o.d"
  "CMakeFiles/crowd_linalg.dir/linalg/eigen.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/eigen.cc.o.d"
  "CMakeFiles/crowd_linalg.dir/linalg/francis_qr.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/francis_qr.cc.o.d"
  "CMakeFiles/crowd_linalg.dir/linalg/hessenberg.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/hessenberg.cc.o.d"
  "CMakeFiles/crowd_linalg.dir/linalg/jacobi_eigen.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/jacobi_eigen.cc.o.d"
  "CMakeFiles/crowd_linalg.dir/linalg/lu.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/lu.cc.o.d"
  "CMakeFiles/crowd_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/matrix.cc.o.d"
  "CMakeFiles/crowd_linalg.dir/linalg/matrix_functions.cc.o"
  "CMakeFiles/crowd_linalg.dir/linalg/matrix_functions.cc.o.d"
  "libcrowd_linalg.a"
  "libcrowd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
