file(REMOVE_RECURSE
  "libcrowd_linalg.a"
)
