# Empty compiler generated dependencies file for crowd_experiments.
# This may be replaced when dependencies are built.
