file(REMOVE_RECURSE
  "CMakeFiles/crowd_experiments.dir/experiments/metrics.cc.o"
  "CMakeFiles/crowd_experiments.dir/experiments/metrics.cc.o.d"
  "CMakeFiles/crowd_experiments.dir/experiments/report.cc.o"
  "CMakeFiles/crowd_experiments.dir/experiments/report.cc.o.d"
  "CMakeFiles/crowd_experiments.dir/experiments/runner.cc.o"
  "CMakeFiles/crowd_experiments.dir/experiments/runner.cc.o.d"
  "CMakeFiles/crowd_experiments.dir/experiments/series.cc.o"
  "CMakeFiles/crowd_experiments.dir/experiments/series.cc.o.d"
  "libcrowd_experiments.a"
  "libcrowd_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
