file(REMOVE_RECURSE
  "libcrowd_experiments.a"
)
