file(REMOVE_RECURSE
  "CMakeFiles/crowd_rng.dir/rng/random.cc.o"
  "CMakeFiles/crowd_rng.dir/rng/random.cc.o.d"
  "libcrowd_rng.a"
  "libcrowd_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
