# Empty compiler generated dependencies file for crowd_rng.
# This may be replaced when dependencies are built.
