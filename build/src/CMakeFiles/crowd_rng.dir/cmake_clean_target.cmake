file(REMOVE_RECURSE
  "libcrowd_rng.a"
)
