file(REMOVE_RECURSE
  "CMakeFiles/linalg_lu_test.dir/linalg_lu_test.cc.o"
  "CMakeFiles/linalg_lu_test.dir/linalg_lu_test.cc.o.d"
  "linalg_lu_test"
  "linalg_lu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_lu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
