# Empty dependencies file for core_binary_test.
# This may be replaced when dependencies are built.
