file(REMOVE_RECURSE
  "CMakeFiles/core_binary_test.dir/core_binary_test.cc.o"
  "CMakeFiles/core_binary_test.dir/core_binary_test.cc.o.d"
  "core_binary_test"
  "core_binary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_binary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
