# Empty dependencies file for core_kary_test.
# This may be replaced when dependencies are built.
