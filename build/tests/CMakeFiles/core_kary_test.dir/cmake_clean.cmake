file(REMOVE_RECURSE
  "CMakeFiles/core_kary_test.dir/core_kary_test.cc.o"
  "CMakeFiles/core_kary_test.dir/core_kary_test.cc.o.d"
  "core_kary_test"
  "core_kary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_kary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
