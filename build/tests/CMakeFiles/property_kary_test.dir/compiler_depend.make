# Empty compiler generated dependencies file for property_kary_test.
# This may be replaced when dependencies are built.
