file(REMOVE_RECURSE
  "CMakeFiles/property_kary_test.dir/property_kary_test.cc.o"
  "CMakeFiles/property_kary_test.dir/property_kary_test.cc.o.d"
  "property_kary_test"
  "property_kary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_kary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
