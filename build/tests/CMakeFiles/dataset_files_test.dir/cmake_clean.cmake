file(REMOVE_RECURSE
  "CMakeFiles/dataset_files_test.dir/dataset_files_test.cc.o"
  "CMakeFiles/dataset_files_test.dir/dataset_files_test.cc.o.d"
  "dataset_files_test"
  "dataset_files_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
