file(REMOVE_RECURSE
  "CMakeFiles/comparison_test.dir/comparison_test.cc.o"
  "CMakeFiles/comparison_test.dir/comparison_test.cc.o.d"
  "comparison_test"
  "comparison_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
