file(REMOVE_RECURSE
  "CMakeFiles/core_mworker_test.dir/core_mworker_test.cc.o"
  "CMakeFiles/core_mworker_test.dir/core_mworker_test.cc.o.d"
  "core_mworker_test"
  "core_mworker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mworker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
