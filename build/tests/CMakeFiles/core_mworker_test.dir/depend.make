# Empty dependencies file for core_mworker_test.
# This may be replaced when dependencies are built.
