# Empty compiler generated dependencies file for property_coverage_test.
# This may be replaced when dependencies are built.
