file(REMOVE_RECURSE
  "CMakeFiles/property_coverage_test.dir/property_coverage_test.cc.o"
  "CMakeFiles/property_coverage_test.dir/property_coverage_test.cc.o.d"
  "property_coverage_test"
  "property_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
