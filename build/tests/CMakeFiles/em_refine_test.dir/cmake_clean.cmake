file(REMOVE_RECURSE
  "CMakeFiles/em_refine_test.dir/em_refine_test.cc.o"
  "CMakeFiles/em_refine_test.dir/em_refine_test.cc.o.d"
  "em_refine_test"
  "em_refine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_refine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
