# Empty compiler generated dependencies file for kary_m_worker_test.
# This may be replaced when dependencies are built.
