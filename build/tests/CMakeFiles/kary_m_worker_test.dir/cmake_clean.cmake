file(REMOVE_RECURSE
  "CMakeFiles/kary_m_worker_test.dir/kary_m_worker_test.cc.o"
  "CMakeFiles/kary_m_worker_test.dir/kary_m_worker_test.cc.o.d"
  "kary_m_worker_test"
  "kary_m_worker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kary_m_worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
