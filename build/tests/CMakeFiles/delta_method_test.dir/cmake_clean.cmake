file(REMOVE_RECURSE
  "CMakeFiles/delta_method_test.dir/delta_method_test.cc.o"
  "CMakeFiles/delta_method_test.dir/delta_method_test.cc.o.d"
  "delta_method_test"
  "delta_method_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_method_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
