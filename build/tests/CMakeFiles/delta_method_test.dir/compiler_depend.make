# Empty compiler generated dependencies file for delta_method_test.
# This may be replaced when dependencies are built.
