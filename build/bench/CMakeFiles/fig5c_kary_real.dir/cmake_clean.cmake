file(REMOVE_RECURSE
  "CMakeFiles/fig5c_kary_real.dir/fig5c_kary_real.cc.o"
  "CMakeFiles/fig5c_kary_real.dir/fig5c_kary_real.cc.o.d"
  "fig5c_kary_real"
  "fig5c_kary_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_kary_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
