# Empty dependencies file for fig5c_kary_real.
# This may be replaced when dependencies are built.
