
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_incremental.cc" "bench/CMakeFiles/ablation_incremental.dir/ablation_incremental.cc.o" "gcc" "bench/CMakeFiles/ablation_incremental.dir/ablation_incremental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crowd_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crowd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
