file(REMOVE_RECURSE
  "CMakeFiles/fig3_real_accuracy.dir/fig3_real_accuracy.cc.o"
  "CMakeFiles/fig3_real_accuracy.dir/fig3_real_accuracy.cc.o.d"
  "fig3_real_accuracy"
  "fig3_real_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_real_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
