# Empty dependencies file for fig3_real_accuracy.
# This may be replaced when dependencies are built.
