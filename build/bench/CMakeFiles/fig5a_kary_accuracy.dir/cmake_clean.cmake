file(REMOVE_RECURSE
  "CMakeFiles/fig5a_kary_accuracy.dir/fig5a_kary_accuracy.cc.o"
  "CMakeFiles/fig5a_kary_accuracy.dir/fig5a_kary_accuracy.cc.o.d"
  "fig5a_kary_accuracy"
  "fig5a_kary_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_kary_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
