# Empty dependencies file for fig5a_kary_accuracy.
# This may be replaced when dependencies are built.
