file(REMOVE_RECURSE
  "CMakeFiles/fig1_old_vs_new.dir/fig1_old_vs_new.cc.o"
  "CMakeFiles/fig1_old_vs_new.dir/fig1_old_vs_new.cc.o.d"
  "fig1_old_vs_new"
  "fig1_old_vs_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_old_vs_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
