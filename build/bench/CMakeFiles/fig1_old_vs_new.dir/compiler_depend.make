# Empty compiler generated dependencies file for fig1_old_vs_new.
# This may be replaced when dependencies are built.
