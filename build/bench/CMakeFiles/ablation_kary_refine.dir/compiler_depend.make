# Empty compiler generated dependencies file for ablation_kary_refine.
# This may be replaced when dependencies are built.
