file(REMOVE_RECURSE
  "CMakeFiles/ablation_kary_refine.dir/ablation_kary_refine.cc.o"
  "CMakeFiles/ablation_kary_refine.dir/ablation_kary_refine.cc.o.d"
  "ablation_kary_refine"
  "ablation_kary_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kary_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
