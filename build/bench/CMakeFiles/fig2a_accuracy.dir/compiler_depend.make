# Empty compiler generated dependencies file for fig2a_accuracy.
# This may be replaced when dependencies are built.
