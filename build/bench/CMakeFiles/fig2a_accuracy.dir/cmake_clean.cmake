file(REMOVE_RECURSE
  "CMakeFiles/fig2a_accuracy.dir/fig2a_accuracy.cc.o"
  "CMakeFiles/fig2a_accuracy.dir/fig2a_accuracy.cc.o.d"
  "fig2a_accuracy"
  "fig2a_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
