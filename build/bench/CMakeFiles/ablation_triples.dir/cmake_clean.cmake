file(REMOVE_RECURSE
  "CMakeFiles/ablation_triples.dir/ablation_triples.cc.o"
  "CMakeFiles/ablation_triples.dir/ablation_triples.cc.o.d"
  "ablation_triples"
  "ablation_triples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_triples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
