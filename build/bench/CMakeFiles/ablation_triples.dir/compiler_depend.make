# Empty compiler generated dependencies file for ablation_triples.
# This may be replaced when dependencies are built.
