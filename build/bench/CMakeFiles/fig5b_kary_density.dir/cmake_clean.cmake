file(REMOVE_RECURSE
  "CMakeFiles/fig5b_kary_density.dir/fig5b_kary_density.cc.o"
  "CMakeFiles/fig5b_kary_density.dir/fig5b_kary_density.cc.o.d"
  "fig5b_kary_density"
  "fig5b_kary_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_kary_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
