# Empty dependencies file for fig5b_kary_density.
# This may be replaced when dependencies are built.
