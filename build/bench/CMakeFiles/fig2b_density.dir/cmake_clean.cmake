file(REMOVE_RECURSE
  "CMakeFiles/fig2b_density.dir/fig2b_density.cc.o"
  "CMakeFiles/fig2b_density.dir/fig2b_density.cc.o.d"
  "fig2b_density"
  "fig2b_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
