# Empty compiler generated dependencies file for fig2b_density.
# This may be replaced when dependencies are built.
