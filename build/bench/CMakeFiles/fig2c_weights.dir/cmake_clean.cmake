file(REMOVE_RECURSE
  "CMakeFiles/fig2c_weights.dir/fig2c_weights.cc.o"
  "CMakeFiles/fig2c_weights.dir/fig2c_weights.cc.o.d"
  "fig2c_weights"
  "fig2c_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
