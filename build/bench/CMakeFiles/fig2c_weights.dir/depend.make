# Empty dependencies file for fig2c_weights.
# This may be replaced when dependencies are built.
