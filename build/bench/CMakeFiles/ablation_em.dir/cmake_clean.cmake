file(REMOVE_RECURSE
  "CMakeFiles/ablation_em.dir/ablation_em.cc.o"
  "CMakeFiles/ablation_em.dir/ablation_em.cc.o.d"
  "ablation_em"
  "ablation_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
