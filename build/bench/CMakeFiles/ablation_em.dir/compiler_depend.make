# Empty compiler generated dependencies file for ablation_em.
# This may be replaced when dependencies are built.
