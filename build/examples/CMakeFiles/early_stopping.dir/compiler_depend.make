# Empty compiler generated dependencies file for early_stopping.
# This may be replaced when dependencies are built.
