file(REMOVE_RECURSE
  "CMakeFiles/early_stopping.dir/early_stopping.cpp.o"
  "CMakeFiles/early_stopping.dir/early_stopping.cpp.o.d"
  "early_stopping"
  "early_stopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
