file(REMOVE_RECURSE
  "CMakeFiles/spammer_audit.dir/spammer_audit.cpp.o"
  "CMakeFiles/spammer_audit.dir/spammer_audit.cpp.o.d"
  "spammer_audit"
  "spammer_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammer_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
