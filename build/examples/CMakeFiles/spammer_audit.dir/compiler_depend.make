# Empty compiler generated dependencies file for spammer_audit.
# This may be replaced when dependencies are built.
