file(REMOVE_RECURSE
  "CMakeFiles/peer_grading_kary.dir/peer_grading_kary.cpp.o"
  "CMakeFiles/peer_grading_kary.dir/peer_grading_kary.cpp.o.d"
  "peer_grading_kary"
  "peer_grading_kary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_grading_kary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
