# Empty dependencies file for peer_grading_kary.
# This may be replaced when dependencies are built.
