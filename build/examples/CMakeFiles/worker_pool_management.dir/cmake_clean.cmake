file(REMOVE_RECURSE
  "CMakeFiles/worker_pool_management.dir/worker_pool_management.cpp.o"
  "CMakeFiles/worker_pool_management.dir/worker_pool_management.cpp.o.d"
  "worker_pool_management"
  "worker_pool_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worker_pool_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
