# Empty dependencies file for worker_pool_management.
# This may be replaced when dependencies are built.
