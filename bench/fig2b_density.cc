// Figure 2(b): mean interval size vs data density at confidence 0.8,
// for (n, m) in {(300, 3), (100, 7), (300, 7)} — the paper omits
// (100, 3) because its sizes blow up at low density.
//
// Expected shape: size decreases with density, roughly as 1/d (the
// number of co-attempted tasks behind every agreement rate grows as
// d^2, and the deviation as its inverse square root times sqrt(n)...
// see Section III-D2 for the paper's 1/d argument).

#include "core/m_worker.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"
#include "util/string_util.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "fig2b";
  figure.title = "Interval size vs density (c = 0.8)";
  figure.x_label = "density";
  figure.y_label = "mean interval size";

  const struct {
    size_t m;
    size_t n;
  } configs[] = {{3, 300}, {7, 100}, {7, 300}};

  for (const auto& cfg : configs) {
    std::string label = StrFormat("m%zu_n%zu", cfg.m, cfg.n);
    for (double density : experiments::DensityGrid()) {
      bench::SweepAccumulator acc;
      experiments::RepeatTrials(
          reps, 0xF162B00 + cfg.m * 1000 + cfg.n,
          [&](int, Random* rng) {
            sim::BinarySimConfig config;
            config.num_workers = cfg.m;
            config.num_tasks = cfg.n;
            config.assignment = sim::AssignmentConfig::Iid(density);
            auto sim = sim::SimulateBinary(config, rng);
            core::BinaryOptions options;
            auto result =
                core::MWorkerEvaluate(sim.dataset.responses(), options);
            if (!result.ok()) return;
            for (const auto& a : result->assessments) {
              acc.Add(a.error_rate, a.deviation,
                      sim.true_error_rates[a.worker]);
            }
          });
      figure.AddPoint(label, density, acc.MeanSizeAt(0.8));
    }
  }
  experiments::EmitFigure(figure);
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(100, argc, argv);
  crowd::bench::Banner("Figure 2(b)", "interval size vs density", reps);
  crowd::Run(reps);
  return 0;
}
