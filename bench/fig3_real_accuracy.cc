// Figure 3: interval accuracy vs confidence on the (synthetic
// analogues of the) real binary datasets IC, RTE and TEM, *without*
// spammer pruning.
//
// Expected shape: curves near y = x but sagging below it at high
// confidence — the spammer admixture puts agreement rates near the
// 1/2 singularity, exactly the failure mode the paper diagnoses and
// Figure 4 repairs.

#include "real_accuracy_common.h"

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(10, argc, argv);
  crowd::bench::Banner(
      "Figure 3", "real-data interval accuracy, no spammer pruning",
      reps);
  crowd::bench::RunRealAccuracy(
      "fig3", "Accuracy on real-data analogues (no pruning)",
      /*prefilter=*/false, reps);
  return 0;
}
