// Figure 5(a): interval accuracy vs confidence for the 3-worker k-ary
// method on synthetic data; arity k in {2, 3, 4}, n in {100, 1000}
// regular tasks, worker response matrices drawn from the paper's
// pools, uniform selectivity.
//
// Expected shape: near y = x, conservative (above the line) for small
// n at higher arity, almost exact for n = 1000 or arity 2.

#include <cstdio>

#include "core/kary_estimator.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"
#include "stats/normal.h"
#include "util/string_util.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "fig5a";
  figure.title = "k-ary interval accuracy vs confidence";
  figure.x_label = "confidence";
  figure.y_label = "interval-accuracy";

  const double base_confidence = 0.8;
  const double z0 = *stats::TwoSidedZ(base_confidence);

  for (int arity : {2, 3, 4}) {
    for (size_t n : {size_t{100}, size_t{1000}}) {
      bench::SweepAccumulator acc;
      int failures = 0;
      experiments::RepeatTrials(
          reps, 0xF165A + arity * 31 + n, [&](int, Random* rng) {
            sim::KarySimConfig config;
            config.arity = arity;
            config.num_tasks = n;
            auto sim = sim::SimulateKary(config, rng);
            sim.status().AbortIfNotOk();
            core::KaryOptions options;
            options.confidence = base_confidence;
            auto result = core::KaryEvaluate(sim->dataset.responses(), 0,
                                             1, 2, options);
            if (!result.ok()) {
              ++failures;
              return;
            }
            for (int w = 0; w < 3; ++w) {
              const auto& est = result->workers[w];
              for (int r = 0; r < arity; ++r) {
                for (int c = 0; c < arity; ++c) {
                  const auto& ci = est.intervals[r][c];
                  acc.Add(ci.center(), ci.size() / (2.0 * z0),
                          sim->true_matrices[w](r, c));
                }
              }
            }
          });
      std::string label = StrFormat("k%d_n%zu", arity, n);
      for (double c : experiments::ConfidenceGrid()) {
        figure.AddPoint(label, c, acc.AccuracyAt(c));
      }
      if (failures > 0) {
        std::printf("# %s: %d/%d trials degenerate (skipped)\n",
                    label.c_str(), failures, reps);
      }
    }
  }
  for (double c : experiments::ConfidenceGrid()) {
    figure.AddPoint("ideal", c, c);
  }
  experiments::EmitFigure(figure);
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(60, argc, argv);
  crowd::bench::Banner("Figure 5(a)", "k-ary interval accuracy", reps);
  crowd::Run(reps);
  return 0;
}
