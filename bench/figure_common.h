// Shared helpers for the figure-reproduction benches.
//
// All of the paper's intervals have the Theorem-1 form
// center +- z(c) * deviation, so one estimator run yields the interval
// size and the coverage indicator for *every* confidence level c —
// the sweeps below exploit that instead of re-running the estimator
// per level.

#ifndef CROWDEVAL_BENCH_FIGURE_COMMON_H_
#define CROWDEVAL_BENCH_FIGURE_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "experiments/runner.h"
#include "stats/normal.h"
#include "util/logging.h"

namespace crowd::bench {

/// One Theorem-1-shaped interval observation against its truth.
struct Observation {
  double center = 0.0;
  double deviation = 0.0;
  double truth = 0.0;
};

/// \brief Accumulates observations and answers, for any confidence
/// level, the interval-accuracy and mean interval size.
class SweepAccumulator {
 public:
  void Add(const Observation& obs) { observations_.push_back(obs); }
  void Add(double center, double deviation, double truth) {
    observations_.push_back({center, deviation, truth});
  }

  size_t size() const { return observations_.size(); }

  /// Fraction of intervals center +- z(c) dev containing the truth.
  double AccuracyAt(double confidence) const {
    if (observations_.empty()) return 0.0;
    double z = *stats::TwoSidedZ(confidence);
    size_t covered = 0;
    for (const auto& o : observations_) {
      if (std::fabs(o.truth - o.center) <= z * o.deviation) ++covered;
    }
    return static_cast<double>(covered) /
           static_cast<double>(observations_.size());
  }

  /// Mean size of the intervals center +- z(c) dev, clipped to the
  /// estimand's admissible domain [0, 1/2] (an error rate under the
  /// paper's non-malicious-worker assumption): an interval reaching
  /// past the domain carries no extra information, and without the
  /// clip a single near-singular draw would dominate the mean.
  double MeanSizeAt(double confidence) const {
    if (observations_.empty()) return 0.0;
    double z = *stats::TwoSidedZ(confidence);
    double sum = 0.0;
    for (const auto& o : observations_) {
      double lo = std::max(0.0, o.center - z * o.deviation);
      double hi = std::min(0.5, o.center + z * o.deviation);
      sum += std::max(0.0, hi - lo);
    }
    return sum / static_cast<double>(observations_.size());
  }

 private:
  std::vector<Observation> observations_;
};

/// \brief Prints the standard bench banner.
inline void Banner(const char* fig, const char* description, int reps) {
  std::printf("# %s — %s\n# reps=%d (override with --reps=N or "
              "CROWDEVAL_REPS)\n\n",
              fig, description, reps);
}

}  // namespace crowd::bench

#endif  // CROWDEVAL_BENCH_FIGURE_COMMON_H_
