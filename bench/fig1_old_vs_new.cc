// Figure 1: average confidence-interval size vs confidence level for
// the new technique (this paper) and the old technique (KDD'13 [2]),
// binary regular data, n = 100 tasks, m in {3, 7} workers, worker
// error rates drawn from {0.1, 0.2, 0.3}.
//
// Expected shape: the new intervals are uniformly and substantially
// smaller (~40% at m = 3, c = 0.5), both curves growing with c.

#include <cstdio>

#include "baselines/old_technique.h"
#include "core/m_worker.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"
#include "stats/descriptive.h"
#include "util/string_util.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "fig1";
  figure.title =
      "Interval size vs confidence, new vs old technique (n=100)";
  figure.x_label = "confidence";
  figure.y_label = "mean interval size";

  for (size_t m : {size_t{3}, size_t{7}}) {
    bench::SweepAccumulator new_sizes;
    // The old technique's size is a nonlinear function of c (interval
    // arithmetic with clamping), so it is evaluated per level.
    std::map<double, stats::RunningStat> old_sizes;
    const auto grid = experiments::ConfidenceGrid();

    experiments::RepeatTrials(reps, 0xF16'1000 + m, [&](int, Random* rng) {
      sim::BinarySimConfig config;
      config.num_workers = m;
      config.num_tasks = 100;
      auto sim = sim::SimulateBinary(config, rng);

      core::BinaryOptions options;
      options.confidence = 0.5;  // Size is swept analytically from dev.
      auto result =
          core::MWorkerEvaluate(sim.dataset.responses(), options);
      if (result.ok()) {
        for (const auto& a : result->assessments) {
          new_sizes.Add(a.error_rate, a.deviation,
                        sim.true_error_rates[a.worker]);
        }
      }

      for (double c : grid) {
        baselines::OldTechniqueOptions old_options;
        old_options.confidence = c;
        auto old_result = baselines::OldMWorkerEvaluate(
            sim.dataset.responses(), old_options);
        if (!old_result.ok()) continue;
        for (const auto& a : *old_result) {
          old_sizes[c].Add(a.interval.size());
        }
      }
    });

    for (double c : grid) {
      figure.AddPoint(StrFormat("new_m%zu", m), c, new_sizes.MeanSizeAt(c));
      figure.AddPoint(StrFormat("old_m%zu", m), c, old_sizes[c].mean());
    }
  }
  experiments::EmitFigure(figure);

  // Headline comparison the paper calls out: m=3, c=0.5.
  for (const auto& s : figure.series) {
    for (const auto& p : s.points) {
      if (p.x == 0.5 && (s.label == "new_m3" || s.label == "old_m3")) {
        std::printf("%s @ c=0.5: %.4f\n", s.label.c_str(), p.y);
      }
    }
  }
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(100, argc, argv);
  crowd::bench::Banner("Figure 1",
                       "interval size: new vs old technique", reps);
  crowd::Run(reps);
  return 0;
}
