// Figure 5(b): mean k-ary interval size vs density at confidence 0.8,
// n = 500 tasks, arity k in {2, 3, 4}, each of the three workers
// attempting each task with probability d.
//
// Expected shape: size grows as density falls, and grows sharply with
// arity (the number of estimated parameters is ~k^2 while the data per
// parameter shrinks).

#include "core/kary_estimator.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"
#include "stats/descriptive.h"
#include "util/string_util.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "fig5b";
  figure.title = "k-ary interval size vs density (n=500, c=0.8)";
  figure.x_label = "density";
  figure.y_label = "mean interval size";

  for (int arity : {2, 3, 4}) {
    std::string label = StrFormat("arity%d", arity);
    for (double density : experiments::DensityGrid()) {
      stats::RunningStat sizes;
      experiments::RepeatTrials(
          reps, 0xF165B + arity, [&](int, Random* rng) {
            sim::KarySimConfig config;
            config.arity = arity;
            config.num_tasks = 500;
            config.assignment = sim::AssignmentConfig::Iid(density);
            auto sim = sim::SimulateKary(config, rng);
            sim.status().AbortIfNotOk();
            core::KaryOptions options;
            options.confidence = 0.8;
            auto result = core::KaryEvaluate(sim->dataset.responses(), 0,
                                             1, 2, options);
            if (!result.ok()) return;
            for (int w = 0; w < 3; ++w) {
              for (int r = 0; r < arity; ++r) {
                for (int c = 0; c < arity; ++c) {
                  // Clip to the estimand's [0, 1] domain, as with the
                  // binary figures: the informative part of a response-
                  // probability interval cannot exceed the unit box.
                  sizes.Add(result->workers[w]
                                .intervals[r][c]
                                .ClampTo(0.0, 1.0)
                                .size());
                }
              }
            }
          });
      figure.AddPoint(label, density, sizes.mean());
    }
  }
  experiments::EmitFigure(figure);
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(40, argc, argv);
  crowd::bench::Banner("Figure 5(b)", "k-ary interval size vs density",
                       reps);
  crowd::Run(reps);
  return 0;
}
