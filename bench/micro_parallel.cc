// Serial-vs-parallel wall-clock of the m-worker evaluation engine.
//
// Runs MWorkerEvaluate on the Figure 2 simulation sizes (m ∈ {3, 7},
// n ∈ {100, 300}, density 0.8) plus a production-scale 50×5000 matrix,
// once per thread count, and reports the speedup over the serial
// (num_threads = 1) run. Every parallel result is checked to be
// bit-identical to the serial one — the process exits non-zero on any
// mismatch, so the binary doubles as a determinism check.
//
// Thread counts beyond the machine's core count cannot speed anything
// up; the hardware concurrency is printed so the numbers can be read
// in context.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/m_worker.h"
#include "obs/histogram.h"
#include "rng/random.h"
#include "sim/simulator.h"
#include "util/stopwatch.h"

namespace crowd {
namespace {

struct Case {
  size_t workers;
  size_t tasks;
  double density;
  int reps;  // Timing repetitions; best-of is reported.
};

sim::BinarySimOutput MakeBinary(const Case& c) {
  Random rng(42 + c.workers * 131 + c.tasks);
  sim::BinarySimConfig config;
  config.num_workers = c.workers;
  config.num_tasks = c.tasks;
  config.assignment = sim::AssignmentConfig::Iid(c.density);
  return sim::SimulateBinary(config, &rng);
}

bool BitIdentical(const core::MWorkerResult& a,
                  const core::MWorkerResult& b) {
  if (a.assessments.size() != b.assessments.size()) return false;
  if (a.failures.size() != b.failures.size()) return false;
  for (size_t i = 0; i < a.assessments.size(); ++i) {
    const core::WorkerAssessment& x = a.assessments[i];
    const core::WorkerAssessment& y = b.assessments[i];
    if (x.worker != y.worker || x.error_rate != y.error_rate ||
        x.deviation != y.deviation || x.interval.lo != y.interval.lo ||
        x.interval.hi != y.interval.hi ||
        x.interval.confidence != y.interval.confidence ||
        x.num_triples != y.num_triples || x.any_clamped != y.any_clamped) {
      return false;
    }
  }
  for (size_t i = 0; i < a.failures.size(); ++i) {
    if (a.failures[i].first != b.failures[i].first ||
        a.failures[i].second.code() != b.failures[i].second.code() ||
        a.failures[i].second.message() != b.failures[i].second.message()) {
      return false;
    }
  }
  return true;
}

/// Times `reps` runs; the per-rep wall clocks land in `*hist`
/// (seconds, ns resolution) and the best rep is returned in ms.
double TimedRun(const data::ResponseMatrix& responses,
                const core::BinaryOptions& options, int reps,
                core::MWorkerResult* out, obs::Histogram* hist) {
  double best_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    auto result = core::MWorkerEvaluate(responses, options);
    double ms = static_cast<double>(timer.ElapsedNanos()) * 1e-6;
    result.status().AbortIfNotOk();
    hist->Record(ms * 1e-3);
    best_ms = std::min(best_ms, ms);
    if (rep == 0) *out = std::move(*result);
  }
  return best_ms;
}

}  // namespace

int Main() {
  const std::vector<Case> cases = {
      {3, 100, 0.8, 20},  {7, 100, 0.8, 20}, {3, 300, 0.8, 10},
      {7, 300, 0.8, 10},  {50, 5000, 0.8, 3},
  };
  std::vector<size_t> thread_counts = {1, 2, 4};
  const size_t hw = std::thread::hardware_concurrency();
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("# MWorkerEvaluate serial vs parallel "
              "(hardware cores: %zu)\n", hw);
  std::printf("%-8s %-8s %-8s %-10s %-10s %-8s %s\n", "workers",
              "tasks", "threads", "best_ms", "p50_ms", "speedup",
              "identical");
  bool all_identical = true;
  for (const Case& c : cases) {
    auto sim = MakeBinary(c);
    const data::ResponseMatrix& responses = sim.dataset.responses();
    core::BinaryOptions options;

    core::MWorkerResult serial;
    options.num_threads = 1;
    obs::Histogram serial_hist(obs::Histogram::LatencyBounds());
    double serial_ms =
        TimedRun(responses, options, c.reps, &serial, &serial_hist);
    std::printf("%-8zu %-8zu %-8d %-10.3f %-10.3f %-8.2f %s\n",
                c.workers, c.tasks, 1, serial_ms,
                serial_hist.Quantile(0.5) * 1e3, 1.0, "yes");

    for (size_t threads : thread_counts) {
      if (threads == 1) continue;
      core::MWorkerResult parallel;
      options.num_threads = threads;
      obs::Histogram parallel_hist(obs::Histogram::LatencyBounds());
      double parallel_ms = TimedRun(responses, options, c.reps,
                                    &parallel, &parallel_hist);
      bool identical = BitIdentical(serial, parallel);
      all_identical = all_identical && identical;
      std::printf("%-8zu %-8zu %-8zu %-10.3f %-10.3f %-8.2f %s\n",
                  c.workers, c.tasks, threads, parallel_ms,
                  parallel_hist.Quantile(0.5) * 1e3,
                  serial_ms / parallel_ms, identical ? "yes" : "NO");
    }
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel output differs from the serial run\n");
    return 1;
  }
  return 0;
}

}  // namespace crowd

int main() { return crowd::Main(); }
