// Sustained ingest throughput and evaluation latency of the crowdevald
// serving layer, measured against the in-process Service (no sockets),
// so the numbers isolate the evaluator + journal cost from network
// overhead.
//
// Three configurations are timed on the same random response stream:
//   memory    -- no data dir: pure evaluator cost
//   journal   -- write-ahead journal, no fsync (the daemon's default)
//   compact   -- journal + automatic snapshot/compaction every 10k
// For each: sustained RESP throughput, then the latency distribution
// (p50/p99, via obs::Histogram) of single-worker EVAL calls
// interleaved 1:50 with writes, and the latency of full EVAL_ALL
// passes after write bursts.
//
// The whole suite then runs a second time with the process-wide metric
// registry enabled (obs::EnableMetrics) and the per-config ingest
// overhead of the instrumentation is reported — the budget is <3%.

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "rng/random.h"
#include "server/service.h"
#include "util/stopwatch.h"

namespace crowd {
namespace {

constexpr size_t kWorkers = 50;
constexpr size_t kTasks = 2000;
constexpr size_t kStreamResponses = 50000;
constexpr size_t kEvalEvery = 50;  // one EVAL per 50 RESP

struct Config {
  const char* name;
  bool durable;
  uint64_t snapshot_every;
};

int RunConfig(const Config& config, double* ingest_per_second) {
  server::ServiceOptions options;
  options.num_workers = kWorkers;
  options.num_tasks = kTasks;
  if (config.durable) {
    // Prefer tmpfs: ext4 write-back stalls add run-to-run jitter that
    // swamps the CPU costs this benchmark isolates.
    struct stat sb;
    const char* base =
        (stat("/dev/shm", &sb) == 0 && S_ISDIR(sb.st_mode)) ? "/dev/shm"
                                                            : "/tmp";
    options.data_dir =
        std::string(base) + "/crowd_micro_stream_" + config.name;
    std::remove((options.data_dir + "/journal.crwj").c_str());
  }
  options.snapshot_every = config.snapshot_every;
  auto service = server::Service::Open(options);
  if (!service.ok()) {
    std::fprintf(stderr, "open(%s): %s\n", config.name,
                 service.status().ToString().c_str());
    return 1;
  }

  // Phase 1: sustained ingest, interleaved with single-worker EVALs.
  Random rng(7);
  obs::Histogram eval_hist(obs::Histogram::LatencyBounds());
  Stopwatch total;
  double ingest_seconds = 0.0;
  for (size_t i = 0; i < kStreamResponses; ++i) {
    auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
    auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
    auto v = static_cast<data::Response>(rng.UniformInt(2));
    Stopwatch one;
    Status st = (*service)->Ingest(w, t, v);
    ingest_seconds += one.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return 1;
    }
    if ((i + 1) % kEvalEvery == 0) {
      Stopwatch eval;
      (void)(*service)->Evaluate(w);
      eval_hist.Record(eval.ElapsedSeconds());
    }
  }
  const double wall = total.ElapsedSeconds();

  // Phase 2: EVAL_ALL latency after write bursts of growing staleness.
  obs::Histogram eval_all_hist(obs::Histogram::LatencyBounds());
  for (size_t burst = 0; burst < 20; ++burst) {
    for (size_t i = 0; i < 500; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      (void)(*service)->Ingest(w, t, v);
    }
    Stopwatch eval_all;
    (void)(*service)->EvaluateAll();
    eval_all_hist.Record(eval_all.ElapsedSeconds());
  }

  server::ServiceStats stats = (*service)->stats();
  if (ingest_per_second != nullptr) {
    *ingest_per_second =
        static_cast<double>(kStreamResponses) / ingest_seconds;
  }
  std::printf(
      "%-8s ingest %8.0f resp/s (%5.2f us/resp)  "
      "EVAL p50 %7.1f us p99 %8.1f us  "
      "EVAL_ALL p50 %9.1f us p99 %9.1f us  snapshots %llu\n",
      config.name, static_cast<double>(kStreamResponses) / wall,
      ingest_seconds / static_cast<double>(kStreamResponses) * 1e6,
      eval_hist.Quantile(0.5) * 1e6, eval_hist.Quantile(0.99) * 1e6,
      eval_all_hist.Quantile(0.5) * 1e6,
      eval_all_hist.Quantile(0.99) * 1e6,
      static_cast<unsigned long long>(stats.snapshots_written));
  std::fflush(stdout);
  return 0;
}

int Main() {
  std::printf("streaming service: %zu workers x %zu tasks, %zu-response "
              "stream, 1 EVAL per %zu writes\n",
              kWorkers, kTasks, kStreamResponses, kEvalEvery);
  const Config configs[] = {
      {"memory", false, 0},
      {"journal", true, 0},
      {"compact", true, 10000},
  };
  constexpr size_t kConfigs = sizeof(configs) / sizeof(configs[0]);
  // fsync-heavy configs jitter run to run, so the overhead comparison
  // uses the best rate over kReps interleaved off/on repetitions; a
  // single off-then-on pass confounds metric cost with disk variance.
  constexpr int kReps = 5;
  double rate_off[kConfigs] = {};
  double rate_on[kConfigs] = {};

  for (int rep = 0; rep < kReps; ++rep) {
    std::printf("-- metrics disabled (rep %d/%d) --\n", rep + 1, kReps);
    obs::DisableMetrics();
    for (size_t i = 0; i < kConfigs; ++i) {
      double rate = 0.0;
      int rc = RunConfig(configs[i], &rate);
      if (rc != 0) return rc;
      rate_off[i] = std::max(rate_off[i], rate);
    }
    std::printf("-- metrics enabled (rep %d/%d) --\n", rep + 1, kReps);
    obs::EnableMetrics();
    for (size_t i = 0; i < kConfigs; ++i) {
      double rate = 0.0;
      int rc = RunConfig(configs[i], &rate);
      if (rc != 0) return rc;
      rate_on[i] = std::max(rate_on[i], rate);
    }
  }

  std::printf("metrics ingest overhead, best-of-%d (budget <3%%):", kReps);
  for (size_t i = 0; i < kConfigs; ++i) {
    std::printf("  %s %+.2f%%", configs[i].name,
                (rate_off[i] / rate_on[i] - 1.0) * 100.0);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace crowd

int main() { return crowd::Main(); }
