// Sustained ingest throughput and evaluation latency of the crowdevald
// serving layer, measured against the in-process Service (no sockets),
// so the numbers isolate the evaluator + journal cost from network
// overhead.
//
// Three configurations are timed on the same random response stream:
//   memory    -- no data dir: pure evaluator cost
//   journal   -- write-ahead journal, no fsync (the daemon's default)
//   compact   -- journal + automatic snapshot/compaction every 10k
// For each: sustained RESP throughput, then the latency distribution
// (p50/p99) of single-worker EVAL calls interleaved 1:50 with writes,
// and the latency of full EVAL_ALL passes after write bursts.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "rng/random.h"
#include "server/service.h"
#include "util/stopwatch.h"

namespace crowd {
namespace {

constexpr size_t kWorkers = 50;
constexpr size_t kTasks = 2000;
constexpr size_t kStreamResponses = 50000;
constexpr size_t kEvalEvery = 50;  // one EVAL per 50 RESP

struct Percentiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Percentiles Summarize(std::vector<double>* micros) {
  Percentiles out;
  if (micros->empty()) return out;
  std::sort(micros->begin(), micros->end());
  out.p50 = (*micros)[micros->size() / 2];
  out.p99 = (*micros)[micros->size() * 99 / 100];
  out.max = micros->back();
  return out;
}

struct Config {
  const char* name;
  bool durable;
  uint64_t snapshot_every;
};

int RunConfig(const Config& config) {
  server::ServiceOptions options;
  options.num_workers = kWorkers;
  options.num_tasks = kTasks;
  if (config.durable) {
    options.data_dir =
        "/tmp/crowd_micro_stream_" + std::string(config.name);
    std::remove((options.data_dir + "/journal.crwj").c_str());
  }
  options.snapshot_every = config.snapshot_every;
  auto service = server::Service::Open(options);
  if (!service.ok()) {
    std::fprintf(stderr, "open(%s): %s\n", config.name,
                 service.status().ToString().c_str());
    return 1;
  }

  // Phase 1: sustained ingest, interleaved with single-worker EVALs.
  Random rng(7);
  std::vector<double> eval_micros;
  eval_micros.reserve(kStreamResponses / kEvalEvery);
  Stopwatch total;
  double ingest_seconds = 0.0;
  for (size_t i = 0; i < kStreamResponses; ++i) {
    auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
    auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
    auto v = static_cast<data::Response>(rng.UniformInt(2));
    Stopwatch one;
    Status st = (*service)->Ingest(w, t, v);
    ingest_seconds += one.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return 1;
    }
    if ((i + 1) % kEvalEvery == 0) {
      Stopwatch eval;
      (void)(*service)->Evaluate(w);
      eval_micros.push_back(eval.ElapsedSeconds() * 1e6);
    }
  }
  const double wall = total.ElapsedSeconds();
  Percentiles eval = Summarize(&eval_micros);

  // Phase 2: EVAL_ALL latency after write bursts of growing staleness.
  std::vector<double> eval_all_micros;
  for (size_t burst = 0; burst < 20; ++burst) {
    for (size_t i = 0; i < 500; ++i) {
      auto w = static_cast<data::WorkerId>(rng.UniformInt(kWorkers));
      auto t = static_cast<data::TaskId>(rng.UniformInt(kTasks));
      auto v = static_cast<data::Response>(rng.UniformInt(2));
      (void)(*service)->Ingest(w, t, v);
    }
    Stopwatch eval_all;
    (void)(*service)->EvaluateAll();
    eval_all_micros.push_back(eval_all.ElapsedSeconds() * 1e6);
  }
  Percentiles eval_all = Summarize(&eval_all_micros);

  server::ServiceStats stats = (*service)->stats();
  std::printf(
      "%-8s ingest %8.0f resp/s (%5.2f us/resp)  "
      "EVAL p50 %7.1f us p99 %8.1f us  "
      "EVAL_ALL p50 %9.1f us p99 %9.1f us  snapshots %llu\n",
      config.name, static_cast<double>(kStreamResponses) / wall,
      ingest_seconds / static_cast<double>(kStreamResponses) * 1e6,
      eval.p50, eval.p99, eval_all.p50, eval_all.p99,
      static_cast<unsigned long long>(stats.snapshots_written));
  std::fflush(stdout);
  return 0;
}

int Main() {
  std::printf("streaming service: %zu workers x %zu tasks, %zu-response "
              "stream, 1 EVAL per %zu writes\n",
              kWorkers, kTasks, kStreamResponses, kEvalEvery);
  const Config configs[] = {
      {"memory", false, 0},
      {"journal", true, 0},
      {"compact", true, 10000},
  };
  for (const Config& config : configs) {
    int rc = RunConfig(config);
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace
}  // namespace crowd

int main() { return crowd::Main(); }
