// Figure 2(a): interval-accuracy vs confidence level for the m-worker
// binary non-regular method. Workers attempt each task independently
// with probability 0.8; n in {100, 300}, m in {3, 7}; error rates from
// {0.1, 0.2, 0.3}.
//
// Expected shape: every curve hugs the ideal y = x line.

#include "core/m_worker.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"
#include "util/string_util.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "fig2a";
  figure.title =
      "Accuracy of m-worker binary non-regular intervals (density 0.8)";
  figure.x_label = "confidence";
  figure.y_label = "interval-accuracy";

  const struct {
    size_t m;
    size_t n;
  } configs[] = {{3, 100}, {3, 300}, {7, 100}, {7, 300}};

  for (const auto& cfg : configs) {
    bench::SweepAccumulator acc;
    experiments::RepeatTrials(
        reps, 0xF162A00 + cfg.m * 1000 + cfg.n, [&](int, Random* rng) {
          sim::BinarySimConfig config;
          config.num_workers = cfg.m;
          config.num_tasks = cfg.n;
          config.assignment = sim::AssignmentConfig::Iid(0.8);
          auto sim = sim::SimulateBinary(config, rng);

          core::BinaryOptions options;
          auto result =
              core::MWorkerEvaluate(sim.dataset.responses(), options);
          if (!result.ok()) return;
          for (const auto& a : result->assessments) {
            acc.Add(a.error_rate, a.deviation,
                    sim.true_error_rates[a.worker]);
          }
        });
    std::string label = StrFormat("m%zu_n%zu", cfg.m, cfg.n);
    for (double c : experiments::ConfidenceGrid()) {
      figure.AddPoint(label, c, acc.AccuracyAt(c));
    }
  }
  // The ideal line, as plotted in the paper.
  for (double c : experiments::ConfidenceGrid()) {
    figure.AddPoint("ideal", c, c);
  }
  experiments::EmitFigure(figure);
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(150, argc, argv);
  crowd::bench::Banner("Figure 2(a)",
                       "interval accuracy, binary non-regular", reps);
  crowd::Run(reps);
  return 0;
}
