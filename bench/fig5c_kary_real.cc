// Figure 5(c): k-ary interval accuracy on the real-data analogues —
// MOOC (3-ary after the paper's grade merge), WSD and WS (binary after
// the merges). As in the paper, 50 random worker triples sharing at
// least t tasks (t = 60 / 100 / 30 respectively) are evaluated per
// dataset and the intervals are scored against the gold-standard proxy
// response probabilities.
//
// Expected shape: near-ideal for MOOC; somewhat conservative at low
// confidence for WSD/WS, approaching y = x as confidence rises.

#include <cstdio>
#include <set>
#include <tuple>

#include "core/kary_estimator.h"
#include "data/overlap_index.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/paper_datasets.h"
#include "stats/normal.h"

namespace crowd {
namespace {

struct DatasetSpec {
  const char* name;
  size_t min_common_tasks;
};

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "fig5c";
  figure.title = "k-ary interval accuracy on real-data analogues";
  figure.x_label = "confidence";
  figure.y_label = "interval-accuracy";

  const double base_confidence = 0.8;
  const double z0 = *stats::TwoSidedZ(base_confidence);
  const DatasetSpec specs[] = {{"MOOC", 60}, {"WSD", 100}, {"WS", 30}};
  const size_t kTriplesPerDataset = 50;

  for (const auto& spec : specs) {
    bench::SweepAccumulator acc;
    experiments::RepeatTrials(reps, 0xF165C, [&](int trial, Random* rng) {
      auto dataset = sim::MakePaperDataset(
          spec.name, 500 + static_cast<uint64_t>(trial));
      dataset.status().AbortIfNotOk();
      const auto& responses = dataset->responses();
      const int arity = responses.arity();
      data::OverlapIndex overlap(responses);

      // Sample distinct qualifying triples, as the paper does.
      std::set<std::tuple<size_t, size_t, size_t>> seen;
      size_t evaluated = 0;
      int attempts = 0;
      const size_t m = responses.num_workers();
      while (evaluated < kTriplesPerDataset && attempts < 4000) {
        ++attempts;
        size_t w1 = rng->UniformInt(m);
        size_t w2 = rng->UniformInt(m);
        size_t w3 = rng->UniformInt(m);
        if (w1 == w2 || w1 == w3 || w2 == w3) continue;
        auto key = std::make_tuple(std::min({w1, w2, w3}),
                                   w1 + w2 + w3 - std::min({w1, w2, w3}) -
                                       std::max({w1, w2, w3}),
                                   std::max({w1, w2, w3}));
        if (seen.count(key) > 0) continue;
        if (overlap.TripleCommonCount(w1, w2, w3) < spec.min_common_tasks) {
          continue;
        }
        seen.insert(key);

        core::KaryOptions options;
        options.confidence = base_confidence;
        auto result =
            core::KaryEvaluate(responses, w1, w2, w3, options);
        if (!result.ok()) continue;
        ++evaluated;
        const size_t workers[3] = {w1, w2, w3};
        for (int idx = 0; idx < 3; ++idx) {
          auto proxy = dataset->ProxyResponseMatrix(workers[idx]);
          if (!proxy.ok()) continue;
          for (int r = 0; r < arity; ++r) {
            if (proxy->row_counts[r] == 0) continue;  // Unscorable row.
            for (int c = 0; c < arity; ++c) {
              const auto& ci = result->workers[idx].intervals[r][c];
              acc.Add(ci.center(), ci.size() / (2.0 * z0),
                      proxy->probabilities[r][c]);
            }
          }
        }
      }
      if (evaluated < kTriplesPerDataset) {
        std::printf("# %s trial %d: only %zu/%zu qualifying triples\n",
                    spec.name, trial, evaluated, kTriplesPerDataset);
      }
    });
    for (double c : experiments::ConfidenceGrid()) {
      figure.AddPoint(spec.name, c, acc.AccuracyAt(c));
    }
  }
  for (double c : experiments::ConfidenceGrid()) {
    figure.AddPoint("ideal", c, c);
  }
  experiments::EmitFigure(figure);
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(3, argc, argv);
  crowd::bench::Banner("Figure 5(c)",
                       "k-ary accuracy on real-data analogues", reps);
  crowd::Run(reps);
  return 0;
}
