// Ablation: confidence intervals vs Dawid-Skene EM point estimates —
// the contrast the paper's introduction and related-work sections
// draw. Two findings are quantified:
//
//  1. Point accuracy: EM's error-rate RMSE is comparable to (often
//     slightly better than) the agreement-based point estimate, so the
//     new technique gives up little in point quality.
//  2. Decision quality: EM has no uncertainty measure, so thresholding
//     its point estimate fires workers that merely got unlucky; the
//     interval-based rule (fire only when the whole interval clears
//     the threshold) makes far fewer false firings at similar recall.

#include <cmath>
#include <cstdio>

#include "baselines/dawid_skene.h"
#include "core/evaluator.h"
#include "core/m_worker.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"

namespace crowd {
namespace {

void Run(int reps) {
  const double kFireThreshold = 0.25;  // "Fire workers worse than this."
  double ci_sq_err = 0.0, em_sq_err = 0.0;
  size_t estimates = 0;
  // Firing decisions against the planted truth.
  size_t ci_fired = 0, ci_false_fired = 0;
  size_t em_fired = 0, em_false_fired = 0;
  size_t truly_bad = 0, workers_total = 0;

  experiments::RepeatTrials(reps, 0xAB1E3, [&](int, Random* rng) {
    sim::BinarySimConfig config;
    config.num_workers = 9;
    config.num_tasks = 120;
    config.assignment = sim::AssignmentConfig::Iid(0.8);
    // Pool straddling the threshold so decisions are non-trivial.
    config.pool.error_rates = {0.1, 0.2, 0.3};
    auto sim = sim::SimulateBinary(config, rng);

    core::BinaryOptions options;
    options.confidence = 0.9;
    auto ci_result =
        core::MWorkerEvaluate(sim.dataset.responses(), options);
    auto em_model = baselines::FitDawidSkene(sim.dataset.responses());
    if (!ci_result.ok() || !em_model.ok()) return;

    for (const auto& a : ci_result->assessments) {
      double truth = sim.true_error_rates[a.worker];
      double em_rate = em_model->WorkerErrorRate(a.worker);
      ci_sq_err += (a.error_rate - truth) * (a.error_rate - truth);
      em_sq_err += (em_rate - truth) * (em_rate - truth);
      ++estimates;

      ++workers_total;
      bool actually_bad = truth > kFireThreshold;
      if (actually_bad) ++truly_bad;
      // Interval rule: fire only when confidently above the threshold.
      if (a.interval.lo > kFireThreshold) {
        ++ci_fired;
        if (!actually_bad) ++ci_false_fired;
      }
      // Point rule: fire whenever the point estimate clears it.
      if (em_rate > kFireThreshold) {
        ++em_fired;
        if (!actually_bad) ++em_false_fired;
      }
    }
  });

  std::printf("== ablation_em: CI method vs Dawid-Skene EM ==\n");
  std::printf("(m=9, n=120, density 0.8, fire threshold %.2f, %zu "
              "worker evaluations)\n\n",
              kFireThreshold, workers_total);
  std::printf("point-estimate RMSE:  agreement/CI %.4f   EM %.4f\n",
              std::sqrt(ci_sq_err / static_cast<double>(estimates)),
              std::sqrt(em_sq_err / static_cast<double>(estimates)));
  std::printf("truly bad workers: %zu (%.1f%%)\n", truly_bad,
              100.0 * static_cast<double>(truly_bad) /
                  static_cast<double>(workers_total));
  auto rate = [](size_t num, size_t den) {
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num) /
                          static_cast<double>(den);
  };
  std::printf("CI rule (fire if interval.lo > t):  fired %zu, false "
              "firings %zu (%.1f%% of firings)\n",
              ci_fired, ci_false_fired, rate(ci_false_fired, ci_fired));
  std::printf("EM rule (fire if point > t):        fired %zu, false "
              "firings %zu (%.1f%% of firings)\n",
              em_fired, em_false_fired, rate(em_false_fired, em_fired));
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(150, argc, argv);
  crowd::bench::Banner("Ablation", "intervals vs EM point estimates",
                       reps);
  crowd::Run(reps);
  return 0;
}
