// Ablation: the greedy triple-selection strategy of Section III-C1 vs
// random valid pairing, on heterogeneous-density data where pairing
// quality matters (the same setting as Figure 2(c)).
//
// Expected shape: greedy pairing yields smaller intervals at every
// confidence level, because it concentrates overlap into a few
// high-quality triples that the Lemma 5 weights can then emphasize.

#include <cstdio>

#include "core/m_worker.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "ablation_triples";
  figure.title =
      "Greedy vs random triple selection (m=9, n=150, heterogeneous "
      "density)";
  figure.x_label = "confidence";
  figure.y_label = "mean interval size";

  bench::SweepAccumulator greedy;
  bench::SweepAccumulator random_pairing;

  experiments::RepeatTrials(reps, 0xAB1A7E, [&](int trial, Random* rng) {
    // Window-structured assignment: worker w answers a contiguous
    // half of the task range starting at an evenly spaced offset, so
    // pair overlaps range from ~0 to ~n/2 and pairing choices matter
    // (under iid assignments all pairs look alike and both strategies
    // coincide).
    sim::BinarySimConfig config;
    config.num_workers = 9;
    config.num_tasks = 150;
    auto sim = sim::SimulateBinary(config, rng);
    data::ResponseMatrix windowed(9, 150, 2);
    for (data::WorkerId w = 0; w < 9; ++w) {
      size_t start = (w * 150) / 9;
      for (size_t offset = 0; offset < 75; ++offset) {
        data::TaskId t = (start + offset) % 150;
        auto r = sim.dataset.responses().Get(w, t);
        if (r.has_value()) windowed.Set(w, t, *r).AbortIfNotOk();
      }
    }
    *sim.dataset.mutable_responses() = std::move(windowed);

    for (auto strategy : {core::PairingStrategy::kGreedy,
                          core::PairingStrategy::kRandom}) {
      core::BinaryOptions options;
      options.pairing = strategy;
      options.pairing_seed = static_cast<uint64_t>(trial) + 17;
      auto result =
          core::MWorkerEvaluate(sim.dataset.responses(), options);
      if (!result.ok()) continue;
      auto& acc = strategy == core::PairingStrategy::kGreedy
                      ? greedy
                      : random_pairing;
      for (const auto& a : result->assessments) {
        acc.Add(a.error_rate, a.deviation,
                sim.true_error_rates[a.worker]);
      }
    }
  });

  for (double c : experiments::ConfidenceGrid()) {
    figure.AddPoint("greedy", c, greedy.MeanSizeAt(c));
    figure.AddPoint("random", c, random_pairing.MeanSizeAt(c));
  }
  experiments::EmitFigure(figure);
  std::printf("@ c=0.8: greedy %.4f vs random %.4f\n",
              greedy.MeanSizeAt(0.8), random_pairing.MeanSizeAt(0.8));
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(120, argc, argv);
  crowd::bench::Banner("Ablation", "triple-selection strategy", reps);
  crowd::Run(reps);
  return 0;
}
