// Ablation: incremental vs batch evaluation cost as responses stream
// in (the incremental mode of the paper's conclusion). After every
// batch of responses the current worker's assessment is refreshed;
// the batch path rebuilds the O(m^2 n) overlap statistics each time,
// the incremental path maintains them in O(m) per response and
// re-evaluates only dirty workers.

#include <cstdio>

#include "core/incremental.h"
#include "core/m_worker.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "rng/random.h"
#include "sim/simulator.h"
#include "util/stopwatch.h"

namespace crowd {
namespace {

void Run(int reps) {
  const size_t m = 15;
  const size_t n = 600;
  const size_t kBatch = 50;

  double incremental_seconds = 0.0;
  double batch_seconds = 0.0;
  size_t refreshes = 0;
  bool results_agree = true;

  experiments::RepeatTrials(reps, 0xADD, [&](int, Random* rng) {
    sim::BinarySimConfig config;
    config.num_workers = m;
    config.num_tasks = n;
    config.assignment = sim::AssignmentConfig::Iid(0.7);
    auto sim = sim::SimulateBinary(config, rng);

    // Stream the responses in task order.
    struct Event {
      data::WorkerId w;
      data::TaskId t;
      data::Response r;
    };
    std::vector<Event> stream;
    for (data::TaskId t = 0; t < n; ++t) {
      for (data::WorkerId w = 0; w < m; ++w) {
        auto r = sim.dataset.responses().Get(w, t);
        if (r.has_value()) stream.push_back({w, t, *r});
      }
    }

    core::BinaryOptions options;
    core::IncrementalEvaluator incremental(m, n, options);
    data::ResponseMatrix replay(m, n, 2);

    for (size_t start = 0; start < stream.size(); start += kBatch) {
      size_t end = std::min(start + kBatch, stream.size());
      Stopwatch inc_watch;
      for (size_t e = start; e < end; ++e) {
        incremental.AddResponse(stream[e].w, stream[e].t, stream[e].r)
            .AbortIfNotOk();
      }
      auto inc_result = incremental.EvaluateAll();
      incremental_seconds += inc_watch.ElapsedSeconds();

      Stopwatch batch_watch;
      for (size_t e = start; e < end; ++e) {
        replay.Set(stream[e].w, stream[e].t, stream[e].r).AbortIfNotOk();
      }
      auto batch_result = core::MWorkerEvaluate(replay, options);
      batch_seconds += batch_watch.ElapsedSeconds();
      ++refreshes;

      // Cross-check: both paths see identical data and must agree.
      if (batch_result.ok() &&
          batch_result->assessments.size() ==
              inc_result.assessments.size()) {
        for (size_t i = 0; i < inc_result.assessments.size(); ++i) {
          const auto& a = inc_result.assessments[i];
          const auto& b = batch_result->assessments[i];
          if (a.worker != b.worker ||
              std::fabs(a.error_rate - b.error_rate) > 1e-12 ||
              std::fabs(a.deviation - b.deviation) > 1e-12) {
            results_agree = false;
          }
        }
      } else {
        results_agree =
            results_agree && batch_result.ok() ==
                                 !inc_result.assessments.empty();
      }
    }
  });

  std::printf("== ablation_incremental: streaming refresh cost ==\n");
  std::printf("(m=%zu, n=%zu, batch=%zu responses, %zu refreshes)\n\n",
              m, n, kBatch, refreshes);
  std::printf("incremental path: %.3f s total (%.3f ms per refresh)\n",
              incremental_seconds,
              1e3 * incremental_seconds / static_cast<double>(refreshes));
  std::printf("batch path:       %.3f s total (%.3f ms per refresh)\n",
              batch_seconds,
              1e3 * batch_seconds / static_cast<double>(refreshes));
  std::printf("speedup:          %.2fx\n",
              batch_seconds / incremental_seconds);
  std::printf("assessments identical across paths: %s\n",
              results_agree ? "yes" : "NO (BUG)");
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(3, argc, argv);
  crowd::bench::Banner("Ablation", "incremental vs batch evaluation",
                       reps);
  crowd::Run(reps);
  return 0;
}
