// Ablation: pure spectral point estimates (the paper's ProbEstimate)
// vs spectral-initialized EM refinement, across arity and task count.
//
// Expected shape: refinement cuts point-estimate error substantially,
// and the gap widens with arity (where the spectral steps are worst
// conditioned). The paper's *intervals* are built on the spectral
// estimator — this ablation quantifies what its point estimates leave
// on the table.

#include <cstdio>

#include "core/em_refine.h"
#include "core/kary_estimator.h"
#include "linalg/matrix_functions.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"
#include "stats/descriptive.h"
#include "util/string_util.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "ablation_kary_refine";
  figure.title =
      "Point-estimate error: spectral vs spectral+EM (x = tasks)";
  figure.x_label = "tasks";
  figure.y_label = "mean max-abs error of P estimates";

  for (int arity : {2, 3, 4}) {
    for (size_t n : {size_t{250}, size_t{500}, size_t{1000},
                     size_t{2000}, size_t{4000}}) {
      stats::RunningStat spectral_err;
      stats::RunningStat refined_err;
      experiments::RepeatTrials(
          reps, 0xEB'0000 + arity, [&](int, Random* rng) {
            sim::KarySimConfig config;
            config.arity = arity;
            config.num_tasks = n;
            auto sim = sim::SimulateKary(config, rng);
            sim.status().AbortIfNotOk();
            auto counts = core::CountsTensor::FromResponses(
                sim->dataset.responses(), 0, 1, 2);
            counts.status().AbortIfNotOk();

            auto spectral = core::ProbEstimate(*counts);
            auto refined = core::SpectralThenEm(*counts);
            if (!spectral.ok() || !refined.ok()) return;
            for (int w = 0; w < 3; ++w) {
              linalg::Matrix p = spectral->v(w);
              if (!linalg::NormalizeRowsToSumOne(&p).ok()) return;
              spectral_err.Add(p.MaxAbsDiff(sim->true_matrices[w]));
              refined_err.Add(
                  refined->p[w].MaxAbsDiff(sim->true_matrices[w]));
            }
          });
      figure.AddPoint(StrFormat("spectral_k%d", arity),
                      static_cast<double>(n), spectral_err.mean());
      figure.AddPoint(StrFormat("refined_k%d", arity),
                      static_cast<double>(n), refined_err.mean());
    }
  }
  experiments::EmitFigure(figure);
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(30, argc, argv);
  crowd::bench::Banner("Ablation", "spectral vs spectral+EM refinement",
                       reps);
  crowd::Run(reps);
  return 0;
}
