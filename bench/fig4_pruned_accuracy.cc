// Figure 4: interval accuracy vs confidence on the real-data
// analogues *after* removing workers whose majority-vote proxy error
// exceeds 0.4 (Section III-E2's spammer pruning).
//
// Expected shape: the high-confidence sag of Figure 3 disappears; the
// curves track y = x much more closely.

#include "real_accuracy_common.h"

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(10, argc, argv);
  crowd::bench::Banner(
      "Figure 4", "real-data interval accuracy with spammer pruning",
      reps);
  crowd::bench::RunRealAccuracy(
      "fig4", "Accuracy on real-data analogues (spammers pruned)",
      /*prefilter=*/true, reps);
  return 0;
}
