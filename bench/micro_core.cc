// Microbenchmarks (google-benchmark) validating the complexity claims
// of the paper: the 3-worker method is O(n); the m-worker method is
// O(m^2 n + m^4); the k-ary method is O(k^6 + n k^3) per triple
// (dominated in practice by the (k+1)^3-cell numerical Jacobian, each
// cell costing two spectral estimates).
//
// The BM_Obs* group prices the observability hot paths (src/obs/):
// the gate check when metrics are off, a counter increment, a
// histogram record, and a scoped span in both tracer states. These
// bound what instrumenting a pipeline stage costs.

#include <benchmark/benchmark.h>

#include "baselines/dawid_skene.h"
#include "baselines/old_technique.h"
#include "core/kary_estimator.h"
#include "core/m_worker.h"
#include "core/three_worker.h"
#include "data/overlap_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/random.h"
#include "sim/simulator.h"

namespace crowd {
namespace {

sim::BinarySimOutput MakeBinary(size_t m, size_t n, double density) {
  Random rng(42 + m * 131 + n);
  sim::BinarySimConfig config;
  config.num_workers = m;
  config.num_tasks = n;
  if (density < 1.0) {
    config.assignment = sim::AssignmentConfig::Iid(density);
  }
  return sim::SimulateBinary(config, &rng);
}

void BM_ThreeWorker(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto sim = MakeBinary(3, n, 1.0);
  core::BinaryOptions options;
  for (auto _ : state) {
    auto result = core::ThreeWorkerEvaluate(sim.dataset.responses(),
                                            options);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_ThreeWorker)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity(benchmark::oN);

void BM_MWorker(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto sim = MakeBinary(m, 300, 0.8);
  core::BinaryOptions options;
  for (auto _ : state) {
    auto result = core::MWorkerEvaluate(sim.dataset.responses(), options);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_MWorker)->DenseRange(5, 45, 10)->Complexity();

void BM_OverlapIndexBuild(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto sim = MakeBinary(m, 500, 0.5);
  for (auto _ : state) {
    data::OverlapIndex overlap(sim.dataset.responses());
    benchmark::DoNotOptimize(overlap.CommonCount(0, 1));
  }
}
BENCHMARK(BM_OverlapIndexBuild)->DenseRange(10, 90, 20);

// A diagonally-dominant random pool for arities beyond the paper's
// 2-4 range.
std::vector<linalg::Matrix> PoolForArity(int arity, Random* rng) {
  if (arity <= 4) return {};  // SimulateKary falls back to the paper pool.
  std::vector<linalg::Matrix> pool;
  for (int i = 0; i < 3; ++i) {
    pool.push_back(sim::RandomResponseMatrix(arity, 0.6, 0.9, rng));
  }
  return pool;
}

void BM_KaryEvaluate(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  Random rng(7 + arity);
  sim::KarySimConfig config;
  config.arity = arity;
  config.num_tasks = 500;
  config.matrix_pool = PoolForArity(arity, &rng);
  auto sim = sim::SimulateKary(config, &rng);
  sim.status().AbortIfNotOk();
  core::KaryOptions options;
  for (auto _ : state) {
    auto result =
        core::KaryEvaluate(sim->dataset.responses(), 0, 1, 2, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KaryEvaluate)->DenseRange(2, 5, 1);

void BM_KaryPointEstimateOnly(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  Random rng(7 + arity);
  sim::KarySimConfig config;
  config.arity = arity;
  config.num_tasks = 500;
  config.matrix_pool = PoolForArity(arity, &rng);
  auto sim = sim::SimulateKary(config, &rng);
  sim.status().AbortIfNotOk();
  auto counts = core::CountsTensor::FromResponses(
      sim->dataset.responses(), 0, 1, 2);
  counts.status().AbortIfNotOk();
  for (auto _ : state) {
    auto result = core::ProbEstimate(*counts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KaryPointEstimateOnly)->DenseRange(2, 6, 1);

void BM_OldTechnique(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto sim = MakeBinary(m, 100, 1.0);
  baselines::OldTechniqueOptions options;
  for (auto _ : state) {
    auto result =
        baselines::OldMWorkerEvaluate(sim.dataset.responses(), options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OldTechnique)->Arg(3)->Arg(7)->Arg(15);

void BM_DawidSkene(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto sim = MakeBinary(m, 300, 0.8);
  for (auto _ : state) {
    auto model = baselines::FitDawidSkene(sim.dataset.responses());
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_DawidSkene)->Arg(7)->Arg(21);

// ---- observability hot paths ----------------------------------------
// Each benchmark mirrors the exact instrumentation-site pattern
// (registry gate + function-local-static handle) so the number is what
// a real call site pays, then restores the global off state.

void BM_ObsGateDisabled(benchmark::State& state) {
  obs::DisableMetrics();
  for (auto _ : state) {
    if (obs::Registry* r = obs::MetricsRegistry()) {
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_ObsGateDisabled);

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::EnableMetrics();
  for (auto _ : state) {
    if (obs::Registry* r = obs::MetricsRegistry()) {
      static obs::Counter* const counter = r->GetCounter(
          "crowdeval_bench_increments_total", "bench counter");
      counter->Increment();
    }
  }
  obs::DisableMetrics();
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::EnableMetrics();
  double value = 1e-5;
  for (auto _ : state) {
    if (obs::Registry* r = obs::MetricsRegistry()) {
      static obs::HistogramMetric* const hist =
          r->GetHistogram("crowdeval_bench_record_seconds",
                          "bench histogram", obs::Histogram::LatencyBounds());
      hist->Record(value);
    }
    value += 1e-8;  // defeat a constant-folded bucket search
  }
  obs::DisableMetrics();
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    CROWD_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::StartTracing();
  for (auto _ : state) {
    CROWD_SPAN("bench.enabled");
    benchmark::ClobberMemory();
  }
  obs::StopTracing();
}
BENCHMARK(BM_ObsSpanEnabled);

}  // namespace
}  // namespace crowd

BENCHMARK_MAIN();
