// Shared driver for Figures 3 and 4: interval accuracy on the
// synthetic analogues of the paper's binary real datasets (IC, RTE,
// TEM), with or without the spammer pre-filter. The "true" error rate
// of a worker is the gold-standard proxy, exactly as in the paper.
//
// Unlike the paper (which has one fixed dataset each), the analogues
// can be regenerated per seed, so the reported accuracy is averaged
// over `reps` dataset draws.

#ifndef CROWDEVAL_BENCH_REAL_ACCURACY_COMMON_H_
#define CROWDEVAL_BENCH_REAL_ACCURACY_COMMON_H_

#include <string>

#include "core/evaluator.h"
#include "data/dataset.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/paper_datasets.h"
#include "sim/simulator.h"

namespace crowd::bench {

inline void RunRealAccuracy(const std::string& figure_name,
                            const std::string& title, bool prefilter,
                            int reps) {
  experiments::Figure figure;
  figure.name = figure_name;
  figure.title = title;
  figure.x_label = "confidence";
  figure.y_label = "interval-accuracy";

  for (const std::string& name : {std::string("IC"), std::string("RTE"),
                                  std::string("TEM")}) {
    SweepAccumulator acc;
    experiments::RepeatTrials(
        reps, 0xF1634 + (prefilter ? 100 : 0), [&](int trial, Random* rng) {
          auto dataset = sim::MakePaperDataset(
              name, 1000 + static_cast<uint64_t>(trial));
          dataset.status().AbortIfNotOk();
          // The paper de-regularizes IC by removing 20% of responses.
          if (name == "IC") {
            *dataset->mutable_responses() =
                sim::RemoveResponses(dataset->responses(), 0.2, rng);
          }

          core::CrowdEvaluator::Config config;
          config.prefilter_spammers = prefilter;
          core::CrowdEvaluator evaluator(config);
          auto report = evaluator.EvaluateBinary(dataset->responses());
          if (!report.ok()) return;
          for (const auto& a : report->assessments) {
            auto proxy = dataset->ProxyErrorRate(a.worker);
            if (!proxy.ok()) continue;
            acc.Add(a.error_rate, a.deviation, *proxy);
          }
        });
    for (double c : experiments::ConfidenceGrid()) {
      figure.AddPoint(name, c, acc.AccuracyAt(c));
    }
  }
  for (double c : experiments::ConfidenceGrid()) {
    figure.AddPoint("ideal", c, c);
  }
  experiments::EmitFigure(figure);
}

}  // namespace crowd::bench

#endif  // CROWDEVAL_BENCH_REAL_ACCURACY_COMMON_H_
