// Figure 2(c): mean interval size vs confidence with and without the
// Lemma 5 weight optimization, m = 7 workers, n = 100 tasks, and the
// heterogeneous per-worker densities d_i = (0.5 i + m - i)/m that make
// triples differ in quality.
//
// Expected shape: optimized weights give much smaller intervals
// (the paper reports ~0.05 vs ~0.12 at c = 0.5).

#include <cstdio>

#include "core/m_worker.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "figure_common.h"
#include "sim/simulator.h"

namespace crowd {
namespace {

void Run(int reps) {
  experiments::Figure figure;
  figure.name = "fig2c";
  figure.title =
      "Interval size with optimized vs uniform triple weights (m=7, "
      "n=100)";
  figure.x_label = "confidence";
  figure.y_label = "mean interval size";

  bench::SweepAccumulator optimized;
  bench::SweepAccumulator uniform;

  experiments::RepeatTrials(reps, 0xF162C, [&](int, Random* rng) {
    sim::BinarySimConfig config;
    config.num_workers = 7;
    config.num_tasks = 100;
    config.assignment = sim::AssignmentConfig::PaperHeterogeneous(7);
    auto sim = sim::SimulateBinary(config, rng);

    for (auto scheme :
         {core::WeightScheme::kOptimal, core::WeightScheme::kUniform}) {
      core::BinaryOptions options;
      options.weights = scheme;
      auto result =
          core::MWorkerEvaluate(sim.dataset.responses(), options);
      if (!result.ok()) continue;
      auto& acc = scheme == core::WeightScheme::kOptimal ? optimized
                                                         : uniform;
      for (const auto& a : result->assessments) {
        acc.Add(a.error_rate, a.deviation,
                sim.true_error_rates[a.worker]);
      }
    }
  });

  for (double c : experiments::ConfidenceGrid()) {
    figure.AddPoint("with_optimization", c, optimized.MeanSizeAt(c));
    figure.AddPoint("no_optimization", c, uniform.MeanSizeAt(c));
  }
  experiments::EmitFigure(figure);
  std::printf("@ c=0.5: optimized %.4f vs uniform %.4f\n",
              optimized.MeanSizeAt(0.5), uniform.MeanSizeAt(0.5));
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) {
  int reps = crowd::experiments::ResolveReps(150, argc, argv);
  crowd::bench::Banner("Figure 2(c)",
                       "weight optimization ablation (paper figure)",
                       reps);
  crowd::Run(reps);
  return 0;
}
