// crowdeval — command-line front end to the library.
//
//   crowdeval evaluate   --responses=R.csv [--gold=G.csv]
//                        [--confidence=0.95] [--prune-spammers]
//                        [--uniform-weights] [--clamp-singularities]
//                        [--threads=N] [--format=text|json]
//       Binary worker evaluation (Algorithm A2). Prints one line per
//       worker: point estimate, confidence interval, triples used; and
//       when gold labels are given, the gold-proxy error for reference.
//       --threads=N evaluates workers on N threads (0 = one per core;
//       default 1); the output is identical for every thread count.
//       --format=json emits one JSON document in the crowdevald wire
//       schema (src/server/protocol.h) instead of the table, so batch
//       and daemon output are directly comparable.
//
//   crowdeval evaluate-kary --responses=R.csv --workers=a,b,c
//                        [--gold=G.csv] [--confidence=0.95]
//                        [--format=text|json]
//       k-ary response-probability intervals for one worker triple
//       (Algorithm A3). --format=json emits a single JSON document.
//
//   crowdeval spammers   --responses=R.csv [--threshold=0.4]
//       Majority-vote spammer filter (Section III-E2) — lists flagged
//       workers with their proxy error rates.
//
//   crowdeval summary    --responses=R.csv [--gold=G.csv]
//       Dataset shape/density statistics.
//
//   Any command also accepts --metrics: enables the process-wide
//   metric registry and prints a summary table of every counter and
//   latency histogram the run touched (to stderr, after the normal
//   output) — a quick profile of where a batch run spent its time.
//
// CSV formats are documented in src/data/dataset_io.h; the bundled
// datasets in data/ are directly usable.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "data/dataset_io.h"
#include "obs/metrics.h"
#include "server/protocol.h"
#include "util/string_util.h"

namespace crowd {
namespace {

struct Args {
  std::string command;
  std::string responses;
  std::string gold;
  double confidence = 0.95;
  double threshold = 0.4;
  bool prune_spammers = false;
  bool uniform_weights = false;
  bool clamp_singularities = false;
  size_t threads = 1;
  std::string format = "text";
  bool metrics = false;
  std::vector<size_t> workers;
};

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 2) return Status::Invalid("no command given");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&](std::string_view prefix) -> std::string_view {
      return arg.substr(prefix.size());
    };
    if (StartsWith(arg, "--responses=")) {
      args.responses = value_of("--responses=");
    } else if (StartsWith(arg, "--gold=")) {
      args.gold = value_of("--gold=");
    } else if (StartsWith(arg, "--confidence=")) {
      CROWD_ASSIGN_OR_RETURN(args.confidence,
                             ParseDouble(value_of("--confidence=")));
    } else if (StartsWith(arg, "--threshold=")) {
      CROWD_ASSIGN_OR_RETURN(args.threshold,
                             ParseDouble(value_of("--threshold=")));
    } else if (StartsWith(arg, "--threads=")) {
      CROWD_ASSIGN_OR_RETURN(long long threads,
                             ParseInt(value_of("--threads=")));
      if (threads < 0) return Status::Invalid("negative thread count");
      args.threads = static_cast<size_t>(threads);
    } else if (StartsWith(arg, "--format=")) {
      args.format = value_of("--format=");
      if (args.format != "text" && args.format != "json") {
        return Status::Invalid("--format must be text or json, got " +
                               args.format);
      }
    } else if (arg == "--metrics") {
      args.metrics = true;
    } else if (arg == "--prune-spammers") {
      args.prune_spammers = true;
    } else if (arg == "--uniform-weights") {
      args.uniform_weights = true;
    } else if (arg == "--clamp-singularities") {
      args.clamp_singularities = true;
    } else if (StartsWith(arg, "--workers=")) {
      for (const auto& token :
           Split(std::string(value_of("--workers=")), ',')) {
        CROWD_ASSIGN_OR_RETURN(long long id, ParseInt(token));
        if (id < 0) return Status::Invalid("negative worker id");
        args.workers.push_back(static_cast<size_t>(id));
      }
    } else {
      return Status::Invalid("unknown flag: " + std::string(arg));
    }
  }
  if (args.responses.empty()) {
    return Status::Invalid("--responses=<file> is required");
  }
  return args;
}

Result<data::Dataset> Load(const Args& args) {
  return data::LoadDatasetCsv("cli", args.responses, args.gold);
}

int RunEvaluate(const Args& args) {
  auto dataset = Load(args);
  dataset.status().AbortIfNotOk();
  core::CrowdEvaluator::Config config;
  config.binary.confidence = args.confidence;
  config.prefilter_spammers = args.prune_spammers;
  config.spammer.threshold = args.threshold;
  config.num_threads = args.threads;
  if (args.uniform_weights) {
    config.binary.weights = core::WeightScheme::kUniform;
  }
  if (args.clamp_singularities) {
    config.binary.singularity = core::SingularityPolicy::kClampInflate;
  }
  auto report =
      core::CrowdEvaluator(config).EvaluateBinary(dataset->responses());
  if (!report.ok()) {
    if (args.format == "json") {
      std::printf("%s\n", server::ErrorJson(report.status()).c_str());
    } else {
      std::fprintf(stderr, "evaluation failed: %s\n",
                   report.status().ToString().c_str());
    }
    return 1;
  }
  if (args.format == "json") {
    std::printf("%s\n", server::BinaryReportJson(*report).c_str());
    return 0;
  }
  if (!report->removed_spammers.empty()) {
    std::printf("# pruned %zu suspected spammers:",
                report->removed_spammers.size());
    for (auto w : report->removed_spammers) std::printf(" w%zu", w);
    std::printf("\n");
  }
  std::printf("%-8s %-9s %-24s %-8s %s\n", "worker", "estimate",
              "interval", "triples",
              dataset->GoldCount() > 0 ? "gold-proxy" : "");
  for (const auto& a : report->assessments) {
    std::string proxy_text;
    if (dataset->GoldCount() > 0) {
      auto proxy = dataset->ProxyErrorRate(a.worker);
      proxy_text =
          proxy.ok() ? StrFormat("%.3f", *proxy) : std::string("-");
    }
    std::printf("w%-7zu %-9.3f %-24s %-8zu %s\n", a.worker, a.error_rate,
                a.interval.ClampTo(0.0, 0.5).ToString().c_str(),
                a.num_triples, proxy_text.c_str());
  }
  for (const auto& [worker, status] : report->failures) {
    std::printf("w%-7zu %s: %s\n", worker,
                status.IsFilteredOut() ? "pruned" : "unevaluable",
                status.message().c_str());
  }
  return 0;
}

int RunEvaluateKary(const Args& args) {
  if (args.workers.size() != 3) {
    std::fprintf(stderr, "evaluate-kary needs --workers=a,b,c\n");
    return 1;
  }
  auto dataset = Load(args);
  dataset.status().AbortIfNotOk();
  core::CrowdEvaluator::Config config;
  config.kary.confidence = args.confidence;
  auto result = core::CrowdEvaluator(config).EvaluateKaryTriple(
      dataset->responses(), args.workers[0], args.workers[1],
      args.workers[2]);
  if (!result.ok()) {
    if (args.format == "json") {
      std::printf("%s\n", server::ErrorJson(result.status()).c_str());
    } else {
      std::fprintf(stderr, "evaluation failed: %s\n",
                   result.status().ToString().c_str());
    }
    return 1;
  }
  if (args.format == "json") {
    std::printf("%s\n",
                server::KaryResultJson(*result, args.workers).c_str());
    return 0;
  }
  const int k = dataset->responses().arity();
  for (int idx = 0; idx < 3; ++idx) {
    std::printf("worker %zu:\n", args.workers[idx]);
    for (int r = 0; r < k; ++r) {
      std::printf("  truth=%d:", r);
      for (int c = 0; c < k; ++c) {
        std::printf("  %.3f %s", result->workers[idx].p(r, c),
                    result->workers[idx]
                        .intervals[r][c]
                        .ClampTo(0.0, 1.0)
                        .ToString()
                        .c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("selectivity:");
  for (double s : result->selectivity) std::printf(" %.3f", s);
  std::printf("\n");
  return 0;
}

int RunSpammers(const Args& args) {
  auto dataset = Load(args);
  dataset.status().AbortIfNotOk();
  core::SpammerFilterOptions options;
  options.threshold = args.threshold;
  auto filtered = core::FilterSpammers(dataset->responses(), options);
  filtered.status().AbortIfNotOk();
  std::printf("flagged %zu of %zu workers (proxy error > %.2f):\n",
              filtered->removed.size(),
              dataset->responses().num_workers(), args.threshold);
  for (auto w : filtered->removed) {
    std::printf("  w%-5zu proxy %.3f\n", w, filtered->proxy_error[w]);
  }
  return 0;
}

int RunSummary(const Args& args) {
  auto dataset = Load(args);
  dataset.status().AbortIfNotOk();
  std::printf("%s\n", dataset->Summary().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n(see the header of tools/crowdeval.cc "
                         "for usage)\n",
                 args.status().ToString().c_str());
    return 2;
  }
  if (args->metrics) obs::EnableMetrics();
  int rc = 2;
  if (args->command == "evaluate") {
    rc = RunEvaluate(*args);
  } else if (args->command == "evaluate-kary") {
    rc = RunEvaluateKary(*args);
  } else if (args->command == "spammers") {
    rc = RunSpammers(*args);
  } else if (args->command == "summary") {
    rc = RunSummary(*args);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", args->command.c_str());
    return 2;
  }
  if (args->metrics) {
    std::fprintf(stderr, "%s",
                 obs::DefaultRegistry().SummaryTable().c_str());
  }
  return rc;
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) { return crowd::Main(argc, argv); }
