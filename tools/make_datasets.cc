// Regenerates the bundled synthetic paper-analogue datasets under a
// target directory (default: ./data) as CSV pairs:
//   <name>.responses.csv  (worker,task,response)
//   <name>.gold.csv       (task,truth)
//
//   $ ./build/tools/make_datasets [out_dir] [seed]
//
// The checked-in files in data/ were produced with the default seed 1,
// matching the datasets the benches synthesize in-memory.

#include <cstdio>
#include <string>

#include "data/dataset_io.h"
#include "sim/paper_datasets.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace crowd;
  std::string out_dir = argc > 1 ? argv[1] : "data";
  uint64_t seed = 1;
  if (argc > 2) {
    auto parsed = ParseInt(argv[2]);
    if (!parsed.ok() || *parsed < 0) {
      std::fprintf(stderr, "invalid seed: %s\n", argv[2]);
      return 1;
    }
    seed = static_cast<uint64_t>(*parsed);
  }

  for (const std::string& name : sim::PaperDatasetNames()) {
    auto dataset = sim::MakePaperDataset(name, seed);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generating %s failed: %s\n", name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    std::string base = out_dir + "/" + name;
    Status status = data::SaveDatasetCsv(*dataset, base + ".responses.csv",
                                         base + ".gold.csv");
    if (!status.ok()) {
      std::fprintf(stderr, "writing %s failed: %s\n", name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("%s  ->  %s.{responses,gold}.csv\n",
                dataset->Summary().c_str(), base.c_str());
  }
  return 0;
}
