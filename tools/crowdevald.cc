// crowdevald — the streaming assessment daemon.
//
//   crowdevald serve --socket=/path/sock | --port=N [--host=A.B.C.D]
//                    --workers=M --tasks=N
//                    [--data-dir=DIR] [--snapshot-every=K] [--fsync]
//                    [--confidence=0.95] [--threads=T]
//                    [--trace-out=FILE] [--log-format=text|json]
//       Long-running service around IncrementalEvaluator: accepts the
//       newline-delimited protocol of src/server/protocol.h (RESP,
//       EVAL, EVAL_ALL, SPAMMERS, STATS, METRICS, SNAPSHOT, QUIT) and
//       answers with JSON lines. With --data-dir every accepted
//       response is journaled before it is acknowledged and the state
//       survives a crash: on restart the daemon loads the newest
//       snapshot and replays the journal tail. --workers/--tasks may
//       be omitted when --data-dir already holds recovered state.
//       --snapshot-every compacts the journal automatically every K
//       responses; --fsync makes each append durable against power
//       loss. SIGINT/SIGTERM shut down cleanly (writing a final
//       snapshot when --data-dir is set).
//
//       Observability: METRICS returns the Prometheus text exposition
//       of every counter/gauge/histogram (terminated by a `# EOF`
//       line). --trace-out=FILE records scoped spans (journal appends,
//       snapshot writes, evaluator stages) and dumps chrome://tracing
//       JSON to FILE on shutdown and on each SNAPSHOT command.
//       --log-format=json switches stderr logs to one JSON object per
//       line (also via CROWDEVAL_LOG_FORMAT=json).
//
// Quick demo (in a second shell):
//   printf 'RESP 0 0 1\nEVAL_ALL\nSTATS\nQUIT\n' | nc -U /path/sock

#include <csignal>
#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/service.h"
#include "server/socket_server.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace crowd {
namespace {

struct Args {
  std::string command;
  std::string socket_path;
  std::string host = "127.0.0.1";
  long long port = -1;
  long long workers = 0;
  long long tasks = 0;
  std::string data_dir;
  long long snapshot_every = 0;
  bool fsync = false;
  double confidence = 0.95;
  size_t threads = 1;
  std::string trace_out;
};

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 2) return Status::Invalid("no command given");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&](std::string_view prefix) -> std::string_view {
      return arg.substr(prefix.size());
    };
    if (StartsWith(arg, "--socket=")) {
      args.socket_path = value_of("--socket=");
    } else if (StartsWith(arg, "--host=")) {
      args.host = value_of("--host=");
    } else if (StartsWith(arg, "--port=")) {
      CROWD_ASSIGN_OR_RETURN(args.port, ParseInt(value_of("--port=")));
      if (args.port < 0 || args.port > 65535) {
        return Status::Invalid("port out of range");
      }
    } else if (StartsWith(arg, "--workers=")) {
      CROWD_ASSIGN_OR_RETURN(args.workers,
                             ParseInt(value_of("--workers=")));
      if (args.workers < 0) return Status::Invalid("negative workers");
    } else if (StartsWith(arg, "--tasks=")) {
      CROWD_ASSIGN_OR_RETURN(args.tasks, ParseInt(value_of("--tasks=")));
      if (args.tasks < 0) return Status::Invalid("negative tasks");
    } else if (StartsWith(arg, "--data-dir=")) {
      args.data_dir = value_of("--data-dir=");
    } else if (StartsWith(arg, "--snapshot-every=")) {
      CROWD_ASSIGN_OR_RETURN(args.snapshot_every,
                             ParseInt(value_of("--snapshot-every=")));
      if (args.snapshot_every < 0) {
        return Status::Invalid("negative snapshot interval");
      }
    } else if (arg == "--fsync") {
      args.fsync = true;
    } else if (StartsWith(arg, "--confidence=")) {
      CROWD_ASSIGN_OR_RETURN(args.confidence,
                             ParseDouble(value_of("--confidence=")));
    } else if (StartsWith(arg, "--threads=")) {
      CROWD_ASSIGN_OR_RETURN(long long threads,
                             ParseInt(value_of("--threads=")));
      if (threads < 0) return Status::Invalid("negative thread count");
      args.threads = static_cast<size_t>(threads);
    } else if (StartsWith(arg, "--trace-out=")) {
      args.trace_out = value_of("--trace-out=");
    } else if (StartsWith(arg, "--log-format=")) {
      std::string_view format = value_of("--log-format=");
      if (format == "json") {
        SetLogFormat(LogFormat::kJson);
      } else if (format == "text") {
        SetLogFormat(LogFormat::kText);
      } else {
        return Status::Invalid("--log-format must be text or json");
      }
    } else {
      return Status::Invalid("unknown flag: " + std::string(arg));
    }
  }
  if (args.socket_path.empty() && args.port < 0) {
    return Status::Invalid("--socket=<path> or --port=<n> is required");
  }
  if (!args.socket_path.empty() && args.port >= 0) {
    return Status::Invalid("--socket and --port are mutually exclusive");
  }
  return args;
}

int RunServe(const Args& args) {
  // Library instrumentation on from the start: a daemon exists to be
  // observed, and the overhead is one relaxed atomic per event.
  obs::EnableMetrics();
  if (!args.trace_out.empty()) obs::StartTracing();

  server::ServiceOptions service_options;
  service_options.num_workers = static_cast<size_t>(args.workers);
  service_options.num_tasks = static_cast<size_t>(args.tasks);
  service_options.binary.confidence = args.confidence;
  service_options.binary.num_threads = args.threads;
  service_options.data_dir = args.data_dir;
  service_options.snapshot_every =
      static_cast<uint64_t>(args.snapshot_every);
  service_options.fsync_each_append = args.fsync;
  service_options.trace_out = args.trace_out;

  auto service = server::Service::Open(std::move(service_options));
  if (!service.ok()) {
    std::fprintf(stderr, "crowdevald: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  server::SocketServerOptions socket_options;
  socket_options.unix_path = args.socket_path;
  socket_options.host = args.host;
  socket_options.use_tcp = args.socket_path.empty();
  if (socket_options.use_tcp) {
    socket_options.port = static_cast<uint16_t>(args.port);
  }

  // Block the shutdown signals *before* the server spawns its
  // threads, so every thread inherits the mask and sigwait below is
  // the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  server::SocketServer socket_server(service->get(), socket_options);
  Status started = socket_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "crowdevald: %s\n", started.ToString().c_str());
    return 1;
  }
  if (socket_options.use_tcp) {
    std::printf("crowdevald: listening on %s:%u (%zu workers, %zu "
                "tasks)\n",
                args.host.c_str(), socket_server.port(),
                (*service)->num_workers(), (*service)->num_tasks());
  } else {
    std::printf("crowdevald: listening on %s (%zu workers, %zu tasks)\n",
                args.socket_path.c_str(), (*service)->num_workers(),
                (*service)->num_tasks());
  }
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("crowdevald: signal %d, shutting down\n", signal_number);
  socket_server.Stop();
  int exit_code = 0;
  if (!args.data_dir.empty()) {
    auto seq = (*service)->TakeSnapshot();
    if (!seq.ok()) {
      std::fprintf(stderr, "crowdevald: final snapshot failed: %s\n",
                   seq.status().ToString().c_str());
      exit_code = 1;
    }
  }
  if (!args.trace_out.empty()) {
    obs::StopTracing();
    if (obs::WriteChromeTrace(args.trace_out)) {
      std::printf("crowdevald: trace written to %s\n",
                  args.trace_out.c_str());
    } else {
      std::fprintf(stderr, "crowdevald: failed to write trace to %s\n",
                   args.trace_out.c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}

int Main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr,
                 "%s\n(see the header of tools/crowdevald.cc for "
                 "usage)\n",
                 args.status().ToString().c_str());
    return 2;
  }
  if (args->command == "serve") return RunServe(*args);
  std::fprintf(stderr, "unknown command: %s\n", args->command.c_str());
  return 2;
}

}  // namespace
}  // namespace crowd

int main(int argc, char** argv) { return crowd::Main(argc, argv); }
